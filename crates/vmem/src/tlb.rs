//! A per-CPU TLB model with range-based shootdown.
//!
//! Re-randomization forces page-table updates, and page-table updates
//! force TLB invalidations — the cost the paper discusses in §4.3. The
//! original model used *generation-based whole-TLB shootdown*: any
//! unmap/protect bumped [`crate::AddressSpace`]'s generation and a
//! lagging [`Tlb`] flushed everything on its next lookup. That makes
//! every cycle pay the worst case.
//!
//! The space now keeps a bounded *invalidation log* of the page spans
//! each generation retired (see [`crate::AddressSpace::plan_sync`]). A
//! lagging TLB consults it and evicts **only the covered entries** — a
//! *partial flush* — falling back to a full flush only when it lagged
//! past the log's horizon or the gap's span set is too large to walk.
//! [`TlbStats::partial_flushes`] / [`TlbStats::entries_invalidated`]
//! make the two regimes measurable.
//!
//! Eviction at capacity is deterministic FIFO (first-inserted entry
//! goes first), and re-inserting an already-cached page never evicts an
//! unrelated entry.
//!
//! Synchronization is **lock-free** end to end: the generation check on
//! the hit path is one atomic load (no epoch pin at all), and the
//! lagging path reads the space's atomically-published invalidation
//! ring under an epoch pin ([`Tlb::lookup_pinned`]) — a lookup never
//! blocks on a concurrent re-randomization writer.
//!
//! # The micro-TLB (L1)
//!
//! In front of the hash-map cache sits a small direct-mapped,
//! generation-tagged **micro-TLB**: [`Tlb::try_lookup_current`] probes
//! one array slot keyed by the virtual page number, and a hit requires
//! both the page match *and* that the entry's generation tag equals the
//! TLB's current generation. Because every resynchronization that could
//! invalidate anything ([`Tlb::apply_sync`] on `Ranges`/`Full`) advances
//! the TLB's generation cursor, all micro entries are invalidated
//! *lazily* by tag mismatch — no walk over the array is ever needed on
//! a shootdown. An explicit [`Tlb::flush`] (and the space-switch path,
//! which resets the cursor to 0) clears the array eagerly, since a
//! reset cursor could otherwise collide with old tags. See DESIGN.md
//! §14 for the full coherence argument.

use crate::hash::BuildPageHasher;
use crate::{AddressSpace, Pte, SpacePin, TlbSync, Translation};
use std::collections::{HashMap, VecDeque};

/// Slots in the direct-mapped micro-TLB (power of two; 512 × 24-byte
/// entries ≈ 12 KiB, L1-cache resident).
const MICRO_SLOTS: usize = 512;

/// One micro-TLB entry: a translation valid exactly while the owning
/// TLB's generation cursor equals `gen` (and the TLB stays bound to the
/// same space — space switches clear the array).
#[derive(Copy, Clone, Debug)]
struct MicroEntry {
    page_va: u64,
    gen: u64,
    pte: Pte,
}

/// TLB hit/miss/flush counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct TlbStats {
    /// Lookups that hit a cached translation (micro-TLB hits included).
    pub hits: u64,
    /// Of [`TlbStats::hits`], how many were served by the direct-mapped
    /// micro-TLB (one array probe, no hash).
    pub micro_hits: u64,
    /// Lookups that missed (caller must walk the page table).
    pub misses: u64,
    /// Whole-TLB flushes (log horizon exceeded, oversized gap, or an
    /// explicit [`Tlb::flush`]).
    pub flushes: u64,
    /// Range-based resynchronizations that evicted only covered
    /// entries instead of flushing.
    pub partial_flushes: u64,
    /// Entries evicted by partial flushes.
    pub entries_invalidated: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

impl std::ops::AddAssign for TlbStats {
    fn add_assign(&mut self, rhs: TlbStats) {
        self.hits += rhs.hits;
        self.micro_hits += rhs.micro_hits;
        self.misses += rhs.misses;
        self.flushes += rhs.flushes;
        self.partial_flushes += rhs.partial_flushes;
        self.entries_invalidated += rhs.entries_invalidated;
        self.evictions += rhs.evictions;
    }
}

impl TlbStats {
    /// Counter-wise `self - earlier` (saturating): the activity between
    /// two snapshots of one TLB's monotonically growing counters. CPUs
    /// use this to publish per-call deltas into shared accumulators.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits.saturating_sub(earlier.hits),
            micro_hits: self.micro_hits.saturating_sub(earlier.micro_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            partial_flushes: self.partial_flushes.saturating_sub(earlier.partial_flushes),
            entries_invalidated: self
                .entries_invalidated
                .saturating_sub(earlier.entries_invalidated),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A single CPU's translation cache.
///
/// Not thread-safe by design: each simulated CPU owns one.
#[derive(Debug, Default)]
pub struct Tlb {
    /// Direct-mapped, generation-tagged L1 in front of the hash map: a
    /// hit is one index computation and one tag compare. Lazily
    /// invalidated by generation advance; eagerly cleared on
    /// [`Tlb::flush`] (which covers space switches, whose cursor reset
    /// to 0 would otherwise collide with old tags).
    micro: Vec<Option<MicroEntry>>,
    /// `page_va → (pte, insertion seq)`. The seq validates lazy FIFO
    /// queue entries after partial invalidation removed keys. Keyed by
    /// trusted page numbers, so the map uses the cheap deterministic
    /// [`BuildPageHasher`] instead of SipHash.
    entries: HashMap<u64, (Pte, u64), BuildPageHasher>,
    /// FIFO insertion order, lazily pruned (entries whose seq no longer
    /// matches were invalidated or re-inserted).
    order: VecDeque<(u64, u64)>,
    seq: u64,
    generation: u64,
    /// [`AddressSpace::id`] of the space the cache last synchronized
    /// with (0 = never synced). Generations from *different* spaces
    /// share no timeline, so pointing this TLB at a new space — fleet
    /// shards each own an independent `AddressSpace` — must flush
    /// everything, exactly like a hardware context switch without an
    /// ASID match.
    space_id: u64,
    stats: TlbStats,
    capacity: usize,
}

impl Tlb {
    /// A TLB with the default capacity (1536 entries, Skylake-ish).
    pub fn new() -> Tlb {
        Tlb::with_capacity(1536)
    }

    /// A TLB bounded to `capacity` cached pages.
    pub fn with_capacity(capacity: usize) -> Tlb {
        Tlb {
            micro: vec![None; MICRO_SLOTS],
            entries: HashMap::default(),
            order: VecDeque::new(),
            seq: 0,
            generation: 0,
            space_id: 0,
            stats: TlbStats::default(),
            capacity,
        }
    }

    /// Look up the translation for `page_va`, first resynchronizing
    /// with `space`'s invalidation log: evict only the spans retired
    /// since our snapshot when the log still covers the gap, flush
    /// everything when it does not.
    ///
    /// When the TLB is already at the space's current generation this
    /// costs a single atomic load (no epoch pin); only the lagging path
    /// pins an epoch to read the invalidation ring.
    pub fn lookup(&mut self, page_va: u64, space: &AddressSpace) -> Option<Pte> {
        if space.id() == self.space_id && space.generation() == self.generation {
            return self.probe(page_va);
        }
        let pin = space.pin();
        self.lookup_pinned(page_va, &pin)
    }

    /// [`Tlb::lookup`] under a caller-held epoch pin — what the
    /// kernel's per-CPU read handles use so one pin covers both the
    /// resynchronization and the page-table walk on a miss.
    ///
    /// A pin into a *different* space than the one this TLB last synced
    /// with (fleet-style many-space churn) is a context switch: every
    /// cached entry is dropped, because a numerically-equal generation
    /// from an unrelated space proves nothing about our entries.
    pub fn lookup_pinned(&mut self, page_va: u64, pin: &SpacePin<'_>) -> Option<Pte> {
        let space_id = pin.space().id();
        if space_id != self.space_id && self.space_id != 0 {
            // Context switch: generations of the two spaces share no
            // timeline, so everything cached is untrusted — full flush,
            // and the generation cursor restarts from "know nothing".
            self.flush();
            self.generation = 0;
        }
        self.space_id = space_id;
        let (current, plan) = pin.plan_sync(self.generation);
        self.apply_sync(current, plan);
        self.probe(page_va)
    }

    /// Probe a whole run of page base addresses under **one**
    /// resynchronization: the space-switch check and the invalidation
    /// plan are paid once for the batch, then each page costs only a
    /// probe. `out[i]` is the cached PTE for `page_vas[i]` or `None` on
    /// a miss (the caller walks misses against one pinned snapshot —
    /// see `SpacePin::translate_batch`).
    pub fn lookup_batch(&mut self, page_vas: &[u64], pin: &SpacePin<'_>) -> Vec<Option<Pte>> {
        let space_id = pin.space().id();
        if space_id != self.space_id && self.space_id != 0 {
            self.flush();
            self.generation = 0;
        }
        self.space_id = space_id;
        let (current, plan) = pin.plan_sync(self.generation);
        self.apply_sync(current, plan);
        page_vas.iter().map(|&va| self.probe(va)).collect()
    }

    /// Hit-path probe without any synchronization: `Some(result)` only
    /// when the TLB's snapshot is already at `current_gen` (obtained
    /// from [`AddressSpace::generation`]); `None` means the caller must
    /// take an epoch pin and use [`Tlb::lookup_pinned`].
    ///
    /// Only valid for the space this TLB is bound to (a `Vm`'s private
    /// TLB): `current_gen` carries no space identity, so callers that
    /// roam across spaces must go through [`Tlb::lookup`] /
    /// [`Tlb::lookup_pinned`], which detect the switch.
    pub fn try_lookup_current(&mut self, page_va: u64, current_gen: u64) -> Option<Option<Pte>> {
        if current_gen != self.generation {
            return None;
        }
        // L1: one direct-mapped probe — an index computation and a
        // (page, generation) tag compare, no hashing at all. The
        // generation tag makes every shootdown an implicit bulk
        // invalidation: entries filled before the cursor advanced can
        // never match again.
        if let Some(&Some(e)) = self.micro.get(Self::micro_idx(page_va)) {
            if e.page_va == page_va && e.gen == current_gen {
                self.stats.hits += 1;
                self.stats.micro_hits += 1;
                return Some(Some(e.pte));
            }
        }
        Some(self.probe(page_va))
    }

    #[inline]
    fn micro_idx(page_va: u64) -> usize {
        ((page_va >> crate::PAGE_SHIFT) as usize) & (MICRO_SLOTS - 1)
    }

    /// Install `(page_va, pte)` in the micro-TLB, tagged with the
    /// current generation cursor. Callers must only pass translations
    /// valid at `self.generation` in the currently-bound space.
    #[inline]
    fn micro_fill(&mut self, page_va: u64, pte: Pte) {
        let gen = self.generation;
        if let Some(slot) = self.micro.get_mut(Self::micro_idx(page_va)) {
            *slot = Some(MicroEntry { page_va, gen, pte });
        }
    }

    fn probe(&mut self, page_va: u64) -> Option<Pte> {
        let hit = self.entries.get(&page_va).map(|&(pte, _)| pte);
        match hit {
            Some(pte) => {
                self.stats.hits += 1;
                // Promote the L2 hit so the next probe of this page is
                // one array access.
                self.micro_fill(page_va, pte);
                Some(pte)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn apply_sync(&mut self, current: u64, plan: TlbSync) {
        match plan {
            TlbSync::Current => return,
            TlbSync::Full => {
                self.flush();
            }
            TlbSync::Ranges(spans) => {
                let before = self.entries.len();
                self.entries
                    .retain(|&va, _| !spans.iter().any(|&(s, e)| va >= s && va < e));
                self.stats.entries_invalidated += (before - self.entries.len()) as u64;
                self.stats.partial_flushes += 1;
            }
        }
        self.generation = current;
    }

    /// Install a translation produced by a page-table walk.
    ///
    /// Re-inserting an already-cached page refreshes it in place (it
    /// keeps its FIFO position and evicts nothing). A genuinely new
    /// page at capacity evicts the oldest entry — deterministically.
    pub fn insert(&mut self, t: &Translation) {
        if self.capacity == 0 {
            return;
        }
        self.micro_fill(t.page_va, t.pte);
        if let Some(slot) = self.entries.get_mut(&t.page_va) {
            slot.0 = t.pte;
            return;
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some((va, seq)) => {
                    if self.entries.get(&va).is_some_and(|&(_, s)| s == seq) {
                        self.entries.remove(&va);
                        self.stats.evictions += 1;
                    }
                }
                None => break, // only stale queue entries remained
            }
        }
        self.seq += 1;
        self.entries.insert(t.page_va, (t.pte, self.seq));
        self.order.push_back((t.page_va, self.seq));
        // Partial invalidation leaves dead queue entries behind; compact
        // before the queue outgrows the cache it mirrors.
        if self.order.len() > self.capacity.saturating_mul(2) + 8 {
            let entries = &self.entries;
            self.order
                .retain(|&(va, seq)| entries.get(&va).is_some_and(|&(_, s)| s == seq));
        }
    }

    /// Explicitly flush (e.g. on simulated context switch).
    ///
    /// Clears the micro-TLB *eagerly*: flush callers may reset the
    /// generation cursor (the space-switch path sets it to 0), and a
    /// reused cursor value would make lazily-retained tags match again
    /// — the one case tag-based invalidation cannot cover.
    pub fn flush(&mut self) {
        self.micro.fill(None);
        self.entries.clear();
        self.order.clear();
        self.stats.flushes += 1;
    }

    /// Cached entry count (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, AddressSpace, Batch, PhysMem, PteFlags, PAGE_SIZE};

    const VA: u64 = 0x0012_3456_7800_0000;

    fn warm(tlb: &mut Tlb, space: &AddressSpace, va: u64) {
        let t = space.translate(va, Access::Read).unwrap();
        tlb.insert(&t);
    }

    #[test]
    fn hit_after_insert() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(VA, &space), None);
        let t = space.translate(VA, Access::Read).unwrap();
        tlb.insert(&t);
        assert_eq!(tlb.lookup(VA, &space), Some(t.pte));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn unmap_invalidates_only_covered_entries() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let other = VA + 0x40_0000;
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        space.map(other, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, VA);
        warm(&mut tlb, &space, other);
        space.unmap(VA).unwrap();
        // The retired page is gone, the unrelated one survives — a
        // partial flush, not a whole-TLB flush.
        assert_eq!(tlb.lookup(VA, &space), None);
        assert!(tlb.lookup(other, &space).is_some());
        let s = tlb.stats();
        assert_eq!(s.flushes, 0);
        assert_eq!(s.partial_flushes, 1);
        assert_eq!(s.entries_invalidated, 1);
    }

    #[test]
    fn lagging_past_the_log_forces_full_flush() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(4);
        let keep = VA + 0x80_0000;
        space.map(keep, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, keep);
        // More shootdowns than the log holds, while the TLB sleeps.
        for i in 0..8u64 {
            let va = VA + i * PAGE_SIZE as u64;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            space.unmap(va).unwrap();
        }
        // `keep` is still mapped, but the gap is unrecoverable — the
        // sync must flush everything rather than guess.
        assert_eq!(tlb.lookup(keep, &space), None);
        assert_eq!(tlb.stats().flushes, 1);
        assert_eq!(tlb.stats().partial_flushes, 0);
        // Re-warmed, it keeps hitting.
        warm(&mut tlb, &space, keep);
        assert!(tlb.lookup(keep, &space).is_some());
    }

    #[test]
    fn disabled_log_always_full_flushes() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(0);
        let a = VA;
        let b = VA + 0x10_0000;
        space.map(a, phys.alloc(), PteFlags::DATA).unwrap();
        space.map(b, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, a);
        warm(&mut tlb, &space, b);
        space.unmap(a).unwrap();
        // Legacy regime: the unrelated entry dies too.
        assert_eq!(tlb.lookup(b, &space), None);
        assert_eq!(tlb.stats().flushes, 1);
        assert_eq!(tlb.stats().partial_flushes, 0);
    }

    #[test]
    fn batch_invalidation_is_one_partial_flush() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let survivor = VA + 0x100_0000;
        space.map(survivor, phys.alloc(), PteFlags::DATA).unwrap();
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, survivor);
        for i in 0..8u64 {
            warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
        }
        let mut batch = Batch::new();
        batch.unmap_sparse(VA, 8);
        let outcome = space.apply(batch).unwrap();
        assert_eq!(outcome.shootdowns, 1);
        assert!(tlb.lookup(survivor, &space).is_some());
        for i in 0..8u64 {
            assert_eq!(tlb.lookup(VA + i * PAGE_SIZE as u64, &space), None);
        }
        let s = tlb.stats();
        assert_eq!(s.partial_flushes, 1, "one sync covers the whole batch");
        assert_eq!(s.entries_invalidated, 8);
        assert_eq!(s.flushes, 0);
    }

    /// Regression: re-inserting an already-cached page at capacity used
    /// to evict an arbitrary unrelated entry.
    #[test]
    fn reinsert_at_capacity_evicts_nothing() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let mut tlb = Tlb::with_capacity(4);
        for i in 0..4u64 {
            let va = VA + i * PAGE_SIZE as u64;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            warm(&mut tlb, &space, va);
        }
        assert_eq!(tlb.len(), 4);
        // Re-insert every cached page; nothing may be evicted.
        for i in 0..4u64 {
            warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
        }
        assert_eq!(tlb.stats().evictions, 0);
        for i in 0..4u64 {
            assert!(
                tlb.lookup(VA + i * PAGE_SIZE as u64, &space).is_some(),
                "page {i} was evicted by a re-insert"
            );
        }
    }

    /// Eviction order is deterministic FIFO: the same insert sequence
    /// always evicts the same keys, regardless of hash iteration order.
    #[test]
    fn eviction_is_deterministic_fifo() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        for i in 0..8u64 {
            space
                .map(VA + i * PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA)
                .unwrap();
        }
        // Seeded (fixed) insertion order, twice over fresh TLBs: the
        // surviving set must be identical.
        let run = || {
            let mut tlb = Tlb::with_capacity(4);
            for &i in &[0u64, 1, 2, 3, 0, 4, 5] {
                warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
            }
            let mut alive: Vec<u64> = (0..8u64)
                .filter(|&i| tlb.lookup(VA + i * PAGE_SIZE as u64, &space).is_some())
                .collect();
            alive.sort_unstable();
            alive
        };
        let first = run();
        // FIFO: 0,1,2,3 cached; re-warm of 0 keeps its slot; inserting
        // 4 evicts 0 (oldest), inserting 5 evicts 1.
        assert_eq!(first, vec![2, 3, 4, 5]);
        assert_eq!(first, run(), "eviction must be deterministic");
    }

    /// Regression (fleet-style many-space churn): a TLB that had synced
    /// with space A used to trust a *numerically equal* generation from
    /// space B and serve A's cached translations against B — stale by
    /// construction, since B never mapped those pages. A different
    /// space id must be treated as a context switch.
    #[test]
    fn switching_spaces_never_serves_foreign_translations() {
        let phys = PhysMem::new();
        let a = AddressSpace::new();
        let b = AddressSpace::new();
        // Identical mutation histories ⇒ identical generation counters.
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA + 0x40_0000, phys.alloc(), PteFlags::DATA).unwrap();
        assert_eq!(a.generation(), b.generation());
        assert_ne!(a.id(), b.id());
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(VA, &a).is_none());
        warm(&mut tlb, &a, VA);
        assert!(tlb.lookup(VA, &a).is_some(), "warm hit in the home space");
        // Probing B for A's page must miss (B never mapped it) even
        // though B's generation equals the TLB's sync point.
        assert_eq!(
            tlb.lookup(VA, &b),
            None,
            "a foreign space must never be served another space's PTEs"
        );
        assert!(tlb.is_empty(), "the switch must flush everything");
        assert!(tlb.stats().flushes >= 1);
        // And switching back re-adopts A from scratch: miss, re-warm, hit.
        assert_eq!(tlb.lookup(VA, &a), None);
        warm(&mut tlb, &a, VA);
        assert!(tlb.lookup(VA, &a).is_some());
    }

    /// Many-space churn keeps the FIFO eviction machinery sound: after
    /// arbitrary space switches (which clear the cache and the order
    /// queue) the capacity bound and deterministic FIFO order still
    /// hold in whichever space the TLB currently serves.
    #[test]
    fn fifo_eviction_survives_space_churn() {
        let phys = PhysMem::new();
        let spaces: Vec<AddressSpace> = (0..3).map(|_| AddressSpace::new()).collect();
        for s in &spaces {
            for i in 0..8u64 {
                s.map(VA + i * PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA)
                    .unwrap();
            }
        }
        let run = || {
            let mut tlb = Tlb::with_capacity(4);
            // Bounce across spaces, warming a deterministic sequence in
            // each; the last residency decides the surviving set.
            for (round, s) in spaces.iter().cycle().take(7).enumerate() {
                for &i in &[0u64, 1, 2, 3, 0, 4, 5] {
                    let va = VA + ((i + round as u64) % 8) * PAGE_SIZE as u64;
                    if tlb.lookup(va, s).is_none() {
                        warm(&mut tlb, s, va);
                    }
                }
                assert!(tlb.len() <= 4, "capacity bound violated mid-churn");
            }
            let last = &spaces[(7 - 1) % spaces.len()];
            let mut alive: Vec<u64> = (0..8u64)
                .filter(|&i| tlb.lookup(VA + i * PAGE_SIZE as u64, last).is_some())
                .collect();
            alive.sort_unstable();
            alive
        };
        let first = run();
        assert!(!first.is_empty() && first.len() <= 4);
        assert_eq!(first, run(), "churned eviction must stay deterministic");
    }

    #[test]
    fn capacity_bounded() {
        let mut tlb = Tlb::with_capacity(4);
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        for i in 0..8u64 {
            let va = VA + i * 4096;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            let t = space.translate(va, Access::Read).unwrap();
            tlb.insert(&t);
        }
        assert!(tlb.len() <= 4);
    }

    /// The second current-generation probe of a page is served by the
    /// direct-mapped micro-TLB (counted in `micro_hits`), and a
    /// shootdown lazily invalidates it via the generation tag — the
    /// stale entry must *miss*, not serve a retired translation.
    #[test]
    fn micro_tlb_hits_then_dies_on_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        // Bind to the space and warm both levels.
        assert_eq!(tlb.lookup(VA, &space), None);
        warm(&mut tlb, &space, VA);
        let gen = space.generation();
        // First current-gen probe: insert() already promoted the page
        // into the micro-TLB, so this is an L1 hit.
        assert!(matches!(tlb.try_lookup_current(VA, gen), Some(Some(_))));
        assert_eq!(tlb.stats().micro_hits, 1);
        assert!(matches!(tlb.try_lookup_current(VA, gen), Some(Some(_))));
        assert_eq!(tlb.stats().micro_hits, 2);
        // Shootdown: the generation advances, so the fast path refuses
        // to answer at all (caller must resynchronize under a pin).
        space.unmap(VA).unwrap();
        assert_eq!(tlb.try_lookup_current(VA, space.generation()), None);
        // After resyncing, the retired page misses at both levels.
        assert_eq!(tlb.lookup(VA, &space), None);
        let g2 = space.generation();
        assert!(matches!(tlb.try_lookup_current(VA, g2), Some(None)));
        assert_eq!(tlb.stats().micro_hits, 2, "no stale micro serve");
    }

    /// Space switches reset the generation cursor to 0 — the one case
    /// where lazy tag invalidation is unsound (a stale tag could equal
    /// the reused cursor). The switch's eager flush must cover the
    /// micro-TLB too.
    #[test]
    fn micro_tlb_cleared_on_space_switch() {
        let phys = PhysMem::new();
        let a = AddressSpace::new();
        let b = AddressSpace::new();
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA + PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA)
            .unwrap();
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(VA, &a), None);
        warm(&mut tlb, &a, VA);
        assert!(matches!(
            tlb.try_lookup_current(VA, a.generation()),
            Some(Some(_))
        ));
        // Switch to space B (full flush + cursor reset)…
        assert_eq!(tlb.lookup(VA, &b), None);
        // …then probe A's page at B's numerically-equal generation: the
        // stale micro entry must not resurface.
        assert_eq!(b.generation(), a.generation());
        assert!(matches!(
            tlb.try_lookup_current(VA, b.generation()),
            Some(None)
        ));
    }

    /// `lookup_batch` pays one resynchronization for N probes and
    /// reports per-page hits/misses positionally.
    #[test]
    fn batch_lookup_syncs_once() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let mut tlb = Tlb::new();
        for i in [0u64, 2] {
            warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
        }
        // Lag the TLB by one shootdown outside the cached pages.
        space
            .map(VA + 0x100_0000, phys.alloc(), PteFlags::DATA)
            .unwrap();
        space.unmap(VA + 0x100_0000).unwrap();
        let pages: Vec<u64> = (0..4u64).map(|i| VA + i * PAGE_SIZE as u64).collect();
        let mut reader = space.reader();
        let pin = reader.pin();
        let got = tlb.lookup_batch(&pages, &pin);
        drop(pin);
        assert!(got[0].is_some() && got[2].is_some());
        assert!(got[1].is_none() && got[3].is_none());
        let s = tlb.stats();
        assert_eq!(s.partial_flushes, 1, "one sync covered the whole batch");
        assert_eq!(s.flushes, 0);
    }
}
