//! The address space: a 5-level radix page table with permission bits,
//! aliased (zero-copy) mappings, MMIO leaves, batched mutation
//! ([`Batch`] / [`AddressSpace::apply`]), and a bounded *invalidation
//! log* that lets TLBs do range-based shootdown instead of whole-TLB
//! flushes (see [`crate::Tlb`]).

use crate::batch::{Batch, BatchOp};
use crate::{
    page_base, page_offset, Access, Fault, Pfn, PhysMem, LEVELS, PAGE_SHIFT, PAGE_SIZE, VA_MASK,
};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default capacity (in generations) of the invalidation log — how far
/// a TLB may lag behind the current generation and still resynchronize
/// with a partial (range-based) invalidation instead of a full flush.
pub const DEFAULT_INVAL_LOG: usize = 64;

/// Above this many spans in one resynchronization, evicting entry by
/// entry stops being cheaper than clearing the TLB outright — the
/// planner falls back to a full flush (mirrors the kernel's
/// `tlb_single_page_flush_ceiling` idea at span granularity).
const MAX_SYNC_SPANS: usize = 64;

/// Page permission flags.
///
/// A mapped page is always "present"; the two bits model the x86-64
/// `W` and `NX` bits the paper's defences rely on (write-protected GOTs,
/// non-executable data).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Read-only, executable — the protection of text pages.
    pub const TEXT: PteFlags = PteFlags(0);
    /// Writable bit.
    pub const WRITABLE: PteFlags = PteFlags(1);
    /// No-execute bit.
    pub const NX: PteFlags = PteFlags(2);
    /// Writable and no-execute — the protection of data pages.
    pub const DATA: PteFlags = PteFlags(1 | 2);
    /// Read-only, no-execute — the protection of `.rodata` and sealed GOTs.
    pub const RO_DATA: PteFlags = PteFlags(2);

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Whether the page can be written.
    pub fn writable(self) -> bool {
        self.contains(PteFlags::WRITABLE)
    }

    /// Whether the page can be executed.
    pub fn executable(self) -> bool {
        !self.contains(PteFlags::NX)
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}{}",
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' }
        )
    }
}

/// What a leaf translation points at.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PteKind {
    /// Ordinary memory frame.
    Frame(Pfn),
    /// Device register page: `dev` is the device id in the kernel's MMIO
    /// registry, `page` the page index within the device's BAR.
    Mmio { dev: u32, page: u32 },
}

/// A page-table leaf entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Pte {
    /// Frame or MMIO target.
    pub kind: PteKind,
    /// Permissions.
    pub flags: PteFlags,
}

impl Pte {
    /// Check this entry against an access kind (used by TLBs re-checking
    /// cached entries — permissions live in the entry, not the cache).
    ///
    /// # Errors
    ///
    /// The same faults [`AddressSpace::translate`] would raise.
    pub fn check(&self, va: u64, access: Access) -> Result<(), Fault> {
        check_access(va, self, access)
    }
}

/// A successful translation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Translation {
    /// The leaf entry.
    pub pte: Pte,
    /// Base virtual address of the page containing the query.
    pub page_va: u64,
}

enum Entry {
    Empty,
    Table(Box<Node>),
    Leaf(Pte),
}

struct Node {
    slots: Box<[Entry; 512]>,
}

impl Node {
    fn new() -> Node {
        Node {
            slots: Box::new(std::array::from_fn(|_| Entry::Empty)),
        }
    }

    /// Whether every slot is empty (so the node can be pruned).
    fn is_empty(&self) -> bool {
        self.slots.iter().all(|e| matches!(e, Entry::Empty))
    }
}

/// Snapshot of address-space activity counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct SpaceStats {
    /// Pages mapped over the lifetime.
    pub pages_mapped: u64,
    /// Pages unmapped over the lifetime.
    pub pages_unmapped: u64,
    /// Permission changes.
    pub protects: u64,
    /// TLB shootdowns (generation bumps).
    pub shootdowns: u64,
    /// Page-table walks performed.
    pub walks: u64,
    /// Batches applied via [`AddressSpace::apply`].
    pub batches: u64,
    /// Shootdowns that were coalesced into an open epoch slot instead
    /// of occupying their own invalidation-log entry.
    pub coalesced_shootdowns: u64,
}

#[derive(Default)]
struct AtomicStats {
    pages_mapped: AtomicU64,
    pages_unmapped: AtomicU64,
    protects: AtomicU64,
    shootdowns: AtomicU64,
    walks: AtomicU64,
    batches: AtomicU64,
    coalesced_shootdowns: AtomicU64,
}

/// One invalidation-log slot: the page spans retired by the
/// generations in `[gen_lo, gen_hi]` (a range wider than one generation
/// only when batches shared a shootdown epoch).
struct LogSlot {
    gen_lo: u64,
    gen_hi: u64,
    epoch: Option<u64>,
    /// `[start, end)` byte ranges, page-aligned.
    spans: Vec<(u64, u64)>,
}

/// What a lagging TLB must do to catch up — computed by
/// [`AddressSpace::plan_sync`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TlbSync {
    /// The snapshot is current; nothing to do.
    Current,
    /// Evict only entries covered by these `[start, end)` spans.
    Ranges(Vec<(u64, u64)>),
    /// The log no longer covers the gap (or covering it would cost more
    /// than starting over) — flush everything.
    Full,
}

/// A single (kernel) address space.
///
/// All methods take `&self`; the table lives behind a reader/writer lock
/// so translation (the hot path, used by every simulated instruction)
/// proceeds concurrently while mapping changes serialize — the same
/// discipline as kernel page-table locks.
pub struct AddressSpace {
    root: RwLock<Node>,
    generation: AtomicU64,
    stats: AtomicStats,
    /// Recent invalidation sets, newest at the back. Capacity 0 models
    /// the legacy whole-TLB regime: nothing is logged, every lagging
    /// TLB full-flushes, and [`AddressSpace::apply`] publishes one
    /// generation bump per invalidating op instead of one per batch.
    inval: Mutex<VecDeque<LogSlot>>,
    inval_capacity: usize,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

fn level_index(va: u64, level: u32) -> usize {
    // level 0 = top. Each level resolves 9 bits.
    let shift = PAGE_SHIFT + 9 * (LEVELS - 1 - level);
    ((va >> shift) & 0x1FF) as usize
}

impl AddressSpace {
    /// Create an empty address space with the default invalidation-log
    /// capacity ([`DEFAULT_INVAL_LOG`]).
    pub fn new() -> AddressSpace {
        AddressSpace::with_inval_log(DEFAULT_INVAL_LOG)
    }

    /// Create an empty address space whose invalidation log holds
    /// `capacity` generations. `0` disables range-based shootdown
    /// entirely — the legacy whole-TLB regime, kept as the measurable
    /// ablation baseline.
    pub fn with_inval_log(capacity: usize) -> AddressSpace {
        AddressSpace {
            root: RwLock::new(Node::new()),
            generation: AtomicU64::new(0),
            stats: AtomicStats::default(),
            inval: Mutex::new(VecDeque::new()),
            inval_capacity: capacity,
        }
    }

    /// The current TLB generation. Cached translations from earlier
    /// generations must be discarded (see [`crate::Tlb`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Capacity of the invalidation log in generations (0 = disabled).
    pub fn inval_log_capacity(&self) -> usize {
        self.inval_capacity
    }

    fn shootdown(&self, spans: Vec<(u64, u64)>) {
        self.shootdown_epoch(spans, None);
    }

    /// Bump the generation once and publish `spans` as its invalidation
    /// set. Consecutive shootdowns carrying the same `epoch` tag merge
    /// into one log slot (the scheduler's shared shootdown epoch), so a
    /// TLB lagging across the whole epoch pays one partial pass.
    fn shootdown_epoch(&self, mut spans: Vec<(u64, u64)>, epoch: Option<u64>) {
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.stats.shootdowns.fetch_add(1, Ordering::Relaxed);
        if self.inval_capacity == 0 {
            return;
        }
        coalesce_spans(&mut spans);
        let mut log = self.inval.lock();
        if let (Some(e), Some(last)) = (epoch, log.back_mut()) {
            if last.epoch == Some(e) && last.gen_hi + 1 == gen {
                last.gen_hi = gen;
                last.spans.extend(spans);
                // Re-coalesce the merged slot: epoch waves routinely
                // retire adjacent ranges, and a compact span list keeps
                // the partial-flush path under MAX_SYNC_SPANS.
                coalesce_spans(&mut last.spans);
                self.stats
                    .coalesced_shootdowns
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        log.push_back(LogSlot {
            gen_lo: gen,
            gen_hi: gen,
            epoch,
            spans,
        });
        while log.len() > self.inval_capacity {
            log.pop_front();
        }
    }

    /// Plan how a TLB whose snapshot is `seen_gen` catches up to the
    /// current generation: returns the generation to adopt plus the
    /// cheapest safe action. [`TlbSync::Ranges`] is only returned when
    /// the log still covers *every* generation in the gap; otherwise
    /// the plan degrades to [`TlbSync::Full`].
    pub fn plan_sync(&self, seen_gen: u64) -> (u64, TlbSync) {
        let current = self.generation();
        if current == seen_gen {
            return (current, TlbSync::Current);
        }
        if self.inval_capacity == 0 || current < seen_gen {
            return (current, TlbSync::Full);
        }
        let mut covered: Vec<(u64, u64)> = Vec::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        {
            let log = self.inval.lock();
            for slot in log.iter() {
                if slot.gen_hi <= seen_gen || slot.gen_lo > current {
                    // Already seen, or published after our generation
                    // read (the next sync picks it up).
                    continue;
                }
                covered.push((slot.gen_lo.max(seen_gen + 1), slot.gen_hi.min(current)));
                spans.extend_from_slice(&slot.spans);
            }
        }
        // Every generation in (seen_gen, current] must be accounted
        // for; slots may be out of order under concurrent shootdowns.
        covered.sort_unstable();
        let mut need = seen_gen + 1;
        for (lo, hi) in covered {
            if lo > need {
                return (current, TlbSync::Full);
            }
            need = need.max(hi + 1);
        }
        if need <= current || spans.len() > MAX_SYNC_SPANS {
            return (current, TlbSync::Full);
        }
        (current, TlbSync::Ranges(spans))
    }

    fn check(&self, va: u64) -> Result<(), Fault> {
        check_va(va)
    }

    /// Map one page at `va` (page-aligned) to `pfn`.
    ///
    /// Mapping the same frame at several addresses is allowed — that *is*
    /// the paper's zero-copy mechanism.
    ///
    /// # Errors
    ///
    /// [`Fault::AlreadyMapped`] if `va` already has a mapping,
    /// [`Fault::NonCanonical`] for out-of-range addresses.
    pub fn map(&self, va: u64, pfn: Pfn, flags: PteFlags) -> Result<(), Fault> {
        self.map_pte(
            va,
            Pte {
                kind: PteKind::Frame(pfn),
                flags,
            },
        )
    }

    /// Map a device register page.
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::map`].
    pub fn map_mmio(&self, va: u64, dev: u32, page: u32, flags: PteFlags) -> Result<(), Fault> {
        self.map_pte(
            va,
            Pte {
                kind: PteKind::Mmio { dev, page },
                flags,
            },
        )
    }

    fn map_pte(&self, va: u64, pte: Pte) -> Result<(), Fault> {
        self.check(va)?;
        let mut node = self.root.write();
        map_in(&mut node, va, pte)?;
        self.stats.pages_mapped.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Map a run of frames contiguously starting at `va`.
    ///
    /// # Errors
    ///
    /// Fails on the first conflicting page (earlier pages stay mapped).
    pub fn map_range(&self, va: u64, pfns: &[Pfn], flags: PteFlags) -> Result<(), Fault> {
        for (i, &pfn) in pfns.iter().enumerate() {
            self.map(va + (i * PAGE_SIZE) as u64, pfn, flags)?;
        }
        Ok(())
    }

    /// Remove the mapping at `va`, returning the old leaf.
    ///
    /// Bumps the TLB generation (shootdown).
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if nothing is mapped there.
    pub fn unmap(&self, va: u64) -> Result<Pte, Fault> {
        let pte = self.unmap_quiet(va)?;
        self.shootdown(vec![(va, va + PAGE_SIZE as u64)]);
        Ok(pte)
    }

    fn unmap_quiet(&self, va: u64) -> Result<Pte, Fault> {
        self.check(va)?;
        let mut node = self.root.write();
        let pte = unmap_in(&mut node, va)?;
        self.stats.pages_unmapped.fetch_add(1, Ordering::Relaxed);
        Ok(pte)
    }

    /// Unmap `n` consecutive pages, returning their leaves. One shootdown
    /// covers the whole range (batched invalidation, like `flush_tlb_range`).
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped page. Earlier pages stay unmapped,
    /// and the shootdown still covers them — under range-based
    /// invalidation an unpublished removal would let TLBs serve the
    /// retired translations forever.
    pub fn unmap_range(&self, va: u64, n: usize) -> Result<Vec<Pte>, Fault> {
        let mut out = Vec::with_capacity(n);
        let mut outcome = Ok(());
        for i in 0..n {
            match self.unmap_quiet(va + (i * PAGE_SIZE) as u64) {
                Ok(pte) => out.push(pte),
                Err(fault) => {
                    outcome = Err(fault);
                    break;
                }
            }
        }
        if !out.is_empty() {
            self.shootdown(vec![(va, va + (out.len() * PAGE_SIZE) as u64)]);
        }
        outcome.map(|()| out)
    }

    /// Unmap every mapped page in `[va, va + n pages)`, skipping holes;
    /// returns the removed leaves. One shootdown for the whole range —
    /// what the re-randomizer's retire step uses, since alignment-tail
    /// pages were never mapped.
    pub fn unmap_sparse(&self, va: u64, n: usize) -> Vec<Pte> {
        let mut out = Vec::new();
        for i in 0..n {
            if let Ok(pte) = self.unmap_quiet(va + (i * PAGE_SIZE) as u64) {
                out.push(pte);
            }
        }
        self.shootdown(vec![(va, va + (n * PAGE_SIZE) as u64)]);
        out
    }

    /// Atomically swap the frame behind a mapped page, returning the old
    /// leaf. This is how the re-randomizer swings a GOT page onto a
    /// freshly built table (paper §4.2: "GOT pages … are remapped to
    /// point to the new GOTs") without a window where the page is
    /// unmapped. Bumps the TLB generation.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if the page is not mapped.
    pub fn replace(&self, va: u64, pfn: Pfn, flags: PteFlags) -> Result<Pte, Fault> {
        self.check(va)?;
        let old = {
            let mut node = self.root.write();
            replace_in(
                &mut node,
                va,
                Pte {
                    kind: PteKind::Frame(pfn),
                    flags,
                },
            )?
        };
        self.shootdown(vec![(va, va + PAGE_SIZE as u64)]);
        Ok(old)
    }

    /// Change the permissions of a mapped page (e.g. write-protecting a
    /// GOT after initialization, §4.1). Bumps the TLB generation.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if the page is not mapped.
    pub fn protect(&self, va: u64, flags: PteFlags) -> Result<(), Fault> {
        self.protect_quiet(va, flags)?;
        self.shootdown(vec![(va, va + PAGE_SIZE as u64)]);
        Ok(())
    }

    fn protect_quiet(&self, va: u64, flags: PteFlags) -> Result<PteFlags, Fault> {
        self.check(va)?;
        let old = {
            let mut node = self.root.write();
            protect_in(&mut node, va, flags)?
        };
        self.stats.protects.fetch_add(1, Ordering::Relaxed);
        Ok(old)
    }

    /// [`AddressSpace::protect`] over `n` consecutive pages. One
    /// shootdown covers the whole range (batched invalidation — the
    /// pre-batching code paid one per page).
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped page (earlier pages keep the new
    /// permissions, and the shootdown still covers them).
    pub fn protect_range(&self, va: u64, n: usize, flags: PteFlags) -> Result<(), Fault> {
        let mut outcome = Ok(());
        let mut changed = 0usize;
        for i in 0..n {
            if let Err(fault) = self.protect_quiet(va + (i * PAGE_SIZE) as u64, flags) {
                outcome = Err(fault);
                break;
            }
            changed += 1;
        }
        if changed > 0 {
            self.shootdown(vec![(va, va + (changed * PAGE_SIZE) as u64)]);
        }
        outcome
    }

    /// Translate `va` for the given access kind.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`], [`Fault::NotWritable`], [`Fault::NotExecutable`],
    /// [`Fault::MmioExec`], or [`Fault::NonCanonical`].
    pub fn translate(&self, va: u64, access: Access) -> Result<Translation, Fault> {
        if va & !VA_MASK != 0 {
            return Err(Fault::NonCanonical { va });
        }
        self.stats.walks.fetch_add(1, Ordering::Relaxed);
        let node = self.root.read();
        let mut cur: &Node = &node;
        for level in 0..LEVELS - 1 {
            let idx = level_index(va, level);
            cur = match &cur.slots[idx] {
                Entry::Table(t) => t,
                _ => return Err(Fault::Unmapped { va }),
            };
        }
        let pte = match &cur.slots[level_index(va, LEVELS - 1)] {
            Entry::Leaf(pte) => *pte,
            _ => return Err(Fault::Unmapped { va }),
        };
        check_access(va, &pte, access)?;
        Ok(Translation {
            pte,
            page_va: page_base(va),
        })
    }

    /// Collect the leaves backing `n` consecutive pages — the gather step
    /// of the zero-copy remap.
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn leaves_of_range(&self, va: u64, n: usize) -> Result<Vec<Pte>, Fault> {
        (0..n)
            .map(|i| {
                self.translate(va + (i * PAGE_SIZE) as u64, Access::Read)
                    .map(|t| t.pte)
            })
            .collect()
    }

    /// Read `buf.len()` bytes starting at `va` (may cross pages).
    ///
    /// # Errors
    ///
    /// Translation faults, or [`Fault::MmioData`] if the range covers an
    /// MMIO page (device access must go through the interpreter).
    pub fn read_bytes(&self, phys: &PhysMem, va: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.access_bytes(phys, va, Access::Read, buf.len(), |pfn, off, i, n, phys| {
            phys.read(pfn, off, &mut buf[i..i + n]);
        })
    }

    /// Write bytes starting at `va` (may cross pages).
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::read_bytes`], plus [`Fault::NotWritable`].
    pub fn write_bytes(&self, phys: &PhysMem, va: u64, bytes: &[u8]) -> Result<(), Fault> {
        self.access_bytes(
            phys,
            va,
            Access::Write,
            bytes.len(),
            |pfn, off, i, n, phys| {
                phys.write(pfn, off, &bytes[i..i + n]);
            },
        )
    }

    fn access_bytes(
        &self,
        phys: &PhysMem,
        va: u64,
        access: Access,
        len: usize,
        mut f: impl FnMut(Pfn, usize, usize, usize, &PhysMem),
    ) -> Result<(), Fault> {
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(len - done);
            let t = self.translate(cur, access)?;
            match t.pte.kind {
                PteKind::Frame(pfn) => f(pfn, off, done, n, phys),
                PteKind::Mmio { .. } => return Err(Fault::MmioData { va: cur }),
            }
            done += n;
        }
        Ok(())
    }

    /// Read a little-endian u64 at `va`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::read_bytes`].
    pub fn read_u64(&self, phys: &PhysMem, va: u64) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read_bytes(phys, va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64 at `va`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::write_bytes`].
    pub fn write_u64(&self, phys: &PhysMem, va: u64, v: u64) -> Result<(), Fault> {
        self.write_bytes(phys, va, &v.to_le_bytes())
    }

    /// Fetch up to 16 instruction bytes at `va` with execute permission
    /// checks. Returns how many bytes were fetched (short reads happen at
    /// mapping boundaries, which the decoder reports as `Truncated`).
    ///
    /// # Errors
    ///
    /// [`Fault::NotExecutable`] for NX pages, [`Fault::MmioExec`] for
    /// device pages, [`Fault::Unmapped`] if the *first* page is missing.
    pub fn fetch(&self, phys: &PhysMem, va: u64, buf: &mut [u8; 16]) -> Result<usize, Fault> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let t = match self.translate(cur, Access::Exec) {
                Ok(t) => t,
                Err(Fault::MmioExec { va }) | Err(Fault::MmioData { va }) => {
                    return Err(Fault::MmioExec { va })
                }
                Err(e) if done > 0 => {
                    // Short fetch at a mapping edge: let the decoder decide.
                    let _ = e;
                    return Ok(done);
                }
                Err(e) => return Err(e),
            };
            match t.pte.kind {
                PteKind::Frame(pfn) => phys.read(pfn, off, &mut buf[done..done + n]),
                PteKind::Mmio { .. } => return Err(Fault::MmioExec { va: cur }),
            }
            done += n;
        }
        Ok(done)
    }

    /// Apply a [`Batch`] of page-table mutations under **one** write-lock
    /// acquisition, publishing a single invalidation set with one
    /// generation bump (the batched-shootdown fast path; see [`Batch`]'s
    /// docs).
    ///
    /// Application is atomic: on a fault, every already-applied
    /// operation is rolled back, no generation bump is published, and
    /// the space is exactly as it was before the call.
    ///
    /// When the invalidation log is disabled (`with_inval_log(0)` — the
    /// ablation baseline), mutations stay atomic but the publication
    /// cost reverts to the legacy regime: one generation bump per
    /// invalidating operation (and per *page* for `protect_range`, which
    /// is what the pre-batching code paid).
    ///
    /// # Errors
    ///
    /// The first fault any queued operation raises; the batch is rolled
    /// back.
    pub fn apply(&self, batch: Batch) -> Result<BatchOutcome, Fault> {
        enum Undo {
            Unmap(u64),
            Remap(u64, Pte),
            Protect(u64, PteFlags),
            Swap(u64, Pte),
        }
        for op in &batch.ops {
            let (va, pages) = match op {
                BatchOp::Map { va, .. } | BatchOp::SwapFrame { va, .. } => (*va, 1),
                BatchOp::UnmapRange { va, pages }
                | BatchOp::UnmapSparse { va, pages }
                | BatchOp::ProtectRange { va, pages, .. } => (*va, (*pages).max(1)),
            };
            check_va(va)?;
            // Every page of a range op must be canonical, not just its
            // base: the radix walk masks high bits, so a range running
            // past the boundary would silently alias — and mutate —
            // low canonical addresses outside the published
            // invalidation span. Canonical space is contiguous, so
            // checking the last page covers the whole run.
            let last = (pages as u64 - 1)
                .checked_mul(PAGE_SIZE as u64)
                .and_then(|off| va.checked_add(off))
                .ok_or(Fault::NonCanonical { va })?;
            check_va(last)?;
        }
        let mut removed = Vec::new();
        let mut undo: Vec<Undo> = Vec::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        // Gen bumps the legacy (log-disabled) regime would have paid.
        let mut legacy_shootdowns = 0u64;
        let mut mapped = 0u64;
        let mut unmapped = 0u64;
        let mut protects = 0u64;
        let mut fault: Option<Fault> = None;
        let mut node = self.root.write();
        'ops: for op in &batch.ops {
            match *op {
                BatchOp::Map { va, pfn, flags } => {
                    let pte = Pte {
                        kind: PteKind::Frame(pfn),
                        flags,
                    };
                    match map_in(&mut node, va, pte) {
                        Ok(()) => {
                            undo.push(Undo::Unmap(va));
                            mapped += 1;
                        }
                        Err(f) => {
                            fault = Some(f);
                            break 'ops;
                        }
                    }
                }
                BatchOp::UnmapRange { va, pages } => {
                    for i in 0..pages {
                        let page_va = va + (i * PAGE_SIZE) as u64;
                        match unmap_in(&mut node, page_va) {
                            Ok(pte) => {
                                removed.push(pte);
                                undo.push(Undo::Remap(page_va, pte));
                                unmapped += 1;
                            }
                            Err(f) => {
                                fault = Some(f);
                                break 'ops;
                            }
                        }
                    }
                    spans.push((va, va + (pages * PAGE_SIZE) as u64));
                    legacy_shootdowns += 1;
                }
                BatchOp::UnmapSparse { va, pages } => {
                    for i in 0..pages {
                        let page_va = va + (i * PAGE_SIZE) as u64;
                        if let Ok(pte) = unmap_in(&mut node, page_va) {
                            removed.push(pte);
                            undo.push(Undo::Remap(page_va, pte));
                            unmapped += 1;
                        }
                    }
                    spans.push((va, va + (pages * PAGE_SIZE) as u64));
                    legacy_shootdowns += 1;
                }
                BatchOp::ProtectRange { va, pages, flags } => {
                    for i in 0..pages {
                        let page_va = va + (i * PAGE_SIZE) as u64;
                        match protect_in(&mut node, page_va, flags) {
                            Ok(old) => {
                                undo.push(Undo::Protect(page_va, old));
                                protects += 1;
                            }
                            Err(f) => {
                                fault = Some(f);
                                break 'ops;
                            }
                        }
                    }
                    spans.push((va, va + (pages * PAGE_SIZE) as u64));
                    legacy_shootdowns += pages as u64;
                }
                BatchOp::SwapFrame { va, pfn, flags } => {
                    let pte = Pte {
                        kind: PteKind::Frame(pfn),
                        flags,
                    };
                    match replace_in(&mut node, va, pte) {
                        Ok(old) => {
                            removed.push(old);
                            undo.push(Undo::Swap(va, old));
                            spans.push((va, va + PAGE_SIZE as u64));
                            legacy_shootdowns += 1;
                        }
                        Err(f) => {
                            fault = Some(f);
                            break 'ops;
                        }
                    }
                }
            }
        }
        if let Some(fault) = fault {
            // Roll back in reverse: the space must be byte-identical to
            // its pre-batch state, so callers can simply retry.
            for u in undo.into_iter().rev() {
                match u {
                    Undo::Unmap(va) => {
                        unmap_in(&mut node, va).expect("batch rollback: unmap");
                    }
                    Undo::Remap(va, pte) => {
                        map_in(&mut node, va, pte).expect("batch rollback: remap");
                    }
                    Undo::Protect(va, old) => {
                        protect_in(&mut node, va, old).expect("batch rollback: protect");
                    }
                    Undo::Swap(va, old) => {
                        replace_in(&mut node, va, old).expect("batch rollback: swap");
                    }
                }
            }
            return Err(fault);
        }
        drop(node);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.pages_mapped.fetch_add(mapped, Ordering::Relaxed);
        self.stats
            .pages_unmapped
            .fetch_add(unmapped, Ordering::Relaxed);
        self.stats.protects.fetch_add(protects, Ordering::Relaxed);
        let pages_invalidated = spans.iter().map(|&(s, e)| (e - s) / PAGE_SIZE as u64).sum();
        let shootdowns = if spans.is_empty() {
            0
        } else if self.inval_capacity == 0 {
            // Ablation baseline: pay the legacy per-op publication cost.
            self.generation
                .fetch_add(legacy_shootdowns, Ordering::AcqRel);
            self.stats
                .shootdowns
                .fetch_add(legacy_shootdowns, Ordering::Relaxed);
            legacy_shootdowns
        } else {
            self.shootdown_epoch(spans, batch.epoch);
            1
        };
        Ok(BatchOutcome {
            removed,
            pages_invalidated,
            shootdowns,
        })
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> SpaceStats {
        SpaceStats {
            pages_mapped: self.stats.pages_mapped.load(Ordering::Relaxed),
            pages_unmapped: self.stats.pages_unmapped.load(Ordering::Relaxed),
            protects: self.stats.protects.load(Ordering::Relaxed),
            shootdowns: self.stats.shootdowns.load(Ordering::Relaxed),
            walks: self.stats.walks.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            coalesced_shootdowns: self.stats.coalesced_shootdowns.load(Ordering::Relaxed),
        }
    }
}

/// What [`AddressSpace::apply`] did.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Old leaves removed by `unmap_range`/`unmap_sparse`/`swap_frame`
    /// operations, in application order.
    pub removed: Vec<Pte>,
    /// Pages covered by the published invalidation set.
    pub pages_invalidated: u64,
    /// Generation bumps the batch published (1 in the range-based
    /// regime, the legacy per-op count under `with_inval_log(0)`, 0 for
    /// a map-only batch).
    pub shootdowns: u64,
}

/// Sort and merge overlapping or adjacent `[start, end)` spans in
/// place. Per-page operations (the GOT swing emits one span per page)
/// collapse to one contiguous span, keeping resynchronization plans
/// compact — and under [`MAX_SYNC_SPANS`], where an uncoalesced list
/// would needlessly degrade lagging TLBs to full flushes.
fn coalesce_spans(spans: &mut Vec<(u64, u64)>) {
    if spans.len() < 2 {
        return;
    }
    spans.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for &(start, end) in spans.iter() {
        match merged.last_mut() {
            Some((_, prev_end)) if start <= *prev_end => *prev_end = (*prev_end).max(end),
            _ => merged.push((start, end)),
        }
    }
    *spans = merged;
}

fn check_va(va: u64) -> Result<(), Fault> {
    if va & !VA_MASK != 0 {
        return Err(Fault::NonCanonical { va });
    }
    debug_assert_eq!(page_offset(va), 0, "page-aligned address required");
    Ok(())
}

/// Map `pte` at `va`, creating intermediate tables (caller holds the
/// write lock).
fn map_in(root: &mut Node, va: u64, pte: Pte) -> Result<(), Fault> {
    let mut cur: &mut Node = root;
    for level in 0..LEVELS - 1 {
        let idx = level_index(va, level);
        let slot = &mut cur.slots[idx];
        match slot {
            Entry::Empty => {
                *slot = Entry::Table(Box::new(Node::new()));
            }
            Entry::Table(_) => {}
            Entry::Leaf(_) => return Err(Fault::AlreadyMapped { va }),
        }
        cur = match slot {
            Entry::Table(t) => t,
            _ => unreachable!(),
        };
    }
    let idx = level_index(va, LEVELS - 1);
    match &mut cur.slots[idx] {
        slot @ Entry::Empty => {
            *slot = Entry::Leaf(pte);
            Ok(())
        }
        _ => Err(Fault::AlreadyMapped { va }),
    }
}

/// Remove the leaf at `va`, pruning empty tables (caller holds the
/// write lock).
fn unmap_in(root: &mut Node, va: u64) -> Result<Pte, Fault> {
    fn remove(cur: &mut Node, va: u64, level: u32) -> Result<Pte, Fault> {
        let idx = level_index(va, level);
        if level == LEVELS - 1 {
            return match std::mem::replace(&mut cur.slots[idx], Entry::Empty) {
                Entry::Leaf(pte) => Ok(pte),
                other => {
                    cur.slots[idx] = other;
                    Err(Fault::Unmapped { va })
                }
            };
        }
        match &mut cur.slots[idx] {
            Entry::Table(t) => {
                let pte = remove(t, va, level + 1)?;
                if t.is_empty() {
                    cur.slots[idx] = Entry::Empty;
                }
                Ok(pte)
            }
            _ => Err(Fault::Unmapped { va }),
        }
    }
    remove(root, va, 0)
}

fn leaf_mut(root: &mut Node, va: u64) -> Result<&mut Pte, Fault> {
    let mut cur: &mut Node = root;
    for level in 0..LEVELS - 1 {
        let idx = level_index(va, level);
        cur = match &mut cur.slots[idx] {
            Entry::Table(t) => t,
            _ => return Err(Fault::Unmapped { va }),
        };
    }
    match &mut cur.slots[level_index(va, LEVELS - 1)] {
        Entry::Leaf(pte) => Ok(pte),
        _ => Err(Fault::Unmapped { va }),
    }
}

/// Change the permissions of the leaf at `va`, returning the old flags
/// (caller holds the write lock).
fn protect_in(root: &mut Node, va: u64, flags: PteFlags) -> Result<PteFlags, Fault> {
    let pte = leaf_mut(root, va)?;
    Ok(std::mem::replace(&mut pte.flags, flags))
}

/// Swap the leaf at `va` for `new`, returning the old leaf (caller
/// holds the write lock).
fn replace_in(root: &mut Node, va: u64, new: Pte) -> Result<Pte, Fault> {
    let pte = leaf_mut(root, va)?;
    Ok(std::mem::replace(pte, new))
}

fn check_access(va: u64, pte: &Pte, access: Access) -> Result<(), Fault> {
    match access {
        Access::Read => Ok(()),
        Access::Write => {
            if pte.flags.writable() {
                Ok(())
            } else {
                Err(Fault::NotWritable { va })
            }
        }
        Access::Exec => {
            if let PteKind::Mmio { .. } = pte.kind {
                return Err(Fault::MmioExec { va });
            }
            if pte.flags.executable() {
                Ok(())
            } else {
                Err(Fault::NotExecutable { va })
            }
        }
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("generation", &self.generation())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VA: u64 = 0x00ab_cdef_0012_3000;

    #[test]
    fn map_translate_unmap() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let t = space.translate(VA + 0x123, Access::Read).unwrap();
        assert_eq!(t.pte.kind, PteKind::Frame(pfn));
        assert_eq!(t.page_va, VA);
        assert_eq!(
            space.map(VA, pfn, PteFlags::DATA),
            Err(Fault::AlreadyMapped { va: VA })
        );
        let pte = space.unmap(VA).unwrap();
        assert_eq!(pte.kind, PteKind::Frame(pfn));
        assert_eq!(
            space.translate(VA, Access::Read),
            Err(Fault::Unmapped { va: VA })
        );
    }

    #[test]
    fn permissions_enforced() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::RO_DATA).unwrap();
        assert!(space.translate(VA, Access::Read).is_ok());
        assert_eq!(
            space.translate(VA, Access::Write),
            Err(Fault::NotWritable { va: VA })
        );
        assert_eq!(
            space.translate(VA, Access::Exec),
            Err(Fault::NotExecutable { va: VA })
        );
        // Text pages execute but don't write.
        space.protect(VA, PteFlags::TEXT).unwrap();
        assert!(space.translate(VA, Access::Exec).is_ok());
        assert_eq!(
            space.translate(VA, Access::Write),
            Err(Fault::NotWritable { va: VA })
        );
    }

    #[test]
    fn zero_copy_alias_sees_same_bytes() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let alias = 0x0044_0000_0000_0000u64;
        space.map(alias, pfn, PteFlags::DATA).unwrap();
        space.write_u64(&phys, VA + 8, 77).unwrap();
        assert_eq!(space.read_u64(&phys, alias + 8).unwrap(), 77);
    }

    #[test]
    fn cross_page_rw() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(2), PteFlags::DATA)
            .unwrap();
        let data: Vec<u8> = (0..100).collect();
        let start = VA + PAGE_SIZE as u64 - 50;
        space.write_bytes(&phys, start, &data).unwrap();
        let mut back = vec![0u8; 100];
        space.read_bytes(&phys, start, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn shootdown_generation() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let g0 = space.generation();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        assert_eq!(space.generation(), g0, "map does not shoot down");
        space.protect(VA, PteFlags::RO_DATA).unwrap();
        assert!(space.generation() > g0, "protect shoots down");
        let g1 = space.generation();
        space.unmap(VA).unwrap();
        assert!(space.generation() > g1, "unmap shoots down");
    }

    #[test]
    fn unmap_range_batches_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let leaves = space.unmap_range(VA, 8).unwrap();
        assert_eq!(leaves.len(), 8);
        assert_eq!(space.generation(), g0 + 1, "one shootdown for the range");
    }

    #[test]
    fn replace_swaps_frames_atomically() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let a = phys.alloc();
        let b = phys.alloc();
        phys.write_u64(a, 0, 1);
        phys.write_u64(b, 0, 2);
        space.map(VA, a, PteFlags::RO_DATA).unwrap();
        assert_eq!(space.read_u64(&phys, VA).unwrap(), 1);
        let g0 = space.generation();
        let old = space.replace(VA, b, PteFlags::RO_DATA).unwrap();
        assert_eq!(old.kind, PteKind::Frame(a));
        assert_eq!(space.read_u64(&phys, VA).unwrap(), 2);
        assert!(space.generation() > g0, "replace shoots down");
        assert_eq!(
            space.replace(VA + 0x1000, b, PteFlags::RO_DATA),
            Err(Fault::Unmapped { va: VA + 0x1000 })
        );
    }

    #[test]
    fn mmio_leaves() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map_mmio(VA, 3, 0, PteFlags::DATA).unwrap();
        let t = space.translate(VA, Access::Write).unwrap();
        assert_eq!(t.pte.kind, PteKind::Mmio { dev: 3, page: 0 });
        assert_eq!(space.read_u64(&phys, VA), Err(Fault::MmioData { va: VA }));
        assert_eq!(
            space.translate(VA, Access::Exec),
            Err(Fault::MmioExec { va: VA })
        );
    }

    #[test]
    fn non_canonical_rejected() {
        let space = AddressSpace::new();
        let phys = PhysMem::new();
        let bad = 1u64 << 60;
        assert_eq!(
            space.map(bad, phys.alloc(), PteFlags::DATA),
            Err(Fault::NonCanonical { va: bad })
        );
        assert_eq!(
            space.translate(bad, Access::Read),
            Err(Fault::NonCanonical { va: bad })
        );
    }

    #[test]
    fn leaves_of_range_gathers() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfns = phys.alloc_n(4);
        space.map_range(VA, &pfns, PteFlags::TEXT).unwrap();
        let leaves = space.leaves_of_range(VA, 4).unwrap();
        for (l, p) in leaves.iter().zip(&pfns) {
            assert_eq!(l.kind, PteKind::Frame(*p));
        }
    }

    #[test]
    fn fetch_short_read_at_edge() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::TEXT).unwrap();
        let mut buf = [0u8; 16];
        // Fetch 8 bytes before the end of the mapped page → short read.
        let n = space
            .fetch(&phys, VA + PAGE_SIZE as u64 - 8, &mut buf)
            .unwrap();
        assert_eq!(n, 8);
        // Fetch entirely outside → fault.
        assert!(space.fetch(&phys, VA + PAGE_SIZE as u64, &mut buf).is_err());
    }

    #[test]
    fn batch_applies_with_one_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let swap = phys.alloc();
        let mut batch = Batch::new();
        batch
            .map_range(VA + 0x10_0000, &phys.alloc_n(2), PteFlags::TEXT)
            .unmap_range(VA, 2)
            .protect_range(VA + 2 * PAGE_SIZE as u64, 2, PteFlags::RO_DATA)
            .swap_frame(VA + 3 * PAGE_SIZE as u64, swap, PteFlags::RO_DATA);
        let outcome = space.apply(batch).unwrap();
        assert_eq!(space.generation(), g0 + 1, "one bump for the whole batch");
        assert_eq!(outcome.shootdowns, 1);
        assert_eq!(outcome.removed.len(), 3, "2 unmapped + 1 swapped-out");
        assert_eq!(outcome.pages_invalidated, 2 + 2 + 1);
        assert!(space.translate(VA, Access::Read).is_err());
        assert!(space.translate(VA + 0x10_0000, Access::Exec).is_ok());
        assert_eq!(
            space
                .translate(VA + 2 * PAGE_SIZE as u64, Access::Read)
                .unwrap()
                .pte
                .flags,
            PteFlags::RO_DATA
        );
        assert_eq!(
            space
                .translate(VA + 3 * PAGE_SIZE as u64, Access::Read)
                .unwrap()
                .pte
                .kind,
            PteKind::Frame(swap)
        );
    }

    #[test]
    fn failed_batch_rolls_back_completely() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfns = phys.alloc_n(2);
        space.map_range(VA, &pfns, PteFlags::DATA).unwrap();
        let g0 = space.generation();
        let s0 = space.stats();
        let mut batch = Batch::new();
        batch
            .unmap_range(VA, 2)
            .protect_range(VA + 0x20_0000, 1, PteFlags::TEXT) // unmapped → faults
            .map_page(VA + 0x30_0000, phys.alloc(), PteFlags::DATA);
        let err = space.apply(batch).unwrap_err();
        assert!(matches!(err, Fault::Unmapped { .. }));
        // Atomicity: the unmap that *did* apply was rolled back, no
        // generation bump was published, and the stats saw nothing.
        assert_eq!(space.generation(), g0);
        assert_eq!(space.stats().pages_unmapped, s0.pages_unmapped);
        for (i, &pfn) in pfns.iter().enumerate() {
            let t = space
                .translate(VA + (i * PAGE_SIZE) as u64, Access::Read)
                .unwrap();
            assert_eq!(t.pte.kind, PteKind::Frame(pfn));
        }
        assert!(space.translate(VA + 0x30_0000, Access::Read).is_err());
    }

    #[test]
    fn map_only_batch_publishes_no_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let g0 = space.generation();
        let mut batch = Batch::new();
        batch.map_range(VA, &phys.alloc_n(3), PteFlags::DATA);
        let outcome = space.apply(batch).unwrap();
        assert_eq!(outcome.shootdowns, 0);
        assert_eq!(space.generation(), g0, "pure maps invalidate nothing");
    }

    #[test]
    fn same_epoch_batches_coalesce_into_one_log_slot() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let mut a = Batch::new().epoch(7);
        a.unmap_range(VA, 2);
        let mut b = Batch::new().epoch(7);
        b.unmap_range(VA + 2 * PAGE_SIZE as u64, 2);
        let seen = space.generation();
        space.apply(a).unwrap();
        space.apply(b).unwrap();
        assert_eq!(space.generation(), seen + 2, "each batch still bumps");
        assert_eq!(space.stats().coalesced_shootdowns, 1, "but slots merged");
        // A TLB that lagged across the whole epoch resynchronizes with
        // one merged partial pass; the two adjacent batch spans have
        // been coalesced into a single contiguous span.
        match space.plan_sync(seen) {
            (cur, TlbSync::Ranges(spans)) => {
                assert_eq!(cur, seen + 2);
                assert_eq!(spans, vec![(VA, VA + 4 * PAGE_SIZE as u64)]);
            }
            other => panic!("expected ranges, got {other:?}"),
        }
    }

    /// Regression: a range op whose *tail* crosses the canonical
    /// boundary used to pass the base-only check and alias low
    /// canonical addresses through the masked radix walk — unmapping a
    /// victim page with no covering invalidation span.
    #[test]
    fn batch_range_crossing_canonical_boundary_is_rejected() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let victim = 0x1000u64;
        space.map(victim, phys.alloc(), PteFlags::DATA).unwrap();
        let edge = (VA_MASK + 1) - PAGE_SIZE as u64; // last canonical page
        for build in [
            |b: &mut Batch, va: u64| {
                b.unmap_sparse(va, 3);
            },
            |b: &mut Batch, va: u64| {
                b.unmap_range(va, 3);
            },
            |b: &mut Batch, va: u64| {
                b.protect_range(va, 3, PteFlags::RO_DATA);
            },
        ] {
            let mut batch = Batch::new();
            build(&mut batch, edge);
            assert!(matches!(
                space.apply(batch),
                Err(Fault::NonCanonical { .. })
            ));
        }
        // Overflowing the address space entirely is rejected too.
        let mut batch = Batch::new();
        batch.unmap_sparse(edge, usize::MAX / PAGE_SIZE);
        assert!(matches!(
            space.apply(batch),
            Err(Fault::NonCanonical { .. })
        ));
        // The victim never lost its mapping.
        assert!(space.translate(victim, Access::Read).is_ok());
    }

    /// A per-page op burst (the GOT-swing shape) must not trip the
    /// span ceiling: adjacent single-page spans coalesce at
    /// publication, so the partial-flush path survives batches far
    /// wider than `MAX_SYNC_SPANS`.
    #[test]
    fn per_page_spans_coalesce_below_the_sync_ceiling() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pages = 128; // 2× MAX_SYNC_SPANS
        space
            .map_range(VA, &phys.alloc_n(pages), PteFlags::DATA)
            .unwrap();
        let seen = space.generation();
        let mut batch = Batch::new();
        for i in 0..pages {
            batch.swap_frame(VA + (i * PAGE_SIZE) as u64, phys.alloc(), PteFlags::RO_DATA);
        }
        space.apply(batch).unwrap();
        match space.plan_sync(seen) {
            (_, TlbSync::Ranges(spans)) => {
                assert_eq!(spans, vec![(VA, VA + (pages * PAGE_SIZE) as u64)]);
            }
            other => panic!("128 adjacent page spans must coalesce, got {other:?}"),
        }
    }

    #[test]
    fn plan_sync_degrades_to_full_past_the_horizon() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(2);
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let seen = space.generation();
        for i in 0..4u64 {
            space.unmap(VA + i * PAGE_SIZE as u64).unwrap();
        }
        assert!(matches!(space.plan_sync(seen), (_, TlbSync::Full)));
        // A fresh snapshot within the horizon gets ranges.
        let recent = space.generation() - 1;
        assert!(matches!(
            space.plan_sync(recent),
            (_, TlbSync::Ranges(ref s)) if s.len() == 1
        ));
        assert!(matches!(
            space.plan_sync(space.generation()),
            (_, TlbSync::Current)
        ));
    }

    #[test]
    fn disabled_log_batch_pays_legacy_per_op_shootdowns() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(0);
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let mut batch = Batch::new();
        batch
            .unmap_range(VA, 1)
            .protect_range(VA + PAGE_SIZE as u64, 2, PteFlags::RO_DATA)
            .swap_frame(VA + 3 * PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA);
        let outcome = space.apply(batch).unwrap();
        // 1 (unmap) + 2 (protect per page, the legacy cost) + 1 (swap).
        assert_eq!(outcome.shootdowns, 4);
        assert_eq!(space.generation(), g0 + 4);
        assert!(matches!(space.plan_sync(g0), (_, TlbSync::Full)));
    }

    #[test]
    fn stats_track_activity() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(3), PteFlags::DATA)
            .unwrap();
        space.unmap(VA).unwrap();
        let s = space.stats();
        assert_eq!(s.pages_mapped, 3);
        assert_eq!(s.pages_unmapped, 1);
        assert!(s.walks > 0 || s.shootdowns > 0);
    }
}
