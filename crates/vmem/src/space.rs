//! The address space: a 5-level radix page table with permission bits,
//! aliased (zero-copy) mappings, and MMIO leaves.

use crate::{
    page_base, page_offset, Access, Fault, Pfn, PhysMem, LEVELS, PAGE_SHIFT, PAGE_SIZE, VA_MASK,
};
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page permission flags.
///
/// A mapped page is always "present"; the two bits model the x86-64
/// `W` and `NX` bits the paper's defences rely on (write-protected GOTs,
/// non-executable data).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Read-only, executable — the protection of text pages.
    pub const TEXT: PteFlags = PteFlags(0);
    /// Writable bit.
    pub const WRITABLE: PteFlags = PteFlags(1);
    /// No-execute bit.
    pub const NX: PteFlags = PteFlags(2);
    /// Writable and no-execute — the protection of data pages.
    pub const DATA: PteFlags = PteFlags(1 | 2);
    /// Read-only, no-execute — the protection of `.rodata` and sealed GOTs.
    pub const RO_DATA: PteFlags = PteFlags(2);

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Whether the page can be written.
    pub fn writable(self) -> bool {
        self.contains(PteFlags::WRITABLE)
    }

    /// Whether the page can be executed.
    pub fn executable(self) -> bool {
        !self.contains(PteFlags::NX)
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}{}",
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' }
        )
    }
}

/// What a leaf translation points at.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PteKind {
    /// Ordinary memory frame.
    Frame(Pfn),
    /// Device register page: `dev` is the device id in the kernel's MMIO
    /// registry, `page` the page index within the device's BAR.
    Mmio { dev: u32, page: u32 },
}

/// A page-table leaf entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Pte {
    /// Frame or MMIO target.
    pub kind: PteKind,
    /// Permissions.
    pub flags: PteFlags,
}

impl Pte {
    /// Check this entry against an access kind (used by TLBs re-checking
    /// cached entries — permissions live in the entry, not the cache).
    ///
    /// # Errors
    ///
    /// The same faults [`AddressSpace::translate`] would raise.
    pub fn check(&self, va: u64, access: Access) -> Result<(), Fault> {
        check_access(va, self, access)
    }
}

/// A successful translation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Translation {
    /// The leaf entry.
    pub pte: Pte,
    /// Base virtual address of the page containing the query.
    pub page_va: u64,
}

enum Entry {
    Empty,
    Table(Box<Node>),
    Leaf(Pte),
}

struct Node {
    slots: Box<[Entry; 512]>,
}

impl Node {
    fn new() -> Node {
        Node {
            slots: Box::new(std::array::from_fn(|_| Entry::Empty)),
        }
    }

    /// Whether every slot is empty (so the node can be pruned).
    fn is_empty(&self) -> bool {
        self.slots.iter().all(|e| matches!(e, Entry::Empty))
    }
}

/// Snapshot of address-space activity counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct SpaceStats {
    /// Pages mapped over the lifetime.
    pub pages_mapped: u64,
    /// Pages unmapped over the lifetime.
    pub pages_unmapped: u64,
    /// Permission changes.
    pub protects: u64,
    /// TLB shootdowns (generation bumps).
    pub shootdowns: u64,
    /// Page-table walks performed.
    pub walks: u64,
}

#[derive(Default)]
struct AtomicStats {
    pages_mapped: AtomicU64,
    pages_unmapped: AtomicU64,
    protects: AtomicU64,
    shootdowns: AtomicU64,
    walks: AtomicU64,
}

/// A single (kernel) address space.
///
/// All methods take `&self`; the table lives behind a reader/writer lock
/// so translation (the hot path, used by every simulated instruction)
/// proceeds concurrently while mapping changes serialize — the same
/// discipline as kernel page-table locks.
pub struct AddressSpace {
    root: RwLock<Node>,
    generation: AtomicU64,
    stats: AtomicStats,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

fn level_index(va: u64, level: u32) -> usize {
    // level 0 = top. Each level resolves 9 bits.
    let shift = PAGE_SHIFT + 9 * (LEVELS - 1 - level);
    ((va >> shift) & 0x1FF) as usize
}

impl AddressSpace {
    /// Create an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            root: RwLock::new(Node::new()),
            generation: AtomicU64::new(0),
            stats: AtomicStats::default(),
        }
    }

    /// The current TLB generation. Cached translations from earlier
    /// generations must be discarded (see [`crate::Tlb`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn shootdown(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.stats.shootdowns.fetch_add(1, Ordering::Relaxed);
    }

    fn check(&self, va: u64) -> Result<(), Fault> {
        if va & !VA_MASK != 0 {
            return Err(Fault::NonCanonical { va });
        }
        debug_assert_eq!(page_offset(va), 0, "page-aligned address required");
        Ok(())
    }

    /// Map one page at `va` (page-aligned) to `pfn`.
    ///
    /// Mapping the same frame at several addresses is allowed — that *is*
    /// the paper's zero-copy mechanism.
    ///
    /// # Errors
    ///
    /// [`Fault::AlreadyMapped`] if `va` already has a mapping,
    /// [`Fault::NonCanonical`] for out-of-range addresses.
    pub fn map(&self, va: u64, pfn: Pfn, flags: PteFlags) -> Result<(), Fault> {
        self.map_pte(
            va,
            Pte {
                kind: PteKind::Frame(pfn),
                flags,
            },
        )
    }

    /// Map a device register page.
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::map`].
    pub fn map_mmio(&self, va: u64, dev: u32, page: u32, flags: PteFlags) -> Result<(), Fault> {
        self.map_pte(
            va,
            Pte {
                kind: PteKind::Mmio { dev, page },
                flags,
            },
        )
    }

    fn map_pte(&self, va: u64, pte: Pte) -> Result<(), Fault> {
        self.check(va)?;
        let mut node = self.root.write();
        let mut cur: &mut Node = &mut node;
        for level in 0..LEVELS - 1 {
            let idx = level_index(va, level);
            let slot = &mut cur.slots[idx];
            match slot {
                Entry::Empty => {
                    *slot = Entry::Table(Box::new(Node::new()));
                }
                Entry::Table(_) => {}
                Entry::Leaf(_) => return Err(Fault::AlreadyMapped { va }),
            }
            cur = match slot {
                Entry::Table(t) => t,
                _ => unreachable!(),
            };
        }
        let idx = level_index(va, LEVELS - 1);
        match &mut cur.slots[idx] {
            slot @ Entry::Empty => {
                *slot = Entry::Leaf(pte);
                self.stats.pages_mapped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(Fault::AlreadyMapped { va }),
        }
    }

    /// Map a run of frames contiguously starting at `va`.
    ///
    /// # Errors
    ///
    /// Fails on the first conflicting page (earlier pages stay mapped).
    pub fn map_range(&self, va: u64, pfns: &[Pfn], flags: PteFlags) -> Result<(), Fault> {
        for (i, &pfn) in pfns.iter().enumerate() {
            self.map(va + (i * PAGE_SIZE) as u64, pfn, flags)?;
        }
        Ok(())
    }

    /// Remove the mapping at `va`, returning the old leaf.
    ///
    /// Bumps the TLB generation (shootdown).
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if nothing is mapped there.
    pub fn unmap(&self, va: u64) -> Result<Pte, Fault> {
        let pte = self.unmap_quiet(va)?;
        self.shootdown();
        Ok(pte)
    }

    fn unmap_quiet(&self, va: u64) -> Result<Pte, Fault> {
        self.check(va)?;
        let mut node = self.root.write();
        fn remove(cur: &mut Node, va: u64, level: u32) -> Result<Pte, Fault> {
            let idx = level_index(va, level);
            if level == LEVELS - 1 {
                return match std::mem::replace(&mut cur.slots[idx], Entry::Empty) {
                    Entry::Leaf(pte) => Ok(pte),
                    other => {
                        cur.slots[idx] = other;
                        Err(Fault::Unmapped { va })
                    }
                };
            }
            match &mut cur.slots[idx] {
                Entry::Table(t) => {
                    let pte = remove(t, va, level + 1)?;
                    if t.is_empty() {
                        cur.slots[idx] = Entry::Empty;
                    }
                    Ok(pte)
                }
                _ => Err(Fault::Unmapped { va }),
            }
        }
        let pte = remove(&mut node, va, 0)?;
        self.stats.pages_unmapped.fetch_add(1, Ordering::Relaxed);
        Ok(pte)
    }

    /// Unmap `n` consecutive pages, returning their leaves. One shootdown
    /// covers the whole range (batched invalidation, like `flush_tlb_range`).
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped page.
    pub fn unmap_range(&self, va: u64, n: usize) -> Result<Vec<Pte>, Fault> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.unmap_quiet(va + (i * PAGE_SIZE) as u64)?);
        }
        self.shootdown();
        Ok(out)
    }

    /// Unmap every mapped page in `[va, va + n pages)`, skipping holes;
    /// returns the removed leaves. One shootdown for the whole range —
    /// what the re-randomizer's retire step uses, since alignment-tail
    /// pages were never mapped.
    pub fn unmap_sparse(&self, va: u64, n: usize) -> Vec<Pte> {
        let mut out = Vec::new();
        for i in 0..n {
            if let Ok(pte) = self.unmap_quiet(va + (i * PAGE_SIZE) as u64) {
                out.push(pte);
            }
        }
        self.shootdown();
        out
    }

    /// Atomically swap the frame behind a mapped page, returning the old
    /// leaf. This is how the re-randomizer swings a GOT page onto a
    /// freshly built table (paper §4.2: "GOT pages … are remapped to
    /// point to the new GOTs") without a window where the page is
    /// unmapped. Bumps the TLB generation.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if the page is not mapped.
    pub fn replace(&self, va: u64, pfn: Pfn, flags: PteFlags) -> Result<Pte, Fault> {
        self.check(va)?;
        let old = {
            let mut node = self.root.write();
            let mut cur: &mut Node = &mut node;
            for level in 0..LEVELS - 1 {
                let idx = level_index(va, level);
                cur = match &mut cur.slots[idx] {
                    Entry::Table(t) => t,
                    _ => return Err(Fault::Unmapped { va }),
                };
            }
            match &mut cur.slots[level_index(va, LEVELS - 1)] {
                Entry::Leaf(pte) => std::mem::replace(
                    pte,
                    Pte {
                        kind: PteKind::Frame(pfn),
                        flags,
                    },
                ),
                _ => return Err(Fault::Unmapped { va }),
            }
        };
        self.shootdown();
        Ok(old)
    }

    /// Change the permissions of a mapped page (e.g. write-protecting a
    /// GOT after initialization, §4.1). Bumps the TLB generation.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if the page is not mapped.
    pub fn protect(&self, va: u64, flags: PteFlags) -> Result<(), Fault> {
        self.check(va)?;
        {
            let mut node = self.root.write();
            let mut cur: &mut Node = &mut node;
            for level in 0..LEVELS - 1 {
                let idx = level_index(va, level);
                cur = match &mut cur.slots[idx] {
                    Entry::Table(t) => t,
                    _ => return Err(Fault::Unmapped { va }),
                };
            }
            match &mut cur.slots[level_index(va, LEVELS - 1)] {
                Entry::Leaf(pte) => pte.flags = flags,
                _ => return Err(Fault::Unmapped { va }),
            }
        }
        self.stats.protects.fetch_add(1, Ordering::Relaxed);
        self.shootdown();
        Ok(())
    }

    /// [`AddressSpace::protect`] over `n` consecutive pages.
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped page.
    pub fn protect_range(&self, va: u64, n: usize, flags: PteFlags) -> Result<(), Fault> {
        for i in 0..n {
            self.protect(va + (i * PAGE_SIZE) as u64, flags)?;
        }
        Ok(())
    }

    /// Translate `va` for the given access kind.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`], [`Fault::NotWritable`], [`Fault::NotExecutable`],
    /// [`Fault::MmioExec`], or [`Fault::NonCanonical`].
    pub fn translate(&self, va: u64, access: Access) -> Result<Translation, Fault> {
        if va & !VA_MASK != 0 {
            return Err(Fault::NonCanonical { va });
        }
        self.stats.walks.fetch_add(1, Ordering::Relaxed);
        let node = self.root.read();
        let mut cur: &Node = &node;
        for level in 0..LEVELS - 1 {
            let idx = level_index(va, level);
            cur = match &cur.slots[idx] {
                Entry::Table(t) => t,
                _ => return Err(Fault::Unmapped { va }),
            };
        }
        let pte = match &cur.slots[level_index(va, LEVELS - 1)] {
            Entry::Leaf(pte) => *pte,
            _ => return Err(Fault::Unmapped { va }),
        };
        check_access(va, &pte, access)?;
        Ok(Translation {
            pte,
            page_va: page_base(va),
        })
    }

    /// Collect the leaves backing `n` consecutive pages — the gather step
    /// of the zero-copy remap.
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn leaves_of_range(&self, va: u64, n: usize) -> Result<Vec<Pte>, Fault> {
        (0..n)
            .map(|i| {
                self.translate(va + (i * PAGE_SIZE) as u64, Access::Read)
                    .map(|t| t.pte)
            })
            .collect()
    }

    /// Read `buf.len()` bytes starting at `va` (may cross pages).
    ///
    /// # Errors
    ///
    /// Translation faults, or [`Fault::MmioData`] if the range covers an
    /// MMIO page (device access must go through the interpreter).
    pub fn read_bytes(&self, phys: &PhysMem, va: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.access_bytes(phys, va, Access::Read, buf.len(), |pfn, off, i, n, phys| {
            phys.read(pfn, off, &mut buf[i..i + n]);
        })
    }

    /// Write bytes starting at `va` (may cross pages).
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::read_bytes`], plus [`Fault::NotWritable`].
    pub fn write_bytes(&self, phys: &PhysMem, va: u64, bytes: &[u8]) -> Result<(), Fault> {
        self.access_bytes(
            phys,
            va,
            Access::Write,
            bytes.len(),
            |pfn, off, i, n, phys| {
                phys.write(pfn, off, &bytes[i..i + n]);
            },
        )
    }

    fn access_bytes(
        &self,
        phys: &PhysMem,
        va: u64,
        access: Access,
        len: usize,
        mut f: impl FnMut(Pfn, usize, usize, usize, &PhysMem),
    ) -> Result<(), Fault> {
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(len - done);
            let t = self.translate(cur, access)?;
            match t.pte.kind {
                PteKind::Frame(pfn) => f(pfn, off, done, n, phys),
                PteKind::Mmio { .. } => return Err(Fault::MmioData { va: cur }),
            }
            done += n;
        }
        Ok(())
    }

    /// Read a little-endian u64 at `va`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::read_bytes`].
    pub fn read_u64(&self, phys: &PhysMem, va: u64) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read_bytes(phys, va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64 at `va`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::write_bytes`].
    pub fn write_u64(&self, phys: &PhysMem, va: u64, v: u64) -> Result<(), Fault> {
        self.write_bytes(phys, va, &v.to_le_bytes())
    }

    /// Fetch up to 16 instruction bytes at `va` with execute permission
    /// checks. Returns how many bytes were fetched (short reads happen at
    /// mapping boundaries, which the decoder reports as `Truncated`).
    ///
    /// # Errors
    ///
    /// [`Fault::NotExecutable`] for NX pages, [`Fault::MmioExec`] for
    /// device pages, [`Fault::Unmapped`] if the *first* page is missing.
    pub fn fetch(&self, phys: &PhysMem, va: u64, buf: &mut [u8; 16]) -> Result<usize, Fault> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let t = match self.translate(cur, Access::Exec) {
                Ok(t) => t,
                Err(Fault::MmioExec { va }) | Err(Fault::MmioData { va }) => {
                    return Err(Fault::MmioExec { va })
                }
                Err(e) if done > 0 => {
                    // Short fetch at a mapping edge: let the decoder decide.
                    let _ = e;
                    return Ok(done);
                }
                Err(e) => return Err(e),
            };
            match t.pte.kind {
                PteKind::Frame(pfn) => phys.read(pfn, off, &mut buf[done..done + n]),
                PteKind::Mmio { .. } => return Err(Fault::MmioExec { va: cur }),
            }
            done += n;
        }
        Ok(done)
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> SpaceStats {
        SpaceStats {
            pages_mapped: self.stats.pages_mapped.load(Ordering::Relaxed),
            pages_unmapped: self.stats.pages_unmapped.load(Ordering::Relaxed),
            protects: self.stats.protects.load(Ordering::Relaxed),
            shootdowns: self.stats.shootdowns.load(Ordering::Relaxed),
            walks: self.stats.walks.load(Ordering::Relaxed),
        }
    }
}

fn check_access(va: u64, pte: &Pte, access: Access) -> Result<(), Fault> {
    match access {
        Access::Read => Ok(()),
        Access::Write => {
            if pte.flags.writable() {
                Ok(())
            } else {
                Err(Fault::NotWritable { va })
            }
        }
        Access::Exec => {
            if let PteKind::Mmio { .. } = pte.kind {
                return Err(Fault::MmioExec { va });
            }
            if pte.flags.executable() {
                Ok(())
            } else {
                Err(Fault::NotExecutable { va })
            }
        }
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("generation", &self.generation())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VA: u64 = 0x00ab_cdef_0012_3000;

    #[test]
    fn map_translate_unmap() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let t = space.translate(VA + 0x123, Access::Read).unwrap();
        assert_eq!(t.pte.kind, PteKind::Frame(pfn));
        assert_eq!(t.page_va, VA);
        assert_eq!(
            space.map(VA, pfn, PteFlags::DATA),
            Err(Fault::AlreadyMapped { va: VA })
        );
        let pte = space.unmap(VA).unwrap();
        assert_eq!(pte.kind, PteKind::Frame(pfn));
        assert_eq!(
            space.translate(VA, Access::Read),
            Err(Fault::Unmapped { va: VA })
        );
    }

    #[test]
    fn permissions_enforced() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::RO_DATA).unwrap();
        assert!(space.translate(VA, Access::Read).is_ok());
        assert_eq!(
            space.translate(VA, Access::Write),
            Err(Fault::NotWritable { va: VA })
        );
        assert_eq!(
            space.translate(VA, Access::Exec),
            Err(Fault::NotExecutable { va: VA })
        );
        // Text pages execute but don't write.
        space.protect(VA, PteFlags::TEXT).unwrap();
        assert!(space.translate(VA, Access::Exec).is_ok());
        assert_eq!(
            space.translate(VA, Access::Write),
            Err(Fault::NotWritable { va: VA })
        );
    }

    #[test]
    fn zero_copy_alias_sees_same_bytes() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let alias = 0x0044_0000_0000_0000u64;
        space.map(alias, pfn, PteFlags::DATA).unwrap();
        space.write_u64(&phys, VA + 8, 77).unwrap();
        assert_eq!(space.read_u64(&phys, alias + 8).unwrap(), 77);
    }

    #[test]
    fn cross_page_rw() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(2), PteFlags::DATA)
            .unwrap();
        let data: Vec<u8> = (0..100).collect();
        let start = VA + PAGE_SIZE as u64 - 50;
        space.write_bytes(&phys, start, &data).unwrap();
        let mut back = vec![0u8; 100];
        space.read_bytes(&phys, start, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn shootdown_generation() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let g0 = space.generation();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        assert_eq!(space.generation(), g0, "map does not shoot down");
        space.protect(VA, PteFlags::RO_DATA).unwrap();
        assert!(space.generation() > g0, "protect shoots down");
        let g1 = space.generation();
        space.unmap(VA).unwrap();
        assert!(space.generation() > g1, "unmap shoots down");
    }

    #[test]
    fn unmap_range_batches_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let leaves = space.unmap_range(VA, 8).unwrap();
        assert_eq!(leaves.len(), 8);
        assert_eq!(space.generation(), g0 + 1, "one shootdown for the range");
    }

    #[test]
    fn replace_swaps_frames_atomically() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let a = phys.alloc();
        let b = phys.alloc();
        phys.write_u64(a, 0, 1);
        phys.write_u64(b, 0, 2);
        space.map(VA, a, PteFlags::RO_DATA).unwrap();
        assert_eq!(space.read_u64(&phys, VA).unwrap(), 1);
        let g0 = space.generation();
        let old = space.replace(VA, b, PteFlags::RO_DATA).unwrap();
        assert_eq!(old.kind, PteKind::Frame(a));
        assert_eq!(space.read_u64(&phys, VA).unwrap(), 2);
        assert!(space.generation() > g0, "replace shoots down");
        assert_eq!(
            space.replace(VA + 0x1000, b, PteFlags::RO_DATA),
            Err(Fault::Unmapped { va: VA + 0x1000 })
        );
    }

    #[test]
    fn mmio_leaves() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map_mmio(VA, 3, 0, PteFlags::DATA).unwrap();
        let t = space.translate(VA, Access::Write).unwrap();
        assert_eq!(t.pte.kind, PteKind::Mmio { dev: 3, page: 0 });
        assert_eq!(space.read_u64(&phys, VA), Err(Fault::MmioData { va: VA }));
        assert_eq!(
            space.translate(VA, Access::Exec),
            Err(Fault::MmioExec { va: VA })
        );
    }

    #[test]
    fn non_canonical_rejected() {
        let space = AddressSpace::new();
        let phys = PhysMem::new();
        let bad = 1u64 << 60;
        assert_eq!(
            space.map(bad, phys.alloc(), PteFlags::DATA),
            Err(Fault::NonCanonical { va: bad })
        );
        assert_eq!(
            space.translate(bad, Access::Read),
            Err(Fault::NonCanonical { va: bad })
        );
    }

    #[test]
    fn leaves_of_range_gathers() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfns = phys.alloc_n(4);
        space.map_range(VA, &pfns, PteFlags::TEXT).unwrap();
        let leaves = space.leaves_of_range(VA, 4).unwrap();
        for (l, p) in leaves.iter().zip(&pfns) {
            assert_eq!(l.kind, PteKind::Frame(*p));
        }
    }

    #[test]
    fn fetch_short_read_at_edge() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::TEXT).unwrap();
        let mut buf = [0u8; 16];
        // Fetch 8 bytes before the end of the mapped page → short read.
        let n = space
            .fetch(&phys, VA + PAGE_SIZE as u64 - 8, &mut buf)
            .unwrap();
        assert_eq!(n, 8);
        // Fetch entirely outside → fault.
        assert!(space.fetch(&phys, VA + PAGE_SIZE as u64, &mut buf).is_err());
    }

    #[test]
    fn stats_track_activity() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(3), PteFlags::DATA)
            .unwrap();
        space.unmap(VA).unwrap();
        let s = space.stats();
        assert_eq!(s.pages_mapped, 3);
        assert_eq!(s.pages_unmapped, 1);
        assert!(s.walks > 0 || s.shootdowns > 0);
    }
}
