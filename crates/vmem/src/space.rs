//! The address space: a 5-level radix page table with permission bits,
//! aliased (zero-copy) mappings, MMIO leaves, batched mutation
//! ([`Batch`] / [`AddressSpace::apply`]), and a bounded *invalidation
//! log* that lets TLBs do range-based shootdown instead of whole-TLB
//! flushes (see [`crate::Tlb`]).
//!
//! # The RCU-style read path
//!
//! Translation is the hot path: every simulated instruction fetch and
//! memory access walks this table. Readers therefore never take a lock.
//! The table is published as an **immutable snapshot** — a radix tree
//! whose interior nodes are shared via [`Arc`] — reachable through a
//! single atomic pointer. Writers serialize on a mutex, build a new
//! root *copy-on-write* (path-copying only the nodes they touch; all
//! untouched subtrees are shared structurally with the previous
//! snapshot), and publish it with one atomic pointer store. Readers pin
//! a reclamation epoch ([`AddressSpace::pin`], backed by
//! `adelie-reclaim`'s EBR or Hyaline), load the pointer, and walk
//! without ever blocking on a re-randomization cycle; retired roots are
//! dropped only after every reader epoch that could observe them has
//! advanced.
//!
//! The invalidation log is likewise lock-free on the read side: a fixed
//! ring of atomically-published immutable slots
//! ([`AddressSpace::plan_sync`]), read under the same epoch pin.
//!
//! The pre-snapshot regime (readers on a reader/writer lock,
//! serializing against writers) is kept behind [`ReadPath::Locked`] as
//! a measurable ablation baseline — see the `translate_throughput`
//! bench.

use crate::arch::{ArchKind, Asid, HwPte};
use crate::batch::{Batch, BatchOp};
use crate::hash::BuildPageHasher;
use crate::{
    page_base, page_offset, Access, Fault, Pfn, PhysMem, LEVELS, PAGE_SHIFT, PAGE_SIZE, VA_MASK,
};
use adelie_reclaim::{Ebr, Reclaimer, SmrStats};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Bits below the flat-directory prefix: one prefix names one
/// leaf-level radix node (512 pages = 2 MiB of virtual space).
const FLAT_SHIFT: u32 = PAGE_SHIFT + 9;

/// Default capacity (in generations) of the invalidation log — how far
/// a TLB may lag behind the current generation and still resynchronize
/// with a partial (range-based) invalidation instead of a full flush.
pub const DEFAULT_INVAL_LOG: usize = 64;

/// Above this many spans in one resynchronization, evicting entry by
/// entry stops being cheaper than clearing the TLB outright — the
/// planner falls back to a full flush (mirrors the kernel's
/// `tlb_single_page_flush_ceiling` idea at span granularity).
const MAX_SYNC_SPANS: usize = 64;

/// Reader slots in the default snapshot-reclamation domain: the number
/// of *concurrent* readers (pinned epochs) an address space supports.
/// One slot is claimed per live [`SpaceReader`] / [`SpacePin`]; slots
/// are recycled, so this bounds concurrency, not total readers. Kept
/// modest because EBR's epoch-advance scan is O(slots).
pub const READER_SLOTS: usize = 64;

/// Page permission flags.
///
/// A mapped page is always "present"; the two bits model the x86-64
/// `W` and `NX` bits the paper's defences rely on (write-protected GOTs,
/// non-executable data).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Read-only, executable — the protection of text pages.
    pub const TEXT: PteFlags = PteFlags(0);
    /// Writable bit.
    pub const WRITABLE: PteFlags = PteFlags(1);
    /// No-execute bit.
    pub const NX: PteFlags = PteFlags(2);
    /// Writable and no-execute — the protection of data pages.
    pub const DATA: PteFlags = PteFlags(1 | 2);
    /// Read-only, no-execute — the protection of `.rodata` and sealed GOTs.
    pub const RO_DATA: PteFlags = PteFlags(2);

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Whether the page can be written.
    pub fn writable(self) -> bool {
        self.contains(PteFlags::WRITABLE)
    }

    /// Whether the page can be executed.
    pub fn executable(self) -> bool {
        !self.contains(PteFlags::NX)
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}{}",
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' }
        )
    }
}

/// What a leaf translation points at.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PteKind {
    /// Ordinary memory frame.
    Frame(Pfn),
    /// Device register page: `dev` is the device id in the kernel's MMIO
    /// registry, `page` the page index within the device's BAR.
    Mmio { dev: u32, page: u32 },
}

/// A page-table leaf entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Pte {
    /// Frame or MMIO target.
    pub kind: PteKind,
    /// Permissions.
    pub flags: PteFlags,
}

impl Pte {
    /// Check this entry against an access kind (used by TLBs re-checking
    /// cached entries — permissions live in the entry, not the cache).
    ///
    /// # Errors
    ///
    /// The same faults [`AddressSpace::translate`] would raise.
    pub fn check(&self, va: u64, access: Access) -> Result<(), Fault> {
        check_access(va, self, access)
    }
}

/// A successful translation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Translation {
    /// The leaf entry.
    pub pte: Pte,
    /// Base virtual address of the page containing the query.
    pub page_va: u64,
}

#[derive(Clone)]
enum Entry {
    Empty,
    Table(Arc<Node>),
    /// A leaf stored in the owning arch's *hardware* bit layout — what
    /// a real page-table walker would see. Mutation sites encode via
    /// [`ArchKind::encode`]; walks decode back to the abstract [`Pte`].
    Leaf(HwPte),
}

/// One radix node of an immutable snapshot. Interior children are
/// `Arc`-shared: a write transaction path-copies only the nodes it
/// touches and shares every untouched subtree with the previous
/// snapshot.
struct Node {
    slots: Box<[Entry; 512]>,
}

impl Node {
    fn new() -> Node {
        Node {
            slots: Box::new(std::array::from_fn(|_| Entry::Empty)),
        }
    }

    /// A new node sharing every child of `self` (the path-copy step).
    fn shallow_clone(&self) -> Node {
        Node {
            slots: self.slots.clone(),
        }
    }

    /// Whether every slot is empty (so the node can be pruned).
    fn is_empty(&self) -> bool {
        self.slots.iter().all(|e| matches!(e, Entry::Empty))
    }
}

/// What writers publish and readers load: the radix tree plus a
/// **flattened leaf directory** mapping `va >> FLAT_SHIFT` prefixes
/// straight to the `Arc` of the leaf-level node holding that 2 MiB
/// region's PTEs. A translation is then one hash probe plus one slot
/// read — ≤2 pointer chases — instead of a 5-level chase. The tree
/// stays the ground truth (writers path-copy it as before); the
/// directory is re-derived for exactly the prefixes a transaction
/// touched, at publish time, so the two views are equal by
/// construction in every published snapshot.
struct SnapshotRoot {
    /// The 5-level radix tree (ground truth; what the next write
    /// transaction shallow-clones).
    root: Node,
    /// `va >> FLAT_SHIFT` → leaf-level node. Shares the tree's nodes —
    /// an entry is exactly the `Arc` reachable by chasing the tree.
    flat: HashMap<u64, Arc<Node>, BuildPageHasher>,
    /// The backend whose bit layout every [`Entry::Leaf`] in this
    /// snapshot uses (walks need it to decode).
    arch: ArchKind,
}

/// Resolve the leaf-level node for `prefix` by chasing the tree — the
/// publish-time step that keeps the flat directory consistent. `None`
/// when the region is entirely unmapped (interior pruning removed it).
fn leaf_node_of(root: &Node, prefix: u64) -> Option<Arc<Node>> {
    let va = prefix << FLAT_SHIFT;
    let mut cur = root;
    for level in 0..LEVELS - 2 {
        cur = match &cur.slots[level_index(va, level)] {
            Entry::Table(t) => t,
            _ => return None,
        };
    }
    match &cur.slots[level_index(va, LEVELS - 2)] {
        Entry::Table(t) => Some(t.clone()),
        _ => None,
    }
}

/// Snapshot of address-space activity counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct SpaceStats {
    /// Pages mapped over the lifetime.
    pub pages_mapped: u64,
    /// Pages unmapped over the lifetime.
    pub pages_unmapped: u64,
    /// Permission changes.
    pub protects: u64,
    /// TLB shootdowns (generation bumps).
    pub shootdowns: u64,
    /// Page-table walks performed.
    pub walks: u64,
    /// Batches applied via [`AddressSpace::apply`].
    pub batches: u64,
    /// Shootdowns that were coalesced into an open epoch slot instead
    /// of occupying their own invalidation-log entry.
    pub coalesced_shootdowns: u64,
    /// Immutable page-table snapshots published (one per write
    /// transaction that changed the table).
    pub snapshot_publishes: u64,
    /// Retired snapshot roots actually reclaimed — freed only after
    /// every reader epoch that could observe them advanced.
    pub snapshots_reclaimed: u64,
}

#[derive(Default)]
struct AtomicStats {
    pages_mapped: AtomicU64,
    pages_unmapped: AtomicU64,
    protects: AtomicU64,
    shootdowns: AtomicU64,
    batches: AtomicU64,
    coalesced_shootdowns: AtomicU64,
    snapshot_publishes: AtomicU64,
}

/// A cache-line-padded counter: the walk counter is bumped on every
/// page-table walk by every reader, so it is striped per reader slot to
/// keep the lock-free read path free of cross-CPU cache-line traffic.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicU64);

/// One invalidation-log slot: the page spans retired by the
/// generations in `[gen_lo, gen_hi]` (a range wider than one generation
/// only when batches shared a shootdown epoch). Immutable once
/// published; replaced wholesale (and the old copy epoch-retired) when
/// an epoch merge widens it.
struct LogSlot {
    gen_lo: u64,
    gen_hi: u64,
    epoch: Option<u64>,
    /// `[start, end)` byte ranges, page-aligned.
    spans: Vec<(u64, u64)>,
}

/// The lock-free invalidation log: a fixed ring of atomically-published
/// immutable [`LogSlot`]s. Writers (already serialized by the writer
/// mutex) install slots with pointer swaps and retire replaced copies
/// through the snapshot reclamation domain; readers traverse the ring
/// under an epoch pin with plain atomic loads.
struct InvalRing {
    slots: Box<[AtomicPtr<LogSlot>]>,
    /// Total slots ever published (monotonic; slot `k` lives at
    /// `k % capacity` until overwritten by slot `k + capacity`).
    head: AtomicU64,
}

impl InvalRing {
    fn new(capacity: usize) -> InvalRing {
        InvalRing {
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            head: AtomicU64::new(0),
        }
    }
}

impl Drop for InvalRing {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: installed pointers are owned by the ring; the
                // exclusive borrow proves no reader is pinned.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
    }
}

/// What a lagging TLB must do to catch up — computed by
/// [`AddressSpace::plan_sync`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TlbSync {
    /// The snapshot is current; nothing to do.
    Current,
    /// Evict only entries covered by these `[start, end)` spans.
    Ranges(Vec<(u64, u64)>),
    /// The log no longer covers the gap (or covering it would cost more
    /// than starting over) — flush everything.
    Full,
}

/// Which regime the translate path runs under.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ReadPath {
    /// Lock-free RCU snapshots: readers pin an epoch and walk an
    /// immutable root; they never block on writers. The default.
    #[default]
    Snapshot,
    /// The pre-snapshot ablation baseline: every reader additionally
    /// acquires a reader/writer lock that writers hold exclusively for
    /// each transaction, reproducing the old reader-vs-rerandomizer
    /// serialization so the `translate_throughput` bench can measure
    /// what the snapshot path buys.
    Locked,
}

/// Construction knobs for [`AddressSpace::with_space_config`].
/// `Default` equals [`SpaceConfig::new`].
pub struct SpaceConfig {
    /// Invalidation-log capacity in generations; `0` disables
    /// range-based shootdown (the legacy whole-TLB ablation regime).
    /// Defaults to [`DEFAULT_INVAL_LOG`].
    pub inval_log: usize,
    /// Read-path regime (snapshot vs the locked ablation baseline).
    pub read_path: ReadPath,
    /// Reclamation domain guarding snapshot and log-slot lifetime.
    /// `None` creates a dedicated EBR domain with [`READER_SLOTS`]
    /// slots. This domain is distinct from the kernel's `mr_*` domain:
    /// reader pins last one walk, not one pending driver call.
    pub smr: Option<Arc<dyn Reclaimer>>,
    /// ISA backend owning PTE encodings and the ASID value space.
    /// Defaults to [`ArchKind::from_env`] (`ADELIE_ARCH`).
    pub arch: ArchKind,
    /// Explicit address-space identifier. `None` (the default)
    /// allocates from the arch's process-wide rollover allocator;
    /// `Some` overrides it — tests use this to force tag-value
    /// collisions between spaces.
    pub asid: Option<Asid>,
}

impl SpaceConfig {
    /// The default configuration: [`DEFAULT_INVAL_LOG`], snapshot read
    /// path, dedicated EBR domain, environment-selected arch, freshly
    /// allocated ASID.
    pub fn new() -> SpaceConfig {
        SpaceConfig {
            inval_log: DEFAULT_INVAL_LOG,
            read_path: ReadPath::Snapshot,
            smr: None,
            arch: ArchKind::from_env(),
            asid: None,
        }
    }
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig::new()
    }
}

impl fmt::Debug for SpaceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpaceConfig")
            .field("inval_log", &self.inval_log)
            .field("read_path", &self.read_path)
            .field("arch", &self.arch)
            .field("asid", &self.asid)
            .finish()
    }
}

/// Writer-side state, serialized by the writer mutex. Holds the [`Arc`]
/// that owns the currently-published snapshot root.
struct WriterState {
    current: Arc<SnapshotRoot>,
}

/// A single (kernel) address space.
///
/// All methods take `&self`. Translation (the hot path, used by every
/// simulated instruction) is **lock-free**: readers pin a reclamation
/// epoch and walk the currently-published immutable snapshot. Mapping
/// changes serialize on a writer mutex, build the next snapshot
/// copy-on-write, and publish it with one atomic pointer store — so
/// traffic never blocks on a re-randomization cycle.
pub struct AddressSpace {
    /// Process-unique identity of this space (never 0). Generation
    /// counters are meaningful only *within* one space; the id lets a
    /// [`crate::Tlb`] detect that it has been pointed at a different
    /// space — fleet-style many-space churn — and drop everything it
    /// cached instead of trusting a numerically-equal generation from
    /// an unrelated timeline.
    id: u64,
    /// The currently-published snapshot (radix tree + flattened leaf
    /// directory). Readers load this while epoch-pinned; the pointee is
    /// owned by `writer.current` (or by a pending reclamation closure
    /// once superseded).
    snapshot: AtomicPtr<SnapshotRoot>,
    /// Serializes writers. Readers never touch it.
    writer: Mutex<WriterState>,
    generation: AtomicU64,
    stats: AtomicStats,
    /// Per-reader-slot walk counters (see [`PaddedCounter`]).
    walk_stripes: Box<[PaddedCounter]>,
    /// Bumped by deferred reclamation closures when a retired snapshot
    /// root is actually dropped.
    reclaimed_snapshots: Arc<AtomicU64>,
    /// Recent invalidation sets. `None` models the legacy whole-TLB
    /// regime: nothing is logged, every lagging TLB full-flushes, and
    /// [`AddressSpace::apply`] publishes one generation bump per
    /// invalidating op instead of one per batch.
    inval: Option<InvalRing>,
    inval_capacity: usize,
    /// Epoch-based reclamation guarding snapshots and log slots.
    smr: Arc<dyn Reclaimer>,
    /// Reader-slot claim flags (one per `smr` slot); a claimed slot is
    /// exclusively owned by one [`SpaceReader`] / [`SpacePin`], which
    /// keeps EBR's one-operation-per-slot contract.
    slot_claims: Box<[AtomicBool]>,
    /// `Some` in [`ReadPath::Locked`] mode: the ablation lock readers
    /// and writers contend on.
    ablation: Option<RwLock<()>>,
    /// ISA backend owning the leaf encodings of every snapshot this
    /// space publishes and the meaning of its ASID.
    arch: ArchKind,
    /// Hardware address-space identifier ([`crate::Tlb`]s tag cached
    /// entries with `asid.value`; `asid.rollover` disambiguates reuse
    /// of the same value across allocator wrap-arounds).
    asid: Asid,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

fn level_index(va: u64, level: u32) -> usize {
    // level 0 = top. Each level resolves 9 bits.
    let shift = PAGE_SHIFT + 9 * (LEVELS - 1 - level);
    ((va >> shift) & 0x1FF) as usize
}

/// Start-slot hint for reader-slot claims: sticky per thread so
/// distinct threads begin their claim scan at distinct indices.
fn claim_hint() -> usize {
    use std::cell::Cell;
    thread_local! {
        static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    HINT.with(|h| {
        if h.get() == usize::MAX {
            h.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        h.get()
    })
}

impl AddressSpace {
    /// Create an empty address space with the default invalidation-log
    /// capacity ([`DEFAULT_INVAL_LOG`]).
    pub fn new() -> AddressSpace {
        AddressSpace::with_inval_log(DEFAULT_INVAL_LOG)
    }

    /// Create an empty address space whose invalidation log holds
    /// `capacity` generations. `0` disables range-based shootdown
    /// entirely — the legacy whole-TLB regime, kept as the measurable
    /// ablation baseline.
    pub fn with_inval_log(capacity: usize) -> AddressSpace {
        AddressSpace::with_space_config(SpaceConfig {
            inval_log: capacity,
            ..SpaceConfig::new()
        })
    }

    /// Create an empty address space from explicit [`SpaceConfig`]
    /// knobs (read-path regime, reclamation domain, log capacity).
    pub fn with_space_config(config: SpaceConfig) -> AddressSpace {
        let smr = config
            .smr
            .unwrap_or_else(|| Arc::new(Ebr::new(READER_SLOTS)));
        let nslots = smr.slots();
        let arch = config.arch;
        let asid = config.asid.unwrap_or_else(|| arch.allocate_asid());
        let root = Arc::new(SnapshotRoot {
            root: Node::new(),
            flat: HashMap::default(),
            arch,
        });
        let snapshot = AtomicPtr::new(Arc::as_ptr(&root) as *mut SnapshotRoot);
        // Ids start at 1 so a fresh TLB's 0 never matches any space.
        static NEXT_SPACE_ID: AtomicU64 = AtomicU64::new(1);
        AddressSpace {
            id: NEXT_SPACE_ID.fetch_add(1, Ordering::Relaxed),
            snapshot,
            writer: Mutex::new(WriterState { current: root }),
            generation: AtomicU64::new(0),
            stats: AtomicStats::default(),
            walk_stripes: (0..nslots).map(|_| PaddedCounter::default()).collect(),
            reclaimed_snapshots: Arc::new(AtomicU64::new(0)),
            inval: (config.inval_log > 0).then(|| InvalRing::new(config.inval_log)),
            inval_capacity: config.inval_log,
            smr,
            slot_claims: (0..nslots).map(|_| AtomicBool::new(false)).collect(),
            ablation: (config.read_path == ReadPath::Locked).then(|| RwLock::new(())),
            arch,
            asid,
        }
    }

    /// The ISA backend this space encodes its leaves for.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// This space's hardware address-space identifier. TLBs tag cached
    /// entries with `asid().value`; a larger `rollover` than the TLB
    /// last adopted means tag values may have been reused by unrelated
    /// spaces since, so the TLB must full-flush before trusting tags
    /// again (the Linux-style ASID-generation protocol).
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The current TLB generation. Cached translations from earlier
    /// generations must be discarded (see [`crate::Tlb`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Process-unique identity of this space (never 0). A [`crate::Tlb`]
    /// records the id it last synchronized with and treats a different
    /// id as a context switch: generations from distinct spaces share no
    /// timeline, so nothing cached may survive the move.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Capacity of the invalidation log in generations (0 = disabled).
    pub fn inval_log_capacity(&self) -> usize {
        self.inval_capacity
    }

    /// Which read-path regime this space runs (snapshot vs the locked
    /// ablation baseline).
    pub fn read_path(&self) -> ReadPath {
        if self.ablation.is_some() {
            ReadPath::Locked
        } else {
            ReadPath::Snapshot
        }
    }

    /// Counters of the snapshot reclamation domain (retired vs freed
    /// roots and log slots) — what the testkit oracle asserts converges
    /// at quiescence.
    pub fn snapshot_smr(&self) -> SmrStats {
        self.smr.stats()
    }

    /// Best-effort drain of ripe snapshot/log-slot reclamations
    /// (quiescence aid for tests and the oracle).
    pub fn flush_snapshots(&self) {
        self.smr.flush();
    }

    // ------------------------------------------------------------------
    // Reader side: slot claims, epoch pins, lock-free walks.
    // ------------------------------------------------------------------

    /// Claim a free reader slot, spinning (with yields) while all
    /// slots are momentarily taken. Claims are exclusive, so each slot
    /// hosts at most one concurrent operation — the contract EBR
    /// requires.
    ///
    /// # Panics
    ///
    /// Panics (rather than hanging silently) if no slot frees up after
    /// a generous spin: sustained exhaustion means more *long-lived*
    /// concurrent readers than the domain has slots — a leaked
    /// [`SpaceReader`], or a domain sized below the caller's real
    /// concurrency (see [`SpaceConfig::smr`]).
    fn claim_slot(&self) -> usize {
        // One-shot pins last nanoseconds; ~100k yields is seconds of
        // sustained full occupancy — a leak, not contention.
        const CLAIM_SPIN_ROUNDS: usize = 100_000;
        let n = self.slot_claims.len();
        let start = claim_hint() % n;
        for _ in 0..CLAIM_SPIN_ROUNDS {
            for i in 0..n {
                let idx = (start + i) % n;
                if self.slot_claims[idx]
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return idx;
                }
            }
            std::thread::yield_now();
        }
        panic!(
            "all {n} snapshot reader slots stayed claimed: long-lived readers exceed the \
             reclamation domain (leaked SpaceReader, or size the domain to the reader count)"
        );
    }

    fn release_slot(&self, slot: usize) {
        self.slot_claims[slot].store(false, Ordering::Release);
    }

    /// Claim a long-lived read handle (e.g. one per simulated CPU).
    /// The handle owns a reader slot for its lifetime; each
    /// [`SpaceReader::pin`] then only pays the epoch enter/leave, not a
    /// slot claim.
    pub fn reader(&self) -> SpaceReader<'_> {
        SpaceReader {
            space: self,
            slot: self.claim_slot(),
        }
    }

    /// Pin a reclamation epoch for one read operation: claims a slot,
    /// enters the epoch, and (in [`ReadPath::Locked`] ablation mode
    /// only) takes the read side of the ablation lock. Everything is
    /// released on drop. On the default snapshot path this takes **no
    /// lock**.
    pub fn pin(&self) -> SpacePin<'_> {
        let slot = self.claim_slot();
        self.enter_pin(slot, true)
    }

    fn enter_pin(&self, slot: usize, release_slot: bool) -> SpacePin<'_> {
        self.smr.enter(slot);
        SpacePin {
            space: self,
            slot,
            release_slot,
            _ablate: self.ablation.as_ref().map(|l| l.read()),
        }
    }

    /// Translate `va` for the given access kind — lock-free: pins an
    /// epoch and walks the current snapshot.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`], [`Fault::NotWritable`], [`Fault::NotExecutable`],
    /// [`Fault::MmioExec`], or [`Fault::NonCanonical`].
    pub fn translate(&self, va: u64, access: Access) -> Result<Translation, Fault> {
        self.pin().translate(va, access)
    }

    /// Translate a batch of addresses under **one** epoch pin and one
    /// snapshot-root load. Results are positional. Because every walk
    /// uses the same root, a batch can never observe two different
    /// published generations — see [`SpacePin::translate_batch`].
    pub fn translate_batch(&self, vas: &[u64], access: Access) -> Vec<Result<Translation, Fault>> {
        self.pin().translate_batch(vas, access)
    }

    /// Plan how a TLB whose snapshot is `seen_gen` catches up to the
    /// current generation: returns the generation to adopt plus the
    /// cheapest safe action. [`TlbSync::Ranges`] is only returned when
    /// the log still covers *every* generation in the gap; otherwise
    /// the plan degrades to [`TlbSync::Full`]. Lock-free (pins an
    /// epoch to read the log ring).
    pub fn plan_sync(&self, seen_gen: u64) -> (u64, TlbSync) {
        self.pin().plan_sync(seen_gen)
    }

    fn plan_sync_pinned(&self, seen_gen: u64) -> (u64, TlbSync) {
        let current = self.generation();
        if current == seen_gen {
            return (current, TlbSync::Current);
        }
        let Some(ring) = &self.inval else {
            return (current, TlbSync::Full);
        };
        if current < seen_gen {
            return (current, TlbSync::Full);
        }
        let mut covered: Vec<(u64, u64)> = Vec::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let cap = ring.slots.len() as u64;
        let head = ring.head.load(Ordering::SeqCst);
        for k in head.saturating_sub(cap)..head {
            let p = ring.slots[(k % cap) as usize].load(Ordering::SeqCst);
            if p.is_null() {
                continue;
            }
            // SAFETY: slots are immutable once published and their
            // allocations are retired through `smr`; the caller holds
            // an epoch pin, so a slot read here cannot be freed yet.
            let slot = unsafe { &*p };
            if slot.gen_hi <= seen_gen || slot.gen_lo > current {
                // Already seen, or published after our generation
                // read (the next sync picks it up).
                continue;
            }
            covered.push((slot.gen_lo.max(seen_gen + 1), slot.gen_hi.min(current)));
            spans.extend_from_slice(&slot.spans);
        }
        // Every generation in (seen_gen, current] must be accounted
        // for; slots may be out of order or replaced mid-read under a
        // concurrent epoch merge — any gap degrades to a full flush.
        covered.sort_unstable();
        let mut need = seen_gen + 1;
        for (lo, hi) in covered {
            if lo > need {
                return (current, TlbSync::Full);
            }
            need = need.max(hi + 1);
        }
        if need <= current || spans.len() > MAX_SYNC_SPANS {
            return (current, TlbSync::Full);
        }
        (current, TlbSync::Ranges(spans))
    }

    fn check(&self, va: u64) -> Result<(), Fault> {
        check_va(va)
    }

    // ------------------------------------------------------------------
    // Writer side: COW transactions, snapshot publication, shootdowns.
    // ------------------------------------------------------------------

    fn ablation_write(&self) -> Option<RwLockWriteGuard<'_, ()>> {
        self.ablation.as_ref().map(|l| l.write())
    }

    /// Begin a write transaction: take the writer mutex (and, in
    /// ablation mode, the write side of the ablation lock) and build a
    /// scratch root sharing every subtree of the current snapshot.
    fn begin(
        &self,
    ) -> (
        MutexGuard<'_, WriterState>,
        Option<RwLockWriteGuard<'_, ()>>,
        Node,
    ) {
        let st = self.writer.lock();
        let ablate = self.ablation_write();
        let scratch = st.current.root.shallow_clone();
        (st, ablate, scratch)
    }

    /// Publish `scratch` as the new snapshot and retire the old root
    /// through the reclamation domain. Caller holds the writer mutex.
    ///
    /// `touched` lists the `va >> FLAT_SHIFT` prefixes this transaction
    /// may have changed (one entry per page *attempted*, duplicates
    /// fine): the flat leaf directory is re-derived from the scratch
    /// tree for exactly those prefixes, so directory and tree stay
    /// equal by construction. A prefix mutated but not listed would
    /// desync the directory — every mutation site below pushes as it
    /// goes.
    fn publish(&self, st: &mut WriterState, scratch: Node, touched: &mut Vec<u64>) {
        touched.sort_unstable();
        touched.dedup();
        let mut flat = st.current.flat.clone();
        for &prefix in touched.iter() {
            match leaf_node_of(&scratch, prefix) {
                Some(node) => flat.insert(prefix, node),
                None => flat.remove(&prefix),
            };
        }
        let new = Arc::new(SnapshotRoot {
            root: scratch,
            flat,
            arch: self.arch,
        });
        self.snapshot
            .store(Arc::as_ptr(&new) as *mut SnapshotRoot, Ordering::SeqCst);
        let old = std::mem::replace(&mut st.current, new);
        self.stats
            .snapshot_publishes
            .fetch_add(1, Ordering::Relaxed);
        let reclaimed = self.reclaimed_snapshots.clone();
        self.smr.retire(Box::new(move || {
            drop(old);
            reclaimed.fetch_add(1, Ordering::Relaxed);
        }));
    }

    /// Bump the generation once and publish `spans` as its invalidation
    /// set. Caller holds the writer mutex (ring installs assume
    /// serialized writers). Consecutive shootdowns carrying the same
    /// `epoch` tag merge into one log slot (the scheduler's shared
    /// shootdown epoch), so a TLB lagging across the whole epoch pays
    /// one partial pass.
    fn shootdown_epoch(&self, mut spans: Vec<(u64, u64)>, epoch: Option<u64>) {
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.stats.shootdowns.fetch_add(1, Ordering::Relaxed);
        let Some(ring) = &self.inval else {
            return;
        };
        coalesce_spans(&mut spans);
        let cap = ring.slots.len() as u64;
        let head = ring.head.load(Ordering::SeqCst);
        if let Some(e) = epoch {
            if head > 0 {
                let idx = ((head - 1) % cap) as usize;
                let last_ptr = ring.slots[idx].load(Ordering::SeqCst);
                // The newest slot is never evicted before `head`
                // advances, so `last_ptr` is always valid here.
                // SAFETY: published slots are immutable; we hold the
                // writer mutex, so no other writer can retire it.
                let last = unsafe { &*last_ptr };
                if last.epoch == Some(e) && last.gen_hi + 1 == gen {
                    // Widen by replacement: build a merged immutable
                    // copy, install it, and epoch-retire the old slot
                    // (a racing reader may still be traversing it).
                    let mut merged_spans = last.spans.clone();
                    merged_spans.extend(spans);
                    // Re-coalesce the merged slot: epoch waves
                    // routinely retire adjacent ranges, and a compact
                    // span list keeps the partial-flush path under
                    // MAX_SYNC_SPANS.
                    coalesce_spans(&mut merged_spans);
                    let merged = Box::into_raw(Box::new(LogSlot {
                        gen_lo: last.gen_lo,
                        gen_hi: gen,
                        epoch,
                        spans: merged_spans,
                    }));
                    // Carried as `usize` so the closure is `Send`; the
                    // closure is the allocation's sole owner.
                    let old = ring.slots[idx].swap(merged, Ordering::SeqCst) as usize;
                    self.smr.retire(Box::new(move || {
                        // SAFETY: sole owner of the replaced slot.
                        unsafe { drop(Box::from_raw(old as *mut LogSlot)) };
                    }));
                    self.stats
                        .coalesced_shootdowns
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let fresh = Box::into_raw(Box::new(LogSlot {
            gen_lo: gen,
            gen_hi: gen,
            epoch,
            spans,
        }));
        let old = ring.slots[(head % cap) as usize].swap(fresh, Ordering::SeqCst);
        ring.head.store(head + 1, Ordering::SeqCst);
        if !old.is_null() {
            let old = old as usize;
            self.smr.retire(Box::new(move || {
                // SAFETY: sole owner of the evicted slot.
                unsafe { drop(Box::from_raw(old as *mut LogSlot)) };
            }));
        }
    }

    fn shootdown(&self, spans: Vec<(u64, u64)>) {
        self.shootdown_epoch(spans, None);
    }

    /// Map one page at `va` (page-aligned) to `pfn`.
    ///
    /// Mapping the same frame at several addresses is allowed — that *is*
    /// the paper's zero-copy mechanism.
    ///
    /// # Errors
    ///
    /// [`Fault::AlreadyMapped`] if `va` already has a mapping,
    /// [`Fault::NonCanonical`] for out-of-range addresses.
    pub fn map(&self, va: u64, pfn: Pfn, flags: PteFlags) -> Result<(), Fault> {
        self.map_pte(
            va,
            Pte {
                kind: PteKind::Frame(pfn),
                flags,
            },
        )
    }

    /// Map a device register page.
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::map`].
    pub fn map_mmio(&self, va: u64, dev: u32, page: u32, flags: PteFlags) -> Result<(), Fault> {
        self.map_pte(
            va,
            Pte {
                kind: PteKind::Mmio { dev, page },
                flags,
            },
        )
    }

    fn map_pte(&self, va: u64, pte: Pte) -> Result<(), Fault> {
        self.check(va)?;
        let (mut st, _w, mut scratch) = self.begin();
        map_in(&mut scratch, va, self.arch.encode(pte))?;
        self.publish(&mut st, scratch, &mut vec![va >> FLAT_SHIFT]);
        self.stats.pages_mapped.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Map a run of frames contiguously starting at `va` — one snapshot
    /// publication for the whole run.
    ///
    /// # Errors
    ///
    /// Fails on the first conflicting page (earlier pages stay mapped).
    pub fn map_range(&self, va: u64, pfns: &[Pfn], flags: PteFlags) -> Result<(), Fault> {
        let (mut st, _w, mut scratch) = self.begin();
        let mut outcome = Ok(());
        let mut mapped = 0u64;
        let mut touched = Vec::new();
        for (i, &pfn) in pfns.iter().enumerate() {
            let page_va = va + (i * PAGE_SIZE) as u64;
            let hw = self.arch.encode(Pte {
                kind: PteKind::Frame(pfn),
                flags,
            });
            touched.push(page_va >> FLAT_SHIFT);
            if let Err(fault) = check_va(page_va).and_then(|()| map_in(&mut scratch, page_va, hw)) {
                outcome = Err(fault);
                break;
            }
            mapped += 1;
        }
        if mapped > 0 {
            self.publish(&mut st, scratch, &mut touched);
            self.stats.pages_mapped.fetch_add(mapped, Ordering::Relaxed);
        }
        outcome
    }

    /// Remove the mapping at `va`, returning the old leaf.
    ///
    /// Bumps the TLB generation (shootdown).
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if nothing is mapped there.
    pub fn unmap(&self, va: u64) -> Result<Pte, Fault> {
        self.check(va)?;
        let (mut st, _w, mut scratch) = self.begin();
        let pte = self.arch.decode_owned(unmap_in(&mut scratch, va)?);
        self.publish(&mut st, scratch, &mut vec![va >> FLAT_SHIFT]);
        self.stats.pages_unmapped.fetch_add(1, Ordering::Relaxed);
        self.shootdown(vec![(va, va + PAGE_SIZE as u64)]);
        Ok(pte)
    }

    /// Unmap `n` consecutive pages, returning their leaves. One shootdown
    /// covers the whole range (batched invalidation, like `flush_tlb_range`).
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped page. Earlier pages stay unmapped,
    /// and the shootdown still covers them — under range-based
    /// invalidation an unpublished removal would let TLBs serve the
    /// retired translations forever.
    pub fn unmap_range(&self, va: u64, n: usize) -> Result<Vec<Pte>, Fault> {
        let (mut st, _w, mut scratch) = self.begin();
        let mut out = Vec::with_capacity(n);
        let mut outcome = Ok(());
        let mut touched = Vec::new();
        for i in 0..n {
            let page_va = va + (i * PAGE_SIZE) as u64;
            touched.push(page_va >> FLAT_SHIFT);
            match check_va(page_va).and_then(|()| unmap_in(&mut scratch, page_va)) {
                Ok(hw) => out.push(self.arch.decode_owned(hw)),
                Err(fault) => {
                    outcome = Err(fault);
                    break;
                }
            }
        }
        if !out.is_empty() {
            self.publish(&mut st, scratch, &mut touched);
            self.stats
                .pages_unmapped
                .fetch_add(out.len() as u64, Ordering::Relaxed);
            self.shootdown(vec![(va, va + (out.len() * PAGE_SIZE) as u64)]);
        }
        outcome.map(|()| out)
    }

    /// Unmap every mapped page in `[va, va + n pages)`, skipping holes;
    /// returns the removed leaves. One shootdown for the whole range —
    /// what the re-randomizer's retire step uses, since alignment-tail
    /// pages were never mapped.
    pub fn unmap_sparse(&self, va: u64, n: usize) -> Vec<Pte> {
        let (mut st, _w, mut scratch) = self.begin();
        let mut out = Vec::new();
        let mut touched = Vec::new();
        for i in 0..n {
            let page_va = va + (i * PAGE_SIZE) as u64;
            if check_va(page_va).is_err() {
                continue;
            }
            if let Ok(hw) = unmap_in(&mut scratch, page_va) {
                out.push(self.arch.decode_owned(hw));
                touched.push(page_va >> FLAT_SHIFT);
            }
        }
        if !out.is_empty() {
            self.publish(&mut st, scratch, &mut touched);
            self.stats
                .pages_unmapped
                .fetch_add(out.len() as u64, Ordering::Relaxed);
        }
        self.shootdown(vec![(va, va + (n * PAGE_SIZE) as u64)]);
        out
    }

    /// Atomically swap the frame behind a mapped page, returning the old
    /// leaf. This is how the re-randomizer swings a GOT page onto a
    /// freshly built table (paper §4.2: "GOT pages … are remapped to
    /// point to the new GOTs") without a window where the page is
    /// unmapped. Bumps the TLB generation.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if the page is not mapped.
    pub fn replace(&self, va: u64, pfn: Pfn, flags: PteFlags) -> Result<Pte, Fault> {
        self.check(va)?;
        let (mut st, _w, mut scratch) = self.begin();
        let old = replace_in(
            &mut scratch,
            va,
            self.arch.encode(Pte {
                kind: PteKind::Frame(pfn),
                flags,
            }),
        )?;
        let old = self.arch.decode_owned(old);
        self.publish(&mut st, scratch, &mut vec![va >> FLAT_SHIFT]);
        self.shootdown(vec![(va, va + PAGE_SIZE as u64)]);
        Ok(old)
    }

    /// Change the permissions of a mapped page (e.g. write-protecting a
    /// GOT after initialization, §4.1). Bumps the TLB generation.
    ///
    /// # Errors
    ///
    /// [`Fault::Unmapped`] if the page is not mapped.
    pub fn protect(&self, va: u64, flags: PteFlags) -> Result<(), Fault> {
        self.check(va)?;
        let (mut st, _w, mut scratch) = self.begin();
        protect_in(&mut scratch, va, flags, self.arch)?;
        self.publish(&mut st, scratch, &mut vec![va >> FLAT_SHIFT]);
        self.stats.protects.fetch_add(1, Ordering::Relaxed);
        self.shootdown(vec![(va, va + PAGE_SIZE as u64)]);
        Ok(())
    }

    /// [`AddressSpace::protect`] over `n` consecutive pages. One
    /// shootdown covers the whole range (batched invalidation — the
    /// pre-batching code paid one per page).
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped page (earlier pages keep the new
    /// permissions, and the shootdown still covers them).
    pub fn protect_range(&self, va: u64, n: usize, flags: PteFlags) -> Result<(), Fault> {
        let (mut st, _w, mut scratch) = self.begin();
        let mut outcome = Ok(());
        let mut changed = 0usize;
        let mut touched = Vec::new();
        for i in 0..n {
            let page_va = va + (i * PAGE_SIZE) as u64;
            touched.push(page_va >> FLAT_SHIFT);
            if let Err(fault) = check_va(page_va)
                .and_then(|()| protect_in(&mut scratch, page_va, flags, self.arch).map(|_| ()))
            {
                outcome = Err(fault);
                break;
            }
            changed += 1;
        }
        if changed > 0 {
            self.publish(&mut st, scratch, &mut touched);
            self.stats
                .protects
                .fetch_add(changed as u64, Ordering::Relaxed);
            self.shootdown(vec![(va, va + (changed * PAGE_SIZE) as u64)]);
        }
        outcome
    }

    /// Collect the leaves backing `n` consecutive pages — the gather step
    /// of the zero-copy remap.
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn leaves_of_range(&self, va: u64, n: usize) -> Result<Vec<Pte>, Fault> {
        let vas: Vec<u64> = (0..n).map(|i| va + (i * PAGE_SIZE) as u64).collect();
        self.pin()
            .translate_batch(&vas, Access::Read)
            .into_iter()
            .map(|r| r.map(|t| t.pte))
            .collect()
    }

    /// Read `buf.len()` bytes starting at `va` (may cross pages).
    ///
    /// # Errors
    ///
    /// Translation faults, or [`Fault::MmioData`] if the range covers an
    /// MMIO page (device access must go through the interpreter).
    pub fn read_bytes(&self, phys: &PhysMem, va: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.access_bytes(phys, va, Access::Read, buf.len(), |pfn, off, i, n, phys| {
            phys.read(pfn, off, &mut buf[i..i + n]);
        })
    }

    /// Write bytes starting at `va` (may cross pages).
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::read_bytes`], plus [`Fault::NotWritable`].
    pub fn write_bytes(&self, phys: &PhysMem, va: u64, bytes: &[u8]) -> Result<(), Fault> {
        self.access_bytes(
            phys,
            va,
            Access::Write,
            bytes.len(),
            |pfn, off, i, n, phys| {
                phys.write(pfn, off, &bytes[i..i + n]);
            },
        )
    }

    fn access_bytes(
        &self,
        phys: &PhysMem,
        va: u64,
        access: Access,
        len: usize,
        mut f: impl FnMut(Pfn, usize, usize, usize, &PhysMem),
    ) -> Result<(), Fault> {
        let pin = self.pin();
        let mut done = 0usize;
        while done < len {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(len - done);
            let t = pin.translate(cur, access)?;
            match t.pte.kind {
                PteKind::Frame(pfn) => f(pfn, off, done, n, phys),
                PteKind::Mmio { .. } => return Err(Fault::MmioData { va: cur }),
            }
            done += n;
        }
        Ok(())
    }

    /// Read a little-endian u64 at `va`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::read_bytes`].
    pub fn read_u64(&self, phys: &PhysMem, va: u64) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read_bytes(phys, va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64 at `va`.
    ///
    /// # Errors
    ///
    /// See [`AddressSpace::write_bytes`].
    pub fn write_u64(&self, phys: &PhysMem, va: u64, v: u64) -> Result<(), Fault> {
        self.write_bytes(phys, va, &v.to_le_bytes())
    }

    /// Fetch up to 16 instruction bytes at `va` with execute permission
    /// checks. Returns how many bytes were fetched (short reads happen at
    /// mapping boundaries, which the decoder reports as `Truncated`).
    ///
    /// # Errors
    ///
    /// [`Fault::NotExecutable`] for NX pages, [`Fault::MmioExec`] for
    /// device pages, [`Fault::Unmapped`] if the *first* page is missing.
    pub fn fetch(&self, phys: &PhysMem, va: u64, buf: &mut [u8; 16]) -> Result<usize, Fault> {
        let pin = self.pin();
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let t = match pin.translate(cur, Access::Exec) {
                Ok(t) => t,
                Err(Fault::MmioExec { va }) | Err(Fault::MmioData { va }) => {
                    return Err(Fault::MmioExec { va })
                }
                Err(e) if done > 0 => {
                    // Short fetch at a mapping edge: let the decoder decide.
                    let _ = e;
                    return Ok(done);
                }
                Err(e) => return Err(e),
            };
            match t.pte.kind {
                PteKind::Frame(pfn) => phys.read(pfn, off, &mut buf[done..done + n]),
                PteKind::Mmio { .. } => return Err(Fault::MmioExec { va: cur }),
            }
            done += n;
        }
        Ok(done)
    }

    /// Apply a [`Batch`] of page-table mutations as **one** copy-on-write
    /// transaction: a single new snapshot is built and published with
    /// one atomic pointer store, carrying a single invalidation set with
    /// one generation bump (the batched-shootdown fast path; see
    /// [`Batch`]'s docs).
    ///
    /// Application is atomic by construction: a fault discards the
    /// scratch snapshot, so nothing is published, no generation bump
    /// occurs, and the space is exactly as it was before the call —
    /// concurrent readers only ever observe the pre- or post-batch
    /// snapshot, never an intermediate state.
    ///
    /// When the invalidation log is disabled (`with_inval_log(0)` — the
    /// ablation baseline), mutations stay atomic but the publication
    /// cost reverts to the legacy regime: one generation bump per
    /// invalidating operation (and per *page* for `protect_range`, which
    /// is what the pre-batching code paid).
    ///
    /// # Errors
    ///
    /// The first fault any queued operation raises; the batch is
    /// discarded.
    pub fn apply(&self, batch: Batch) -> Result<BatchOutcome, Fault> {
        for op in &batch.ops {
            let (va, pages) = match op {
                BatchOp::Map { va, .. } | BatchOp::SwapFrame { va, .. } => (*va, 1),
                BatchOp::UnmapRange { va, pages }
                | BatchOp::UnmapSparse { va, pages }
                | BatchOp::ProtectRange { va, pages, .. } => (*va, (*pages).max(1)),
            };
            check_va(va)?;
            // Every page of a range op must be canonical, not just its
            // base: the radix walk masks high bits, so a range running
            // past the boundary would silently alias — and mutate —
            // low canonical addresses outside the published
            // invalidation span. Canonical space is contiguous, so
            // checking the last page covers the whole run.
            let last = (pages as u64 - 1)
                .checked_mul(PAGE_SIZE as u64)
                .and_then(|off| va.checked_add(off))
                .ok_or(Fault::NonCanonical { va })?;
            check_va(last)?;
        }
        let mut removed = Vec::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        // Gen bumps the legacy (log-disabled) regime would have paid.
        let mut legacy_shootdowns = 0u64;
        let mut mapped = 0u64;
        let mut unmapped = 0u64;
        let mut protects = 0u64;
        let mut touched = Vec::new();
        let (mut st, _w, mut scratch) = self.begin();
        for op in &batch.ops {
            match *op {
                BatchOp::Map { va, pfn, flags } => {
                    let hw = self.arch.encode(Pte {
                        kind: PteKind::Frame(pfn),
                        flags,
                    });
                    touched.push(va >> FLAT_SHIFT);
                    map_in(&mut scratch, va, hw)?;
                    mapped += 1;
                }
                BatchOp::UnmapRange { va, pages } => {
                    for i in 0..pages {
                        let page_va = va + (i * PAGE_SIZE) as u64;
                        touched.push(page_va >> FLAT_SHIFT);
                        removed.push(self.arch.decode_owned(unmap_in(&mut scratch, page_va)?));
                        unmapped += 1;
                    }
                    spans.push((va, va + (pages * PAGE_SIZE) as u64));
                    legacy_shootdowns += 1;
                }
                BatchOp::UnmapSparse { va, pages } => {
                    for i in 0..pages {
                        let page_va = va + (i * PAGE_SIZE) as u64;
                        touched.push(page_va >> FLAT_SHIFT);
                        if let Ok(hw) = unmap_in(&mut scratch, page_va) {
                            removed.push(self.arch.decode_owned(hw));
                            unmapped += 1;
                        }
                    }
                    spans.push((va, va + (pages * PAGE_SIZE) as u64));
                    legacy_shootdowns += 1;
                }
                BatchOp::ProtectRange { va, pages, flags } => {
                    for i in 0..pages {
                        let page_va = va + (i * PAGE_SIZE) as u64;
                        touched.push(page_va >> FLAT_SHIFT);
                        protect_in(&mut scratch, page_va, flags, self.arch)?;
                        protects += 1;
                    }
                    spans.push((va, va + (pages * PAGE_SIZE) as u64));
                    legacy_shootdowns += pages as u64;
                }
                BatchOp::SwapFrame { va, pfn, flags } => {
                    let hw = self.arch.encode(Pte {
                        kind: PteKind::Frame(pfn),
                        flags,
                    });
                    touched.push(va >> FLAT_SHIFT);
                    removed.push(self.arch.decode_owned(replace_in(&mut scratch, va, hw)?));
                    spans.push((va, va + PAGE_SIZE as u64));
                    legacy_shootdowns += 1;
                }
            }
        }
        self.publish(&mut st, scratch, &mut touched);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.pages_mapped.fetch_add(mapped, Ordering::Relaxed);
        self.stats
            .pages_unmapped
            .fetch_add(unmapped, Ordering::Relaxed);
        self.stats.protects.fetch_add(protects, Ordering::Relaxed);
        let pages_invalidated = spans.iter().map(|&(s, e)| (e - s) / PAGE_SIZE as u64).sum();
        let shootdowns = if spans.is_empty() {
            0
        } else if self.inval_capacity == 0 {
            // Ablation baseline: pay the legacy per-op publication cost.
            self.generation
                .fetch_add(legacy_shootdowns, Ordering::AcqRel);
            self.stats
                .shootdowns
                .fetch_add(legacy_shootdowns, Ordering::Relaxed);
            legacy_shootdowns
        } else {
            self.shootdown_epoch(spans, batch.epoch);
            1
        };
        Ok(BatchOutcome {
            removed,
            pages_invalidated,
            shootdowns,
        })
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> SpaceStats {
        SpaceStats {
            pages_mapped: self.stats.pages_mapped.load(Ordering::Relaxed),
            pages_unmapped: self.stats.pages_unmapped.load(Ordering::Relaxed),
            protects: self.stats.protects.load(Ordering::Relaxed),
            shootdowns: self.stats.shootdowns.load(Ordering::Relaxed),
            walks: self
                .walk_stripes
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .sum(),
            batches: self.stats.batches.load(Ordering::Relaxed),
            coalesced_shootdowns: self.stats.coalesced_shootdowns.load(Ordering::Relaxed),
            snapshot_publishes: self.stats.snapshot_publishes.load(Ordering::Relaxed),
            snapshots_reclaimed: self.reclaimed_snapshots.load(Ordering::Relaxed),
        }
    }
}

/// A long-lived read handle owning one reader slot of the snapshot
/// reclamation domain — the per-CPU handle `adelie-kernel` threads
/// through its interpreter. [`SpaceReader::pin`] brackets each read
/// operation with an epoch enter/leave on the owned slot (no slot
/// claim per operation).
pub struct SpaceReader<'a> {
    space: &'a AddressSpace,
    slot: usize,
}

impl SpaceReader<'_> {
    /// Pin a reclamation epoch on this handle's slot for one read
    /// operation. Lock-free on the default snapshot path.
    ///
    /// Takes `&mut self`: a slot admits **one** operation at a time
    /// (EBR's contract — a second concurrent enter on the same slot
    /// would let either leave un-pin the other's epoch), and the
    /// exclusive borrow makes a double pin unrepresentable.
    pub fn pin(&mut self) -> SpacePin<'_> {
        self.space.enter_pin(self.slot, false)
    }
}

impl Drop for SpaceReader<'_> {
    fn drop(&mut self) {
        self.space.release_slot(self.slot);
    }
}

impl fmt::Debug for SpaceReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpaceReader")
            .field("slot", &self.slot)
            .finish()
    }
}

/// An active epoch pin: while this guard lives, no snapshot root or
/// invalidation-log slot observable through it can be reclaimed.
/// Obtained from [`AddressSpace::pin`] (one-shot slot claim) or
/// [`SpaceReader::pin`] (pre-claimed slot).
pub struct SpacePin<'a> {
    space: &'a AddressSpace,
    slot: usize,
    release_slot: bool,
    /// In [`ReadPath::Locked`] ablation mode, the read side of the
    /// ablation lock (held for the pin's lifetime).
    _ablate: Option<RwLockReadGuard<'a, ()>>,
}

impl SpacePin<'_> {
    /// The space this pin reads.
    pub fn space(&self) -> &AddressSpace {
        self.space
    }

    /// The current TLB generation (see [`AddressSpace::generation`]).
    pub fn generation(&self) -> u64 {
        self.space.generation()
    }

    /// Translate `va` by walking the currently-published snapshot —
    /// zero locks, no waiting on writers.
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::translate`].
    pub fn translate(&self, va: u64, access: Access) -> Result<Translation, Fault> {
        if va & !VA_MASK != 0 {
            return Err(Fault::NonCanonical { va });
        }
        self.space.walk_stripes[self.slot]
            .0
            .fetch_add(1, Ordering::Relaxed);
        // SAFETY: the pointee is the currently-published (or a
        // just-superseded) snapshot root; superseded roots are retired
        // through `smr` and freed only after every epoch pinned at (or
        // before) retire time has left. This pin entered before the
        // load, so the root outlives the walk.
        let snap = unsafe { &*self.space.snapshot.load(Ordering::SeqCst) };
        walk(snap, va, access)
    }

    /// Translate a whole run of addresses against **one** snapshot
    /// load: every result reflects the *same* published generation, so
    /// a batch can never interleave pre- and post-publish views even
    /// if a re-randomization commit lands mid-iteration — the property
    /// the testkit's `LayoutOracle` probes at every commit. One walk
    /// counter bump and one epoch pin (the caller's) cover the batch.
    ///
    /// Results are positional; per-address faults are reported in
    /// place rather than aborting the batch.
    pub fn translate_batch(&self, vas: &[u64], access: Access) -> Vec<Result<Translation, Fault>> {
        self.space.walk_stripes[self.slot]
            .0
            .fetch_add(vas.len() as u64, Ordering::Relaxed);
        // SAFETY: as in `translate`; a single load is the whole point.
        let snap = unsafe { &*self.space.snapshot.load(Ordering::SeqCst) };
        vas.iter()
            .map(|&va| {
                if va & !VA_MASK != 0 {
                    return Err(Fault::NonCanonical { va });
                }
                walk(snap, va, access)
            })
            .collect()
    }

    /// Plan a TLB resynchronization (see [`AddressSpace::plan_sync`])
    /// without claiming another epoch pin.
    pub fn plan_sync(&self, seen_gen: u64) -> (u64, TlbSync) {
        self.space.plan_sync_pinned(seen_gen)
    }
}

impl Drop for SpacePin<'_> {
    fn drop(&mut self) {
        self.space.smr.leave(self.slot);
        if self.release_slot {
            self.space.release_slot(self.slot);
        }
    }
}

impl fmt::Debug for SpacePin<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpacePin")
            .field("slot", &self.slot)
            .finish()
    }
}

/// What [`AddressSpace::apply`] did.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Old leaves removed by `unmap_range`/`unmap_sparse`/`swap_frame`
    /// operations, in application order.
    pub removed: Vec<Pte>,
    /// Pages covered by the published invalidation set.
    pub pages_invalidated: u64,
    /// Generation bumps the batch published (1 in the range-based
    /// regime, the legacy per-op count under `with_inval_log(0)`, 0 for
    /// a map-only batch).
    pub shootdowns: u64,
}

/// Walk an immutable snapshot (read-only; the caller holds an epoch
/// pin keeping `snap` alive).
///
/// Uses the flattened leaf directory: one hash probe finds the
/// leaf-level node for the address's 2 MiB region, one slot read finds
/// the PTE — ≤2 pointer chases instead of a 5-level tree descent. The
/// directory is re-derived from the tree at every publish for exactly
/// the touched prefixes, so the two views are interchangeable in any
/// published snapshot.
fn walk(snap: &SnapshotRoot, va: u64, access: Access) -> Result<Translation, Fault> {
    let res = walk_flat(snap, va, access);
    // Debug builds (so the whole deterministic test suite) re-walk the
    // tree and insist the directory agrees — a mutation site that
    // forgot to record a touched prefix fails loudly here, not as a
    // silent wrong translation. Release builds pay nothing.
    #[cfg(debug_assertions)]
    assert_eq!(
        res,
        walk_tree(&snap.root, snap.arch, va, access),
        "flat leaf directory diverged from the radix tree at {va:#x}"
    );
    res
}

fn walk_flat(snap: &SnapshotRoot, va: u64, access: Access) -> Result<Translation, Fault> {
    let pte = match snap.flat.get(&(va >> FLAT_SHIFT)) {
        Some(leaf) => match &leaf.slots[level_index(va, LEVELS - 1)] {
            Entry::Leaf(hw) => snap.arch.decode_owned(*hw),
            _ => return Err(Fault::Unmapped { va }),
        },
        None => return Err(Fault::Unmapped { va }),
    };
    check_access(va, &pte, access)?;
    Ok(Translation {
        pte,
        page_va: page_base(va),
    })
}

/// Walk the radix tree itself, ignoring the flat directory — the
/// ground-truth structure writers mutate. The debug-build cross-check
/// in [`walk`] compares the directory against this on every lookup.
#[cfg(debug_assertions)]
fn walk_tree(root: &Node, arch: ArchKind, va: u64, access: Access) -> Result<Translation, Fault> {
    let mut cur: &Node = root;
    for level in 0..LEVELS - 1 {
        cur = match &cur.slots[level_index(va, level)] {
            Entry::Table(t) => t,
            _ => return Err(Fault::Unmapped { va }),
        };
    }
    let pte = match &cur.slots[level_index(va, LEVELS - 1)] {
        Entry::Leaf(hw) => arch.decode_owned(*hw),
        _ => return Err(Fault::Unmapped { va }),
    };
    check_access(va, &pte, access)?;
    Ok(Translation {
        pte,
        page_va: page_base(va),
    })
}

/// Sort and merge overlapping or adjacent `[start, end)` spans in
/// place. Per-page operations (the GOT swing emits one span per page)
/// collapse to one contiguous span, keeping resynchronization plans
/// compact — and under [`MAX_SYNC_SPANS`], where an uncoalesced list
/// would needlessly degrade lagging TLBs to full flushes.
fn coalesce_spans(spans: &mut Vec<(u64, u64)>) {
    if spans.len() < 2 {
        return;
    }
    spans.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for &(start, end) in spans.iter() {
        match merged.last_mut() {
            Some((_, prev_end)) if start <= *prev_end => *prev_end = (*prev_end).max(end),
            _ => merged.push((start, end)),
        }
    }
    *spans = merged;
}

fn check_va(va: u64) -> Result<(), Fault> {
    if va & !VA_MASK != 0 {
        return Err(Fault::NonCanonical { va });
    }
    debug_assert_eq!(page_offset(va), 0, "page-aligned address required");
    Ok(())
}

/// Get exclusive access to a child node for a write transaction: a node
/// created *during this transaction* has refcount 1 (only the scratch
/// tree references it) and is mutated in place; a node shared with the
/// published snapshot (refcount ≥ 2, since the previous root stays
/// alive for the whole transaction) is path-copied first. This is the
/// classic persistent-tree copy-on-write step.
fn owned(t: &mut Arc<Node>) -> &mut Node {
    if Arc::get_mut(t).is_none() {
        *t = Arc::new(t.shallow_clone());
    }
    Arc::get_mut(t).expect("fresh node is uniquely owned")
}

/// Map the arch-encoded leaf `hw` at `va` in the scratch tree,
/// creating (or path-copying) intermediate tables.
fn map_in(root: &mut Node, va: u64, hw: HwPte) -> Result<(), Fault> {
    let mut cur: &mut Node = root;
    for level in 0..LEVELS - 1 {
        let idx = level_index(va, level);
        let slot = &mut cur.slots[idx];
        match slot {
            Entry::Empty => {
                *slot = Entry::Table(Arc::new(Node::new()));
            }
            Entry::Table(_) => {}
            Entry::Leaf(_) => return Err(Fault::AlreadyMapped { va }),
        }
        cur = match slot {
            Entry::Table(t) => owned(t),
            _ => unreachable!(),
        };
    }
    let idx = level_index(va, LEVELS - 1);
    match &mut cur.slots[idx] {
        slot @ Entry::Empty => {
            *slot = Entry::Leaf(hw);
            Ok(())
        }
        _ => Err(Fault::AlreadyMapped { va }),
    }
}

/// Remove the leaf at `va` from the scratch tree, path-copying on the
/// way down and pruning empty tables on the way up.
fn unmap_in(root: &mut Node, va: u64) -> Result<HwPte, Fault> {
    fn remove(cur: &mut Node, va: u64, level: u32) -> Result<HwPte, Fault> {
        let idx = level_index(va, level);
        if level == LEVELS - 1 {
            return match std::mem::replace(&mut cur.slots[idx], Entry::Empty) {
                Entry::Leaf(hw) => Ok(hw),
                other => {
                    cur.slots[idx] = other;
                    Err(Fault::Unmapped { va })
                }
            };
        }
        let hw = match &mut cur.slots[idx] {
            Entry::Table(t) => {
                let node = owned(t);
                let hw = remove(node, va, level + 1)?;
                if !node.is_empty() {
                    return Ok(hw);
                }
                hw
            }
            _ => return Err(Fault::Unmapped { va }),
        };
        cur.slots[idx] = Entry::Empty;
        Ok(hw)
    }
    remove(root, va, 0)
}

fn leaf_mut(root: &mut Node, va: u64) -> Result<&mut HwPte, Fault> {
    let mut cur: &mut Node = root;
    for level in 0..LEVELS - 1 {
        cur = match &mut cur.slots[level_index(va, level)] {
            Entry::Table(t) => owned(t),
            _ => return Err(Fault::Unmapped { va }),
        };
    }
    match &mut cur.slots[level_index(va, LEVELS - 1)] {
        Entry::Leaf(hw) => Ok(hw),
        _ => Err(Fault::Unmapped { va }),
    }
}

/// Change the permissions of the leaf at `va` in the scratch tree,
/// returning the old flags. Decodes the stored encoding, swaps the
/// abstract flags, and re-encodes under the same arch.
fn protect_in(
    root: &mut Node,
    va: u64,
    flags: PteFlags,
    arch: ArchKind,
) -> Result<PteFlags, Fault> {
    let hw = leaf_mut(root, va)?;
    let mut pte = arch.decode_owned(*hw);
    let old = std::mem::replace(&mut pte.flags, flags);
    *hw = arch.encode(pte);
    Ok(old)
}

/// Swap the leaf at `va` for the arch-encoded `new` in the scratch
/// tree, returning the old encoded leaf.
fn replace_in(root: &mut Node, va: u64, new: HwPte) -> Result<HwPte, Fault> {
    let hw = leaf_mut(root, va)?;
    Ok(std::mem::replace(hw, new))
}

fn check_access(va: u64, pte: &Pte, access: Access) -> Result<(), Fault> {
    match access {
        Access::Read => Ok(()),
        Access::Write => {
            if pte.flags.writable() {
                Ok(())
            } else {
                Err(Fault::NotWritable { va })
            }
        }
        Access::Exec => {
            if let PteKind::Mmio { .. } = pte.kind {
                return Err(Fault::MmioExec { va });
            }
            if pte.flags.executable() {
                Ok(())
            } else {
                Err(Fault::NotExecutable { va })
            }
        }
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("generation", &self.generation())
            .field("read_path", &self.read_path())
            .field("arch", &self.arch)
            .field("asid", &self.asid)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VA: u64 = 0x00ab_cdef_0012_3000;

    #[test]
    fn map_translate_unmap() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let t = space.translate(VA + 0x123, Access::Read).unwrap();
        assert_eq!(t.pte.kind, PteKind::Frame(pfn));
        assert_eq!(t.page_va, VA);
        assert_eq!(
            space.map(VA, pfn, PteFlags::DATA),
            Err(Fault::AlreadyMapped { va: VA })
        );
        let pte = space.unmap(VA).unwrap();
        assert_eq!(pte.kind, PteKind::Frame(pfn));
        assert_eq!(
            space.translate(VA, Access::Read),
            Err(Fault::Unmapped { va: VA })
        );
    }

    #[test]
    fn permissions_enforced() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::RO_DATA).unwrap();
        assert!(space.translate(VA, Access::Read).is_ok());
        assert_eq!(
            space.translate(VA, Access::Write),
            Err(Fault::NotWritable { va: VA })
        );
        assert_eq!(
            space.translate(VA, Access::Exec),
            Err(Fault::NotExecutable { va: VA })
        );
        // Text pages execute but don't write.
        space.protect(VA, PteFlags::TEXT).unwrap();
        assert!(space.translate(VA, Access::Exec).is_ok());
        assert_eq!(
            space.translate(VA, Access::Write),
            Err(Fault::NotWritable { va: VA })
        );
    }

    #[test]
    fn zero_copy_alias_sees_same_bytes() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let alias = 0x0044_0000_0000_0000u64;
        space.map(alias, pfn, PteFlags::DATA).unwrap();
        space.write_u64(&phys, VA + 8, 77).unwrap();
        assert_eq!(space.read_u64(&phys, alias + 8).unwrap(), 77);
    }

    #[test]
    fn cross_page_rw() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(2), PteFlags::DATA)
            .unwrap();
        let data: Vec<u8> = (0..100).collect();
        let start = VA + PAGE_SIZE as u64 - 50;
        space.write_bytes(&phys, start, &data).unwrap();
        let mut back = vec![0u8; 100];
        space.read_bytes(&phys, start, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn shootdown_generation() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let g0 = space.generation();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        assert_eq!(space.generation(), g0, "map does not shoot down");
        space.protect(VA, PteFlags::RO_DATA).unwrap();
        assert!(space.generation() > g0, "protect shoots down");
        let g1 = space.generation();
        space.unmap(VA).unwrap();
        assert!(space.generation() > g1, "unmap shoots down");
    }

    #[test]
    fn unmap_range_batches_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let leaves = space.unmap_range(VA, 8).unwrap();
        assert_eq!(leaves.len(), 8);
        assert_eq!(space.generation(), g0 + 1, "one shootdown for the range");
    }

    #[test]
    fn replace_swaps_frames_atomically() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let a = phys.alloc();
        let b = phys.alloc();
        phys.write_u64(a, 0, 1);
        phys.write_u64(b, 0, 2);
        space.map(VA, a, PteFlags::RO_DATA).unwrap();
        assert_eq!(space.read_u64(&phys, VA).unwrap(), 1);
        let g0 = space.generation();
        let old = space.replace(VA, b, PteFlags::RO_DATA).unwrap();
        assert_eq!(old.kind, PteKind::Frame(a));
        assert_eq!(space.read_u64(&phys, VA).unwrap(), 2);
        assert!(space.generation() > g0, "replace shoots down");
        assert_eq!(
            space.replace(VA + 0x1000, b, PteFlags::RO_DATA),
            Err(Fault::Unmapped { va: VA + 0x1000 })
        );
    }

    #[test]
    fn mmio_leaves() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map_mmio(VA, 3, 0, PteFlags::DATA).unwrap();
        let t = space.translate(VA, Access::Write).unwrap();
        assert_eq!(t.pte.kind, PteKind::Mmio { dev: 3, page: 0 });
        assert_eq!(space.read_u64(&phys, VA), Err(Fault::MmioData { va: VA }));
        assert_eq!(
            space.translate(VA, Access::Exec),
            Err(Fault::MmioExec { va: VA })
        );
    }

    #[test]
    fn non_canonical_rejected() {
        let space = AddressSpace::new();
        let phys = PhysMem::new();
        let bad = 1u64 << 60;
        assert_eq!(
            space.map(bad, phys.alloc(), PteFlags::DATA),
            Err(Fault::NonCanonical { va: bad })
        );
        assert_eq!(
            space.translate(bad, Access::Read),
            Err(Fault::NonCanonical { va: bad })
        );
    }

    #[test]
    fn leaves_of_range_gathers() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfns = phys.alloc_n(4);
        space.map_range(VA, &pfns, PteFlags::TEXT).unwrap();
        let leaves = space.leaves_of_range(VA, 4).unwrap();
        for (l, p) in leaves.iter().zip(&pfns) {
            assert_eq!(l.kind, PteKind::Frame(*p));
        }
    }

    #[test]
    fn fetch_short_read_at_edge() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::TEXT).unwrap();
        let mut buf = [0u8; 16];
        // Fetch 8 bytes before the end of the mapped page → short read.
        let n = space
            .fetch(&phys, VA + PAGE_SIZE as u64 - 8, &mut buf)
            .unwrap();
        assert_eq!(n, 8);
        // Fetch entirely outside → fault.
        assert!(space.fetch(&phys, VA + PAGE_SIZE as u64, &mut buf).is_err());
    }

    #[test]
    fn batch_applies_with_one_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let swap = phys.alloc();
        let mut batch = Batch::new();
        batch
            .map_range(VA + 0x10_0000, &phys.alloc_n(2), PteFlags::TEXT)
            .unmap_range(VA, 2)
            .protect_range(VA + 2 * PAGE_SIZE as u64, 2, PteFlags::RO_DATA)
            .swap_frame(VA + 3 * PAGE_SIZE as u64, swap, PteFlags::RO_DATA);
        let outcome = space.apply(batch).unwrap();
        assert_eq!(space.generation(), g0 + 1, "one bump for the whole batch");
        assert_eq!(outcome.shootdowns, 1);
        assert_eq!(outcome.removed.len(), 3, "2 unmapped + 1 swapped-out");
        assert_eq!(outcome.pages_invalidated, 2 + 2 + 1);
        assert!(space.translate(VA, Access::Read).is_err());
        assert!(space.translate(VA + 0x10_0000, Access::Exec).is_ok());
        assert_eq!(
            space
                .translate(VA + 2 * PAGE_SIZE as u64, Access::Read)
                .unwrap()
                .pte
                .flags,
            PteFlags::RO_DATA
        );
        assert_eq!(
            space
                .translate(VA + 3 * PAGE_SIZE as u64, Access::Read)
                .unwrap()
                .pte
                .kind,
            PteKind::Frame(swap)
        );
    }

    #[test]
    fn failed_batch_rolls_back_completely() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfns = phys.alloc_n(2);
        space.map_range(VA, &pfns, PteFlags::DATA).unwrap();
        let g0 = space.generation();
        let s0 = space.stats();
        let mut batch = Batch::new();
        batch
            .unmap_range(VA, 2)
            .protect_range(VA + 0x20_0000, 1, PteFlags::TEXT) // unmapped → faults
            .map_page(VA + 0x30_0000, phys.alloc(), PteFlags::DATA);
        let err = space.apply(batch).unwrap_err();
        assert!(matches!(err, Fault::Unmapped { .. }));
        // Atomicity: the scratch snapshot with the applied unmap was
        // discarded, no generation bump was published, and the stats
        // saw nothing.
        assert_eq!(space.generation(), g0);
        assert_eq!(space.stats().pages_unmapped, s0.pages_unmapped);
        assert_eq!(
            space.stats().snapshot_publishes,
            s0.snapshot_publishes,
            "a failed batch publishes no snapshot"
        );
        for (i, &pfn) in pfns.iter().enumerate() {
            let t = space
                .translate(VA + (i * PAGE_SIZE) as u64, Access::Read)
                .unwrap();
            assert_eq!(t.pte.kind, PteKind::Frame(pfn));
        }
        assert!(space.translate(VA + 0x30_0000, Access::Read).is_err());
    }

    #[test]
    fn map_only_batch_publishes_no_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let g0 = space.generation();
        let mut batch = Batch::new();
        batch.map_range(VA, &phys.alloc_n(3), PteFlags::DATA);
        let outcome = space.apply(batch).unwrap();
        assert_eq!(outcome.shootdowns, 0);
        assert_eq!(space.generation(), g0, "pure maps invalidate nothing");
    }

    #[test]
    fn same_epoch_batches_coalesce_into_one_log_slot() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let mut a = Batch::new().epoch(7);
        a.unmap_range(VA, 2);
        let mut b = Batch::new().epoch(7);
        b.unmap_range(VA + 2 * PAGE_SIZE as u64, 2);
        let seen = space.generation();
        space.apply(a).unwrap();
        space.apply(b).unwrap();
        assert_eq!(space.generation(), seen + 2, "each batch still bumps");
        assert_eq!(space.stats().coalesced_shootdowns, 1, "but slots merged");
        // A TLB that lagged across the whole epoch resynchronizes with
        // one merged partial pass; the two adjacent batch spans have
        // been coalesced into a single contiguous span.
        match space.plan_sync(seen) {
            (cur, TlbSync::Ranges(spans)) => {
                assert_eq!(cur, seen + 2);
                assert_eq!(spans, vec![(VA, VA + 4 * PAGE_SIZE as u64)]);
            }
            other => panic!("expected ranges, got {other:?}"),
        }
    }

    /// Regression: a range op whose *tail* crosses the canonical
    /// boundary used to pass the base-only check and alias low
    /// canonical addresses through the masked radix walk — unmapping a
    /// victim page with no covering invalidation span.
    #[test]
    fn batch_range_crossing_canonical_boundary_is_rejected() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let victim = 0x1000u64;
        space.map(victim, phys.alloc(), PteFlags::DATA).unwrap();
        let edge = (VA_MASK + 1) - PAGE_SIZE as u64; // last canonical page
        for build in [
            |b: &mut Batch, va: u64| {
                b.unmap_sparse(va, 3);
            },
            |b: &mut Batch, va: u64| {
                b.unmap_range(va, 3);
            },
            |b: &mut Batch, va: u64| {
                b.protect_range(va, 3, PteFlags::RO_DATA);
            },
        ] {
            let mut batch = Batch::new();
            build(&mut batch, edge);
            assert!(matches!(
                space.apply(batch),
                Err(Fault::NonCanonical { .. })
            ));
        }
        // Overflowing the address space entirely is rejected too.
        let mut batch = Batch::new();
        batch.unmap_sparse(edge, usize::MAX / PAGE_SIZE);
        assert!(matches!(
            space.apply(batch),
            Err(Fault::NonCanonical { .. })
        ));
        // The victim never lost its mapping.
        assert!(space.translate(victim, Access::Read).is_ok());
    }

    /// A per-page op burst (the GOT-swing shape) must not trip the
    /// span ceiling: adjacent single-page spans coalesce at
    /// publication, so the partial-flush path survives batches far
    /// wider than `MAX_SYNC_SPANS`.
    #[test]
    fn per_page_spans_coalesce_below_the_sync_ceiling() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pages = 128; // 2× MAX_SYNC_SPANS
        space
            .map_range(VA, &phys.alloc_n(pages), PteFlags::DATA)
            .unwrap();
        let seen = space.generation();
        let mut batch = Batch::new();
        for i in 0..pages {
            batch.swap_frame(VA + (i * PAGE_SIZE) as u64, phys.alloc(), PteFlags::RO_DATA);
        }
        space.apply(batch).unwrap();
        match space.plan_sync(seen) {
            (_, TlbSync::Ranges(spans)) => {
                assert_eq!(spans, vec![(VA, VA + (pages * PAGE_SIZE) as u64)]);
            }
            other => panic!("128 adjacent page spans must coalesce, got {other:?}"),
        }
    }

    #[test]
    fn plan_sync_degrades_to_full_past_the_horizon() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(2);
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let seen = space.generation();
        for i in 0..4u64 {
            space.unmap(VA + i * PAGE_SIZE as u64).unwrap();
        }
        assert!(matches!(space.plan_sync(seen), (_, TlbSync::Full)));
        // A fresh snapshot within the horizon gets ranges.
        let recent = space.generation() - 1;
        assert!(matches!(
            space.plan_sync(recent),
            (_, TlbSync::Ranges(ref s)) if s.len() == 1
        ));
        assert!(matches!(
            space.plan_sync(space.generation()),
            (_, TlbSync::Current)
        ));
    }

    #[test]
    fn disabled_log_batch_pays_legacy_per_op_shootdowns() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(0);
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let g0 = space.generation();
        let mut batch = Batch::new();
        batch
            .unmap_range(VA, 1)
            .protect_range(VA + PAGE_SIZE as u64, 2, PteFlags::RO_DATA)
            .swap_frame(VA + 3 * PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA);
        let outcome = space.apply(batch).unwrap();
        // 1 (unmap) + 2 (protect per page, the legacy cost) + 1 (swap).
        assert_eq!(outcome.shootdowns, 4);
        assert_eq!(space.generation(), g0 + 4);
        assert!(matches!(space.plan_sync(g0), (_, TlbSync::Full)));
    }

    #[test]
    fn stats_track_activity() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(3), PteFlags::DATA)
            .unwrap();
        space.unmap(VA).unwrap();
        let s = space.stats();
        assert_eq!(s.pages_mapped, 3);
        assert_eq!(s.pages_unmapped, 1);
        assert!(s.walks > 0 || s.shootdowns > 0);
    }

    /// Every write transaction publishes exactly one snapshot, retires
    /// exactly one root, and (once readers quiesce) every retired root
    /// is reclaimed.
    #[test]
    fn snapshot_reclaim_accounting() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        space.protect(VA, PteFlags::RO_DATA).unwrap();
        space.unmap(VA).unwrap();
        let mut batch = Batch::new();
        batch.map_range(VA, &phys.alloc_n(2), PteFlags::DATA);
        space.apply(batch).unwrap();
        let s = space.stats();
        assert_eq!(s.snapshot_publishes, 4, "one publication per transaction");
        space.flush_snapshots();
        let smr = space.snapshot_smr();
        assert_eq!(smr.delta(), 0, "all retired roots reclaimed at quiescence");
        assert_eq!(
            space.stats().snapshots_reclaimed,
            s.snapshot_publishes,
            "each publication retired exactly one predecessor root"
        );
    }

    /// A reader pinned across a publication keeps its snapshot alive:
    /// the root it loaded is not reclaimed until the pin drops.
    #[test]
    fn pinned_reader_blocks_snapshot_reclaim() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let before = space.stats().snapshots_reclaimed;
        let pin = space.pin();
        assert!(pin.translate(VA, Access::Read).is_ok());
        // Publish twice while the reader is pinned.
        space.protect(VA, PteFlags::RO_DATA).unwrap();
        space.protect(VA, PteFlags::DATA).unwrap();
        space.flush_snapshots();
        // The pinned epoch blocks at least the roots retired since it
        // entered (EBR: nothing retired after the pin may be freed).
        assert!(
            space.stats().snapshots_reclaimed < before + 2,
            "a pinned reader must hold back retired roots"
        );
        // The old snapshot is still walkable through the live pin.
        assert!(pin.translate(VA, Access::Read).is_ok());
        drop(pin);
        space.flush_snapshots();
        assert_eq!(space.snapshot_smr().delta(), 0);
    }

    /// The locked ablation regime serves byte-identical results — it
    /// only changes the synchronization, not the semantics.
    #[test]
    fn locked_read_path_is_semantically_identical() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_space_config(SpaceConfig {
            read_path: ReadPath::Locked,
            ..SpaceConfig::new()
        });
        assert_eq!(space.read_path(), ReadPath::Locked);
        let pfn = phys.alloc();
        space.map(VA, pfn, PteFlags::DATA).unwrap();
        let t = space.translate(VA, Access::Read).unwrap();
        assert_eq!(t.pte.kind, PteKind::Frame(pfn));
        space.unmap(VA).unwrap();
        assert!(space.translate(VA, Access::Read).is_err());
        assert!(matches!(space.plan_sync(0), (_, TlbSync::Ranges(_))));
    }

    /// The flat leaf directory must agree with the radix tree after
    /// every kind of mutation — single ops, ranges, sparse unmaps, and
    /// batches that cross 2 MiB prefix boundaries. `walk` cross-checks
    /// both structures on every lookup in debug builds, so translating
    /// here *is* the equivalence assertion; this test just makes sure
    /// the probes cover mapped, remapped, protected, and torn-down
    /// prefixes explicitly. (`walk_tree` only exists in debug builds,
    /// so a `cargo test --release` run skips this one.)
    #[cfg(debug_assertions)]
    #[test]
    fn flat_directory_matches_tree_walk() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        // 5 pages straddling a 2 MiB prefix boundary: 3 below, 2 above.
        let base = 0x00ab_cdef_0000_0000 + (1u64 << FLAT_SHIFT) - 3 * PAGE_SIZE as u64;
        let pfns: Vec<Pfn> = (0..5).map(|_| phys.alloc()).collect();
        space.map_range(base, &pfns, PteFlags::DATA).unwrap();
        let probe = |va: u64, access: Access| {
            let snap = unsafe { &*space.snapshot.load(Ordering::SeqCst) };
            assert_eq!(
                walk_flat(snap, va, access),
                walk_tree(&snap.root, snap.arch, va, access),
                "flat/tree divergence at {va:#x}"
            );
        };
        let pages: Vec<u64> = (0..5).map(|i| base + (i * PAGE_SIZE) as u64).collect();
        for &va in &pages {
            probe(va, Access::Read);
            probe(va, Access::Exec);
        }
        // Protect one page on each side of the boundary, unmap the
        // middle, and re-check every probe plus never-mapped neighbors.
        space.protect(pages[0], PteFlags::RO_DATA).unwrap();
        space.protect(pages[4], PteFlags::TEXT).unwrap();
        space.unmap(pages[2]).unwrap();
        space.unmap_sparse(pages[1], 1);
        for &va in &pages {
            probe(va, Access::Read);
            probe(va, Access::Write);
        }
        probe(base - PAGE_SIZE as u64, Access::Read);
        probe(base + (8 * PAGE_SIZE) as u64, Access::Read);
        // Tear the rest down: the directory must drop emptied prefixes.
        space.unmap_range(pages[3], 2).unwrap();
        space.unmap(pages[0]).unwrap();
        let snap = unsafe { &*space.snapshot.load(Ordering::SeqCst) };
        assert!(
            snap.flat.is_empty(),
            "emptied prefixes must leave the directory"
        );
        for &va in &pages {
            probe(va, Access::Read);
        }
    }

    /// One batch = one snapshot-root load: results are positional,
    /// identical to N singles against an unchanging space, and a batch
    /// can never mix two published generations.
    #[test]
    fn translate_batch_matches_singles() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfns: Vec<Pfn> = (0..4).map(|_| phys.alloc()).collect();
        space.map_range(VA, &pfns[..3], PteFlags::DATA).unwrap();
        let vas = [
            VA + 0x10,
            VA + PAGE_SIZE as u64,
            VA + (3 * PAGE_SIZE) as u64, // unmapped
            0xffff_0000_0000_0000,       // non-canonical
            VA + (2 * PAGE_SIZE) as u64,
        ];
        let batch = space.translate_batch(&vas, Access::Read);
        assert_eq!(batch.len(), vas.len());
        for (i, va) in vas.iter().enumerate() {
            assert_eq!(batch[i], space.translate(*va, Access::Read), "index {i}");
        }
        // The root is loaded once per batch *call*, not per pin: a
        // batch issued after a publish sees the new root even through a
        // pre-existing pin (the pin guards reclamation, not staleness).
        let pin = space.pin();
        space.unmap(VA).unwrap();
        assert!(pin.translate_batch(&vas[..1], Access::Read)[0].is_err());
        drop(pin);
        assert!(space.translate_batch(&vas[..1], Access::Read)[0].is_err());
    }

    /// Long-lived read handles recycle their claimed slots.
    #[test]
    fn reader_slots_recycle() {
        let space = AddressSpace::new();
        let first = {
            let mut r = space.reader();
            let pin = r.pin();
            drop(pin);
            format!("{r:?}")
        };
        // After dropping, claiming again must succeed (and readers far
        // in excess of the slot count work fine sequentially).
        for _ in 0..READER_SLOTS * 2 {
            let mut r = space.reader();
            let _pin = r.pin();
        }
        let _ = first;
    }
}
