//! ISA backends: hardware PTE encodings, ASID allocation, and per-arch
//! TLB invalidation cost models (the [`Arch`] trait).
//!
//! The rest of vmem reasons about an abstract leaf ([`Pte`]): a frame or
//! an MMIO window plus writable/no-execute permission bits. Real
//! hardware stores none of that shape — it stores format-specific bit
//! layouts that a hardware walker consumes, and it tags TLB entries
//! with *address-space identifiers* so a context switch does not have
//! to flush. This module pins the two formats Adelie's ecosystem cares
//! about:
//!
//! * **x86_64 4-level paging** — `P`/`RW` low bits, `NX` at bit 63,
//!   accessed/dirty/global attribute bits, a 40-bit frame number at
//!   bits 12..52 with bits 52..63 reserved (must be zero), and 12-bit
//!   **PCID**s tagging TLB entries (`mov cr3` with bit 63 set switches
//!   without flushing; `invpcid` invalidates one context).
//! * **riscv64 Sv48** — `V`/`R`/`W`/`X` permission bits (including the
//!   MARDU-style *execute-only* `X`-without-`R` encoding that x86
//!   cannot express), `A`/`D`/`G` attributes, RSW software bits, a
//!   44-bit PPN at bits 10..54 with bits 54..63 reserved, and 16-bit
//!   ASIDs in the `satp` CSR (`sfence.vma` takes optional address and
//!   ASID operands for targeted invalidation).
//!
//! Three responsibilities live here and nowhere else:
//!
//! 1. **Encode/decode** between [`Pte`] and the hardware bit layout
//!    ([`HwPte`]). Decoding is *validating*: reserved-bit violations,
//!    non-present entries, and reserved permission combinations (riscv
//!    `W` without `R`) are rejected with a typed [`PteDecodeError`]
//!    instead of being misread.
//! 2. **ASID allocation** with Linux-style *generation rollover*: each
//!    arch exposes a bounded identifier space (4095 usable PCIDs,
//!    65535 usable ASIDs); when the allocator wraps it bumps a
//!    rollover epoch, and a TLB that observes a newer epoch than it
//!    has adopted must flush once before trusting tags again (see
//!    DESIGN.md §15).
//! 3. **Invalidation cost models** ([`TlbCostModel`]): relative cycle
//!    weights for single-page invalidation (`invlpg` /
//!    `sfence.vma addr, asid`), ranged resynchronization, full flushes
//!    (`invpcid` all-context / `sfence.vma x0, x0`), and tagged vs
//!    flushing context switches — so `BENCH_tlb_shootdown` can report
//!    arch-realistic columns from one run's [`TlbStats`].
//!
//! The workspace picks a backend at runtime via [`ArchKind`]
//! (`ADELIE_ARCH=riscv64` in the environment, or explicitly through
//! `SpaceConfig`/`KernelConfig`), which keeps CI's arch matrix a pure
//! environment toggle.

use crate::{Pfn, Pte, PteFlags, PteKind, TlbStats};
use std::sync::Mutex;

/// An architecture-encoded leaf PTE: the raw bits a hardware page-table
/// walker would consume. Only meaningful together with the
/// [`ArchKind`] that minted it (the same bit pattern decodes
/// differently — or not at all — under the other backend).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct HwPte(u64);

impl HwPte {
    /// Wrap raw bits (fuzz/decode-testing entry point).
    pub fn from_bits(bits: u64) -> HwPte {
        HwPte(bits)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for HwPte {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HwPte({:#018x})", self.0)
    }
}

/// Why a raw bit pattern failed to decode as a leaf PTE.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PteDecodeError {
    /// The present/valid bit is clear — not a mapping at all.
    NotPresent,
    /// Bits the architecture reserves (and requires zero) were set:
    /// x86_64 bits 52..63, riscv Sv48 bits 54..64.
    ReservedBits,
    /// riscv: `W` set without `R` — a combination the privileged spec
    /// reserves.
    WriteWithoutRead,
    /// riscv: valid entry with `R`/`W`/`X` all clear — a pointer to the
    /// next table level, not a leaf.
    NonLeaf,
}

impl std::fmt::Display for PteDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PteDecodeError::NotPresent => write!(f, "present/valid bit clear"),
            PteDecodeError::ReservedBits => write!(f, "reserved bits set"),
            PteDecodeError::WriteWithoutRead => write!(f, "riscv W without R is reserved"),
            PteDecodeError::NonLeaf => write!(f, "valid non-leaf (pointer) entry"),
        }
    }
}

impl std::error::Error for PteDecodeError {}

/// An address-space identifier plus the rollover epoch it was allocated
/// in. Identifier *values* repeat once the arch's bounded space wraps;
/// the `(value, rollover)` pair never does, which is what makes lazy
/// tag-matched TLB retention sound (DESIGN.md §15).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asid {
    /// The hardware tag value (12-bit PCID / 16-bit ASID; never 0,
    /// which every OS reserves for "no tag" bootstrapping).
    pub value: u16,
    /// Allocator wrap count at allocation time. A TLB that sees an
    /// ASID from a newer rollover than it has adopted must flush once:
    /// values from older epochs may have been reassigned.
    pub rollover: u64,
}

/// Bounded ASID allocator with generation rollover, one per arch
/// (Linux `asid_allocator`-style, simplified: wrap = new epoch, no
/// per-CPU active-ASID reuse bitmap).
#[derive(Debug)]
pub struct AsidAllocator {
    capacity: u16,
    next: u16,
    rollover: u64,
}

impl AsidAllocator {
    /// An allocator handing out `1..=capacity` before wrapping into a
    /// new rollover epoch. `capacity` must be at least 1 (value 0 is
    /// reserved).
    pub const fn with_capacity(capacity: u16) -> AsidAllocator {
        assert!(capacity >= 1, "ASID value 0 is reserved");
        AsidAllocator {
            capacity,
            next: 1,
            rollover: 0,
        }
    }

    /// Hand out the next identifier, wrapping into a fresh rollover
    /// epoch when the value space is exhausted.
    pub fn alloc(&mut self) -> Asid {
        if self.next > self.capacity {
            self.rollover += 1;
            self.next = 1;
        }
        let value = self.next;
        self.next += 1;
        Asid {
            value,
            rollover: self.rollover,
        }
    }

    /// The current rollover epoch (starts at 0).
    pub fn rollover(&self) -> u64 {
        self.rollover
    }
}

/// Relative cycle weights for one architecture's TLB maintenance
/// instructions. The absolute numbers are order-of-magnitude estimates
/// from published microbenchmarks (invlpg/invpcid latency, `mov cr3`
/// with and without the no-flush bit, `sfence.vma` variants); what the
/// bench cares about is the *shape* — per-page vs ranged vs full vs
/// tagged-switch — applied uniformly to both backends' [`TlbStats`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TlbCostModel {
    /// Backend name the model belongs to.
    pub arch: &'static str,
    /// One page, one address space: `invlpg` / `sfence.vma addr, asid`,
    /// including the cost of refilling the entry on next touch.
    pub page_invalidate: u64,
    /// Fixed overhead of one ranged resynchronization pass (reading the
    /// invalidation set and issuing the per-page operations, which are
    /// charged separately via `page_invalidate`).
    pub range_sync_base: u64,
    /// Everything goes: `invpcid` single-context / `sfence.vma x0, x0`
    /// plus the steady-state refill storm that follows.
    pub full_flush: u64,
    /// A context switch that *keeps* tagged entries: `mov cr3` with
    /// bit 63 (PCID no-flush) / `csrw satp` with a new ASID.
    pub tagged_switch: u64,
    /// A context switch that flushes: untagged `mov cr3` / `csrw satp`
    /// followed by `sfence.vma`, plus the refill storm.
    pub switch_flush: u64,
}

impl TlbCostModel {
    /// Price a TLB's counter snapshot under this model, in modeled
    /// cycles. Full flushes are split by cause using the
    /// [`TlbStats::switch_flushes`] accounting: switch-forced flushes
    /// are charged at `switch_flush`, the rest (log horizon, disabled
    /// log, explicit) at `full_flush`; switches that kept their tagged
    /// entries cost only `tagged_switch`.
    pub fn modeled_cycles(&self, t: &TlbStats) -> u64 {
        let other_flushes = t.flushes.saturating_sub(t.switch_flushes);
        let tagged_switches = t.switches.saturating_sub(t.switch_flushes);
        t.entries_invalidated * self.page_invalidate
            + t.partial_flushes * self.range_sync_base
            + other_flushes * self.full_flush
            + t.switch_flushes * self.switch_flush
            + tagged_switches * self.tagged_switch
    }
}

/// One ISA backend: leaf encode/decode, identifier width, context-token
/// formation, and the invalidation cost model. Implementations are
/// zero-sized; runtime selection goes through [`ArchKind`].
pub trait Arch {
    /// Human-readable backend name (used in bench column labels).
    const NAME: &'static str;
    /// Identifier width: 12 (PCID) or 16 (satp ASID).
    const ASID_BITS: u32;

    /// Encode an abstract leaf into the hardware bit layout.
    fn encode(pte: Pte) -> u64;

    /// Validate and decode a hardware bit pattern back into the
    /// abstract leaf.
    fn decode(bits: u64) -> Result<Pte, PteDecodeError>;

    /// The control-register image that installs `root` under `asid`:
    /// a CR3 value with the PCID in bits 0..12, or a `satp` value with
    /// MODE=Sv48, the ASID at bits 44..60, and the root PPN.
    fn context_token(asid: Asid, root: Pfn) -> u64;

    /// This backend's invalidation cost model.
    fn cost_model() -> TlbCostModel;
}

/// x86_64 4-level paging bit layout (level-1 leaf).
mod x86 {
    pub const VALID: u64 = 1 << 0;
    pub const WRITABLE: u64 = 1 << 1;
    pub const ACCESSED: u64 = 1 << 5;
    pub const DIRTY: u64 = 1 << 6;
    /// Global bit — exempt from PCID-tagged invalidation on real
    /// hardware. Never set by `encode` (every Adelie mapping is
    /// per-space so tags stay authoritative); tolerated by `decode`.
    pub const GLOBAL: u64 = 1 << 8;
    /// OS-available bit 9: marks an MMIO leaf (device/page packed in
    /// the frame field) instead of an ordinary frame.
    pub const SW_MMIO: u64 = 1 << 9;
    pub const NX: u64 = 1 << 63;
    pub const ADDR_SHIFT: u32 = 12;
    /// Frame bits 12..52 (MAXPHYADDR 52).
    pub const ADDR_MASK: u64 = ((1u64 << 52) - 1) & !((1u64 << ADDR_SHIFT) - 1);
    /// Bits 52..63 must be zero on a leaf.
    pub const RESERVED_MASK: u64 = ((1u64 << 63) - 1) & !((1u64 << 52) - 1);
}

/// riscv64 Sv48 bit layout.
mod rv {
    pub const VALID: u64 = 1 << 0;
    pub const READ: u64 = 1 << 1;
    pub const WRITE: u64 = 1 << 2;
    pub const EXEC: u64 = 1 << 3;
    pub const ACCESSED: u64 = 1 << 6;
    pub const DIRTY: u64 = 1 << 7;
    /// RSW[0] (software-available): marks an MMIO leaf.
    pub const RSW_MMIO: u64 = 1 << 8;
    pub const PPN_SHIFT: u32 = 10;
    /// PPN bits 10..54 (44-bit physical page numbers).
    pub const PPN_MASK: u64 = ((1u64 << 54) - 1) & !((1u64 << PPN_SHIFT) - 1);
    /// Bits 54..64 must be zero (no Svpbmt/Svnapot extensions modeled).
    pub const RESERVED_MASK: u64 = !((1u64 << 54) - 1);
}

/// MMIO leaves pack `(device, page)` into the frame field; each half
/// gets 20 bits (fits both the 40-bit x86 frame field and the 44-bit
/// riscv PPN).
const MMIO_HALF_BITS: u32 = 20;
const MMIO_HALF_MASK: u64 = (1 << MMIO_HALF_BITS) - 1;

fn pack_kind(kind: PteKind) -> (u64, bool) {
    match kind {
        PteKind::Frame(Pfn(pfn)) => {
            debug_assert!(pfn < (1 << 40), "frame number exceeds the modeled 40 bits");
            (pfn, false)
        }
        PteKind::Mmio { dev, page } => {
            debug_assert!(
                (dev as u64) <= MMIO_HALF_MASK && (page as u64) <= MMIO_HALF_MASK,
                "MMIO device/page exceed the 20-bit packing"
            );
            (
                ((dev as u64) << MMIO_HALF_BITS) | (page as u64 & MMIO_HALF_MASK),
                true,
            )
        }
    }
}

fn unpack_kind(packed: u64, mmio: bool) -> PteKind {
    if mmio {
        PteKind::Mmio {
            dev: (packed >> MMIO_HALF_BITS) as u32,
            page: (packed & MMIO_HALF_MASK) as u32,
        }
    } else {
        PteKind::Frame(Pfn(packed))
    }
}

/// x86_64 4-level paging with PCID-tagged TLB entries.
#[allow(non_camel_case_types)]
pub struct X86_64;

impl Arch for X86_64 {
    const NAME: &'static str = "x86_64";
    const ASID_BITS: u32 = 12;

    fn encode(pte: Pte) -> u64 {
        // Canonical encode: A always set, D iff writable — so
        // decode(encode(p)) == p without tracking soft state.
        let mut bits = x86::VALID | x86::ACCESSED;
        if pte.flags.writable() {
            bits |= x86::WRITABLE | x86::DIRTY;
        }
        if !pte.flags.executable() {
            bits |= x86::NX;
        }
        let (packed, mmio) = pack_kind(pte.kind);
        if mmio {
            bits |= x86::SW_MMIO;
        }
        let bits = bits | (packed << x86::ADDR_SHIFT);
        // Every Adelie mapping is per-space: a global (PCID-exempt)
        // leaf would escape ASID-tagged invalidation.
        debug_assert_eq!(bits & x86::GLOBAL, 0);
        bits
    }

    fn decode(bits: u64) -> Result<Pte, PteDecodeError> {
        if bits & x86::VALID == 0 {
            return Err(PteDecodeError::NotPresent);
        }
        if bits & x86::RESERVED_MASK != 0 {
            return Err(PteDecodeError::ReservedBits);
        }
        let mut flags = PteFlags::TEXT;
        if bits & x86::WRITABLE != 0 {
            flags = flags | PteFlags::WRITABLE;
        }
        if bits & x86::NX != 0 {
            flags = flags | PteFlags::NX;
        }
        let packed = (bits & x86::ADDR_MASK) >> x86::ADDR_SHIFT;
        Ok(Pte {
            kind: unpack_kind(packed, bits & x86::SW_MMIO != 0),
            flags,
        })
    }

    fn context_token(asid: Asid, root: Pfn) -> u64 {
        // CR3 image: PML4 frame at bits 12.., PCID in bits 0..12. (The
        // bit-63 "don't flush" hint is a property of the *switch*, not
        // of the token — the Tlb models it via AsidPolicy.)
        (root.0 << 12) | (asid.value as u64 & 0xFFF)
    }

    fn cost_model() -> TlbCostModel {
        TlbCostModel {
            arch: Self::NAME,
            page_invalidate: 240, // invlpg + next-touch refill
            range_sync_base: 120,
            full_flush: 1700,   // invpcid single-context + refill storm
            tagged_switch: 300, // mov cr3, PCID, bit 63 set
            switch_flush: 2200, // mov cr3 without no-flush + refills
        }
    }
}

/// riscv64 Sv48 with `satp`-style 16-bit ASIDs.
pub struct Riscv64Sv48;

impl Arch for Riscv64Sv48 {
    const NAME: &'static str = "riscv64-sv48";
    const ASID_BITS: u32 = 16;

    fn encode(pte: Pte) -> u64 {
        let mut bits = rv::VALID | rv::READ | rv::ACCESSED;
        if pte.flags.writable() {
            bits |= rv::WRITE | rv::DIRTY;
        }
        if pte.flags.executable() {
            bits |= rv::EXEC;
        }
        let (packed, mmio) = pack_kind(pte.kind);
        if mmio {
            bits |= rv::RSW_MMIO;
        }
        bits | (packed << rv::PPN_SHIFT)
    }

    fn decode(bits: u64) -> Result<Pte, PteDecodeError> {
        if bits & rv::VALID == 0 {
            return Err(PteDecodeError::NotPresent);
        }
        if bits & rv::RESERVED_MASK != 0 {
            return Err(PteDecodeError::ReservedBits);
        }
        let (r, w, x) = (
            bits & rv::READ != 0,
            bits & rv::WRITE != 0,
            bits & rv::EXEC != 0,
        );
        if !r && !w && !x {
            return Err(PteDecodeError::NonLeaf);
        }
        if w && !r {
            return Err(PteDecodeError::WriteWithoutRead);
        }
        // Note: X-without-R is *legal* here (execute-only text, the
        // MARDU hardening shape x86 can't express) and decodes to a
        // non-writable executable leaf.
        let mut flags = PteFlags::TEXT;
        if w {
            flags = flags | PteFlags::WRITABLE;
        }
        if !x {
            flags = flags | PteFlags::NX;
        }
        let packed = (bits & rv::PPN_MASK) >> rv::PPN_SHIFT;
        Ok(Pte {
            kind: unpack_kind(packed, bits & rv::RSW_MMIO != 0),
            flags,
        })
    }

    fn context_token(asid: Asid, root: Pfn) -> u64 {
        // satp: MODE=9 (Sv48) | ASID[15:0] at bits 44..60 | root PPN.
        (9u64 << 60) | ((asid.value as u64) << 44) | (root.0 & ((1u64 << 44) - 1))
    }

    fn cost_model() -> TlbCostModel {
        TlbCostModel {
            arch: Self::NAME,
            page_invalidate: 90, // sfence.vma addr, asid
            range_sync_base: 60,
            full_flush: 900,    // sfence.vma x0, x0 + refill storm
            tagged_switch: 150, // csrw satp with a live ASID
            switch_flush: 1050, // csrw satp + sfence.vma + refills
        }
    }
}

static X86_64_ASIDS: Mutex<AsidAllocator> =
    Mutex::new(AsidAllocator::with_capacity(ArchKind::X86_64.max_asid()));
static RISCV64_ASIDS: Mutex<AsidAllocator> = Mutex::new(AsidAllocator::with_capacity(
    ArchKind::Riscv64Sv48.max_asid(),
));

/// Runtime arch selector dispatching to the [`Arch`] backends; this is
/// what flows through `SpaceConfig` → `KernelConfig` → `FleetConfig`.
#[allow(non_camel_case_types)]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// [`X86_64`]: 4-level paging, PCID tags.
    #[default]
    X86_64,
    /// [`Riscv64Sv48`]: Sv48, `satp` ASID tags.
    Riscv64Sv48,
}

impl ArchKind {
    /// Backend selection from the `ADELIE_ARCH` environment variable
    /// (`riscv64`/`riscv64sv48`/`rv64` → riscv; anything else,
    /// including unset, → x86_64). CI's arch matrix sets only this.
    pub fn from_env() -> ArchKind {
        match std::env::var("ADELIE_ARCH") {
            Ok(v)
                if v.eq_ignore_ascii_case("riscv64")
                    || v.eq_ignore_ascii_case("riscv64sv48")
                    || v.eq_ignore_ascii_case("rv64") =>
            {
                ArchKind::Riscv64Sv48
            }
            _ => ArchKind::X86_64,
        }
    }

    /// Backend name ([`Arch::NAME`]).
    pub const fn name(self) -> &'static str {
        match self {
            ArchKind::X86_64 => X86_64::NAME,
            ArchKind::Riscv64Sv48 => Riscv64Sv48::NAME,
        }
    }

    /// Identifier width ([`Arch::ASID_BITS`]).
    pub const fn asid_bits(self) -> u32 {
        match self {
            ArchKind::X86_64 => X86_64::ASID_BITS,
            ArchKind::Riscv64Sv48 => Riscv64Sv48::ASID_BITS,
        }
    }

    /// Largest usable identifier value (value 0 is reserved).
    pub const fn max_asid(self) -> u16 {
        ((1u32 << self.asid_bits()) - 1) as u16
    }

    /// Encode an abstract leaf under this backend.
    pub fn encode(self, pte: Pte) -> HwPte {
        HwPte(match self {
            ArchKind::X86_64 => X86_64::encode(pte),
            ArchKind::Riscv64Sv48 => Riscv64Sv48::encode(pte),
        })
    }

    /// Validate and decode a hardware bit pattern under this backend.
    pub fn decode(self, hw: HwPte) -> Result<Pte, PteDecodeError> {
        match self {
            ArchKind::X86_64 => X86_64::decode(hw.0),
            ArchKind::Riscv64Sv48 => Riscv64Sv48::decode(hw.0),
        }
    }

    /// Decode bits this backend itself encoded — panics on corruption,
    /// which would mean memory unsafety elsewhere, not bad input.
    pub fn decode_owned(self, hw: HwPte) -> Pte {
        self.decode(hw)
            .expect("arch-encoded PTE produced by encode() failed to decode")
    }

    /// Context-install token ([`Arch::context_token`]).
    pub fn context_token(self, asid: Asid, root: Pfn) -> u64 {
        match self {
            ArchKind::X86_64 => X86_64::context_token(asid, root),
            ArchKind::Riscv64Sv48 => Riscv64Sv48::context_token(asid, root),
        }
    }

    /// Invalidation cost model ([`Arch::cost_model`]).
    pub fn cost_model(self) -> TlbCostModel {
        match self {
            ArchKind::X86_64 => X86_64::cost_model(),
            ArchKind::Riscv64Sv48 => Riscv64Sv48::cost_model(),
        }
    }

    /// Allocate an identifier from this backend's process-wide
    /// allocator (rollover epoch included).
    pub fn allocate_asid(self) -> Asid {
        let allocator = match self {
            ArchKind::X86_64 => &X86_64_ASIDS,
            ArchKind::Riscv64Sv48 => &RISCV64_ASIDS,
        };
        allocator
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .alloc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARCHES: [ArchKind; 2] = [ArchKind::X86_64, ArchKind::Riscv64Sv48];

    fn all_flags() -> [PteFlags; 4] {
        [
            PteFlags::TEXT,
            PteFlags::WRITABLE,
            PteFlags::NX,
            PteFlags::DATA,
        ]
    }

    #[test]
    fn frame_round_trips_exactly() {
        for arch in ARCHES {
            for flags in all_flags() {
                for pfn in [0u64, 1, 0x1234, (1 << 40) - 1] {
                    let pte = Pte {
                        kind: PteKind::Frame(Pfn(pfn)),
                        flags,
                    };
                    let hw = arch.encode(pte);
                    assert_eq!(
                        arch.decode(hw),
                        Ok(pte),
                        "{} round trip pfn={pfn:#x} flags={flags}",
                        arch.name()
                    );
                }
            }
        }
    }

    #[test]
    fn mmio_round_trips_exactly() {
        for arch in ARCHES {
            for (dev, page) in [(0u32, 0u32), (1, 2), (0xF_FFFF, 0xF_FFFF)] {
                let pte = Pte {
                    kind: PteKind::Mmio { dev, page },
                    flags: PteFlags::DATA,
                };
                assert_eq!(arch.decode(arch.encode(pte)), Ok(pte), "{}", arch.name());
            }
        }
    }

    #[test]
    fn x86_rejects_malformed() {
        let a = ArchKind::X86_64;
        assert_eq!(
            a.decode(HwPte::from_bits(0)),
            Err(PteDecodeError::NotPresent)
        );
        assert_eq!(
            a.decode(HwPte::from_bits(x86::WRITABLE | x86::NX)),
            Err(PteDecodeError::NotPresent),
            "permissions without P are still not-present"
        );
        for reserved_bit in 52..63 {
            assert_eq!(
                a.decode(HwPte::from_bits(x86::VALID | (1 << reserved_bit))),
                Err(PteDecodeError::ReservedBits)
            );
        }
        // Attribute bits the model doesn't produce are tolerated.
        assert!(a
            .decode(HwPte::from_bits(x86::VALID | x86::GLOBAL | x86::DIRTY))
            .is_ok());
    }

    #[test]
    fn riscv_rejects_malformed() {
        let a = ArchKind::Riscv64Sv48;
        assert_eq!(
            a.decode(HwPte::from_bits(0)),
            Err(PteDecodeError::NotPresent)
        );
        assert_eq!(
            a.decode(HwPte::from_bits(rv::READ | rv::WRITE)),
            Err(PteDecodeError::NotPresent)
        );
        for reserved_bit in 54..64 {
            assert_eq!(
                a.decode(HwPte::from_bits(
                    rv::VALID | rv::READ | (1u64 << reserved_bit)
                )),
                Err(PteDecodeError::ReservedBits)
            );
        }
        assert_eq!(
            a.decode(HwPte::from_bits(rv::VALID)),
            Err(PteDecodeError::NonLeaf),
            "V with RWX clear points at the next level"
        );
        assert_eq!(
            a.decode(HwPte::from_bits(rv::VALID | rv::WRITE)),
            Err(PteDecodeError::WriteWithoutRead)
        );
    }

    /// riscv can express execute-only text (MARDU's hardening shape);
    /// it decodes to an executable, non-writable leaf.
    #[test]
    fn riscv_execute_only_is_legal() {
        let a = ArchKind::Riscv64Sv48;
        let pte = a
            .decode(HwPte::from_bits(
                rv::VALID | rv::EXEC | (7 << rv::PPN_SHIFT),
            ))
            .expect("XO must decode");
        assert!(pte.flags.executable() && !pte.flags.writable());
        assert_eq!(pte.kind, PteKind::Frame(Pfn(7)));
    }

    #[test]
    fn context_tokens_have_the_documented_shape() {
        let asid = Asid {
            value: 0x123,
            rollover: 0,
        };
        let cr3 = ArchKind::X86_64.context_token(asid, Pfn(0x40));
        assert_eq!(cr3 & 0xFFF, 0x123, "PCID in CR3[11:0]");
        assert_eq!(cr3 >> 12, 0x40, "root frame above");
        let satp = ArchKind::Riscv64Sv48.context_token(asid, Pfn(0x40));
        assert_eq!(satp >> 60, 9, "MODE=Sv48");
        assert_eq!((satp >> 44) & 0xFFFF, 0x123, "ASID field");
        assert_eq!(satp & ((1 << 44) - 1), 0x40, "root PPN");
    }

    #[test]
    fn allocator_rolls_over_with_a_new_epoch() {
        let mut a = AsidAllocator::with_capacity(3);
        let first: Vec<Asid> = (0..3).map(|_| a.alloc()).collect();
        assert_eq!(
            first.iter().map(|a| a.value).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(first.iter().all(|a| a.rollover == 0));
        let wrapped = a.alloc();
        assert_eq!(wrapped.value, 1, "values repeat after the wrap");
        assert_eq!(wrapped.rollover, 1, "…but under a new epoch");
        assert_ne!(first[0], wrapped, "(value, rollover) never repeats");
    }

    #[test]
    fn global_allocators_hand_out_distinct_live_values() {
        let a = ArchKind::X86_64.allocate_asid();
        let b = ArchKind::X86_64.allocate_asid();
        assert_ne!((a.value, a.rollover), (b.value, b.rollover));
        assert!(a.value >= 1 && b.value >= 1);
    }

    #[test]
    fn cost_models_price_the_tagged_switch_win() {
        let stats_tagged = TlbStats {
            switches: 100,
            ..TlbStats::default()
        };
        let stats_flushing = TlbStats {
            switches: 100,
            switch_flushes: 100,
            flushes: 100,
            ..TlbStats::default()
        };
        for arch in ARCHES {
            let m = arch.cost_model();
            assert!(
                m.modeled_cycles(&stats_tagged) < m.modeled_cycles(&stats_flushing),
                "{}: keeping tagged entries must be modeled cheaper",
                m.arch
            );
        }
        // Per-arch shape: riscv's fences are cheaper across the board.
        let x = ArchKind::X86_64.cost_model();
        let r = ArchKind::Riscv64Sv48.cost_model();
        assert!(r.full_flush < x.full_flush && r.page_invalidate < x.page_invalidate);
    }
}
