//! A deterministic, non-keyed hasher for page-granular `u64` keys.
//!
//! The std `HashMap` defaults to SipHash-1-3 with a per-process random
//! key — robust against adversarial keys, but measurably expensive on
//! the translate hot path, where every L2 TLB probe and every flat
//! snapshot-directory lookup hashes exactly one page-aligned `u64`. The
//! keys here are *trusted* (virtual page numbers minted by the kernel's
//! own allocator, never attacker-chosen), so a keyed hash buys nothing.
//!
//! [`PageHasher`] is a splitmix64-style finalizer: one xor, two
//! multiply-shift rounds. It is also *deterministic across processes*,
//! which the testkit's replay suites rely on for byte-identical traces.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`PageHasher`] into a `HashMap`.
pub(crate) type BuildPageHasher = BuildHasherDefault<PageHasher>;

/// One-shot multiply-xor hasher for `u64` keys (see module docs).
#[derive(Default, Clone)]
pub(crate) struct PageHasher(u64);

impl PageHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // splitmix64 finalizer: full avalanche over 64 bits, two
        // multiplies — an order of magnitude cheaper than SipHash for
        // single-word keys.
        let mut x = self.0 ^ v;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 keys this is built for,
        // but required for completeness): fold 8 bytes at a time.
        for chunk in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_collision_free_over_page_runs() {
        let mut m: HashMap<u64, u64, BuildPageHasher> = HashMap::default();
        for i in 0..4096u64 {
            m.insert(0x0031_0000_0000_0000 + i * 4096, i);
        }
        for i in 0..4096u64 {
            assert_eq!(m.get(&(0x0031_0000_0000_0000 + i * 4096)), Some(&i));
        }
        // Same value hashes the same in fresh hashers (no random key).
        let h = |v: u64| {
            let mut h = PageHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(0xdead_beef), h(0xdead_beef));
        assert_ne!(h(0x1000), h(0x2000));
    }
}
