//! Batched page-table mutations.
//!
//! Every re-randomization cycle used to pay one lock acquisition and one
//! whole-TLB shootdown *per page-table operation* — the worst-case §4.3
//! cost the paper works to avoid. A [`Batch`] collects the cycle's
//! mutations (`map_page`/`map_range`/`unmap_range`/`unmap_sparse`/
//! `protect_range`/`swap_frame`) and [`crate::AddressSpace::apply`]
//! executes them under **one** write-lock acquisition, publishing a
//! single *invalidation set* of page spans with one generation bump, so
//! TLBs evict only the covered entries instead of flushing wholesale
//! (MARDU-style batched, targeted invalidation).
//!
//! Application is atomic: if any operation faults, everything already
//! applied is rolled back before the error is returned and no
//! generation bump is published — callers observe either the whole
//! batch or none of it.

use crate::{Pfn, PteFlags};

/// One queued page-table mutation (see the [`Batch`] builder methods).
#[derive(Clone, Debug)]
pub(crate) enum BatchOp {
    /// Map a single page.
    Map { va: u64, pfn: Pfn, flags: PteFlags },
    /// Unmap `pages` consecutive pages; faults on the first hole.
    UnmapRange { va: u64, pages: usize },
    /// Unmap every mapped page in the range, skipping holes.
    UnmapSparse { va: u64, pages: usize },
    /// Change permissions over `pages` consecutive pages.
    ProtectRange {
        va: u64,
        pages: usize,
        flags: PteFlags,
    },
    /// Atomically swap the frame behind a mapped page.
    SwapFrame { va: u64, pfn: Pfn, flags: PteFlags },
}

/// A collected set of page-table mutations, applied in insertion order
/// by [`crate::AddressSpace::apply`] (module docs for semantics).
#[derive(Clone, Debug, Default)]
pub struct Batch {
    pub(crate) ops: Vec<BatchOp>,
    pub(crate) epoch: Option<u64>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// An empty batch carrying `epoch` as its shootdown-epoch tag when
    /// `Some` (see [`Batch::epoch`]) — the shape cycle code uses to
    /// thread an optional shared epoch through every batch it issues.
    pub fn with_epoch(epoch: Option<u64>) -> Batch {
        Batch {
            epoch,
            ..Batch::default()
        }
    }

    /// Tag this batch with a *shootdown epoch*: invalidation sets of
    /// consecutive batches carrying the same tag are coalesced into one
    /// merged invalidation-log slot, so a TLB that lagged across the
    /// whole epoch resynchronizes with a single partial invalidation
    /// pass instead of one per batch (`adelie-sched` tags every batch
    /// of same-deadline cycles this way).
    pub fn epoch(mut self, epoch: u64) -> Batch {
        self.epoch = Some(epoch);
        self
    }

    /// Queue a single-page mapping (faults if `va` is already mapped).
    pub fn map_page(&mut self, va: u64, pfn: Pfn, flags: PteFlags) -> &mut Batch {
        self.ops.push(BatchOp::Map { va, pfn, flags });
        self
    }

    /// Queue a contiguous run of frames starting at `va`.
    pub fn map_range(&mut self, va: u64, pfns: &[Pfn], flags: PteFlags) -> &mut Batch {
        for (i, &pfn) in pfns.iter().enumerate() {
            self.ops.push(BatchOp::Map {
                va: va + (i * crate::PAGE_SIZE) as u64,
                pfn,
                flags,
            });
        }
        self
    }

    /// Queue a strict unmap of `pages` consecutive pages (faults on the
    /// first hole; removed leaves land in
    /// [`BatchOutcome::removed`](crate::BatchOutcome)).
    pub fn unmap_range(&mut self, va: u64, pages: usize) -> &mut Batch {
        self.ops.push(BatchOp::UnmapRange { va, pages });
        self
    }

    /// Queue an unmap of every mapped page in `[va, va + pages)`,
    /// skipping holes — never faults (the re-randomizer's retire shape,
    /// since alignment-tail pages were never mapped).
    pub fn unmap_sparse(&mut self, va: u64, pages: usize) -> &mut Batch {
        self.ops.push(BatchOp::UnmapSparse { va, pages });
        self
    }

    /// Queue a permission change over `pages` consecutive pages.
    pub fn protect_range(&mut self, va: u64, pages: usize, flags: PteFlags) -> &mut Batch {
        self.ops.push(BatchOp::ProtectRange { va, pages, flags });
        self
    }

    /// Queue an atomic frame swap behind a mapped page (the GOT-swing
    /// primitive; the old leaf lands in
    /// [`BatchOutcome::removed`](crate::BatchOutcome)).
    pub fn swap_frame(&mut self, va: u64, pfn: Pfn, flags: PteFlags) -> &mut Batch {
        self.ops.push(BatchOp::SwapFrame { va, pfn, flags });
        self
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}
