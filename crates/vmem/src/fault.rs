//! Typed memory faults.

use std::fmt;

/// The kind of access being attempted, for permission checks.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Exec => "execute",
        };
        f.write_str(s)
    }
}

/// A memory fault raised during translation or access.
///
/// These are the observable consequences of Adelie's defences: a stale
/// (re-randomized away) code pointer raises [`Fault::Unmapped`]; a write
/// to a write-protected GOT raises [`Fault::NotWritable`]; a data page
/// executed as code raises [`Fault::NotExecutable`] (the NX bit).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Fault {
    /// No mapping exists for the address.
    Unmapped { va: u64 },
    /// The page is mapped read-only (e.g. a write-protected GOT, §4.1).
    NotWritable { va: u64 },
    /// The page is mapped no-execute (the NX defence, §2.1).
    NotExecutable { va: u64 },
    /// Attempt to map a page that is already mapped.
    AlreadyMapped { va: u64 },
    /// Address has bits above the architecture's virtual-address width.
    NonCanonical { va: u64 },
    /// Instruction fetch from an MMIO region.
    MmioExec { va: u64 },
    /// Plain-memory access helper used on an MMIO page (device access
    /// must go through the interpreter's MMIO dispatch instead).
    MmioData { va: u64 },
    /// The physical frame backing the page was freed (use-after-unmap at
    /// the physical level — indicates a reclamation bug).
    BadFrame { va: u64 },
    /// A fault injected by a test harness (`adelie-testkit`'s
    /// `FaultPlan`): never raised by the paging machinery itself, but
    /// flows through the same error paths so rollback code is exercised
    /// with a distinguishable, assertable cause.
    Injected { va: u64 },
}

impl Fault {
    /// The faulting virtual address.
    pub fn va(&self) -> u64 {
        match *self {
            Fault::Unmapped { va }
            | Fault::NotWritable { va }
            | Fault::NotExecutable { va }
            | Fault::AlreadyMapped { va }
            | Fault::NonCanonical { va }
            | Fault::MmioExec { va }
            | Fault::MmioData { va }
            | Fault::BadFrame { va }
            | Fault::Injected { va } => va,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Unmapped { va } => write!(f, "page fault: unmapped address {va:#x}"),
            Fault::NotWritable { va } => write!(f, "protection fault: write to read-only {va:#x}"),
            Fault::NotExecutable { va } => write!(f, "NX fault: execute of data page {va:#x}"),
            Fault::AlreadyMapped { va } => write!(f, "mapping conflict at {va:#x}"),
            Fault::NonCanonical { va } => write!(f, "non-canonical address {va:#x}"),
            Fault::MmioExec { va } => write!(f, "instruction fetch from MMIO {va:#x}"),
            Fault::MmioData { va } => write!(f, "plain memory access to MMIO {va:#x}"),
            Fault::BadFrame { va } => write!(f, "freed frame behind mapping {va:#x}"),
            Fault::Injected { va } => write!(f, "injected fault at {va:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_reports_va() {
        assert_eq!(Fault::Unmapped { va: 0x1000 }.va(), 0x1000);
        assert_eq!(Fault::NotWritable { va: 7 }.va(), 7);
        let msg = Fault::NotExecutable { va: 0x2000 }.to_string();
        assert!(msg.contains("0x2000"));
    }
}
