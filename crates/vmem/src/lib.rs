//! # adelie-vmem — simulated physical memory, page tables, and TLB
//!
//! Adelie's continuous re-randomization is a *page-table* technique: the
//! re-randomizer creates new virtual mappings that alias the same physical
//! frames (zero-copy movement, paper Fig. 2a), write-protects GOT pages
//! (§4.1), and unmaps stale ranges once pending calls drain (§3.4). This
//! crate provides the substrate those mechanisms run on:
//!
//! * [`PhysMem`] — a physical frame store with byte-level access,
//! * [`AddressSpace`] — a 5-level radix page table (57-bit virtual
//!   addresses, matching the paper's §6 entropy arithmetic) supporting
//!   aliased mappings, permission bits (writable / no-execute), and MMIO
//!   leaf entries that trap to device models. The read path is
//!   **lock-free**: writers publish immutable copy-on-write snapshots
//!   with one atomic pointer store, and readers pin a reclamation epoch
//!   (`adelie-reclaim` EBR/Hyaline) and walk without ever blocking on a
//!   re-randomization cycle (see [`SpacePin`] / [`SpaceReader`]),
//! * [`Tlb`] — a per-CPU translation cache with **range-based**
//!   shootdown: the space logs the page spans each generation retired
//!   and a lagging TLB evicts only covered entries, falling back to a
//!   full flush past the log horizon — so re-randomization's TLB-flush
//!   cost (paper §4.3) is both observable and *reducible*,
//! * [`Batch`] — batched page-table mutation: a whole re-randomization
//!   step applies under one lock acquisition and publishes a single
//!   invalidation set with one generation bump,
//! * typed [`Fault`]s — unmapped access, write to read-only (the GOT
//!   write-protection defence), execute of NX data.
//!
//! # Example
//!
//! ```
//! use adelie_vmem::{AddressSpace, PhysMem, PteFlags, PAGE_SIZE};
//!
//! let phys = PhysMem::new();
//! let space = AddressSpace::new();
//! let pfn = phys.alloc();
//! space.map(0xff_8000_0000_0000, pfn, PteFlags::WRITABLE)?;
//! space.write_u64(&phys, 0xff_8000_0000_0008, 0xdead_beef)?;
//! assert_eq!(space.read_u64(&phys, 0xff_8000_0000_0008)?, 0xdead_beef);
//!
//! // Zero-copy alias: map the same frame at a second address.
//! space.map(0xee_9000_0000_0000, pfn, PteFlags::WRITABLE)?;
//! assert_eq!(space.read_u64(&phys, 0xee_9000_0000_0008)?, 0xdead_beef);
//! # Ok::<(), adelie_vmem::Fault>(())
//! ```

pub mod arch;
mod batch;
mod fault;
mod hash;
mod phys;
mod space;
mod tlb;

pub use adelie_reclaim::SmrStats;
pub use arch::{Arch, ArchKind, Asid, AsidAllocator, HwPte, PteDecodeError, TlbCostModel};
pub use batch::Batch;
pub use fault::{Access, Fault};
pub use phys::{Pfn, PhysMem, PhysStats};
pub use space::{
    AddressSpace, BatchOutcome, Pte, PteFlags, PteKind, ReadPath, SpaceConfig, SpacePin,
    SpaceReader, SpaceStats, TlbSync, Translation, DEFAULT_INVAL_LOG, READER_SLOTS,
};
pub use tlb::{AsidPolicy, Tlb, TlbStats};

/// Page size in bytes (4 KiB, like x86-64).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Number of radix levels (5-level paging → 57-bit virtual addresses).
pub const LEVELS: u32 = 5;
/// Total virtual-address bits resolved by the table.
pub const VA_BITS: u32 = PAGE_SHIFT + 9 * LEVELS; // 57

/// Mask selecting the valid virtual-address bits.
pub const VA_MASK: u64 = (1u64 << VA_BITS) - 1;

/// Round `len` up to whole pages.
pub fn pages_for(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE)
}

/// Align an address down to its page base.
pub fn page_base(va: u64) -> u64 {
    va & !(PAGE_SIZE as u64 - 1)
}

/// Offset of `va` within its page.
pub fn page_offset(va: u64) -> usize {
    (va & (PAGE_SIZE as u64 - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(page_base(0x1234), 0x1000);
        assert_eq!(page_offset(0x1234), 0x234);
        assert_eq!(VA_BITS, 57);
    }
}
