//! Property tests for page-table invariants.

use adelie_vmem::{
    Access, AddressSpace, ArchKind, Asid, Batch, Fault, HwPte, Pfn, PhysMem, Pte, PteDecodeError,
    PteFlags, PteKind, ReadPath, SpaceConfig, Tlb, PAGE_SIZE, VA_MASK,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn arb_page() -> impl Strategy<Value = u64> {
    // Spread pages across the whole canonical space.
    (0u64..(VA_MASK >> 12)).prop_map(|p| p << 12)
}

fn arb_arch() -> impl Strategy<Value = ArchKind> {
    prop_oneof![Just(ArchKind::X86_64), Just(ArchKind::Riscv64Sv48)]
}

/// Every abstract leaf the space can produce: all four permission
/// shapes over either a frame (the modeled 40-bit PFN space) or an
/// MMIO leaf (20-bit device/page halves).
fn arb_pte() -> impl Strategy<Value = Pte> {
    let kind = prop_oneof![
        (0u64..(1 << 40)).prop_map(|p| PteKind::Frame(Pfn(p))),
        (0u32..(1 << 20), 0u32..(1 << 20)).prop_map(|(dev, page)| PteKind::Mmio { dev, page }),
    ];
    (kind, any::<bool>(), any::<bool>()).prop_map(|(kind, writable, executable)| {
        let mut flags = PteFlags::TEXT;
        if writable {
            flags = flags | PteFlags::WRITABLE;
        }
        if !executable {
            flags = flags | PteFlags::NX;
        }
        Pte { kind, flags }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A model-based test: a HashMap mirror of the radix table must
    /// agree with it after arbitrary map/unmap/protect sequences.
    #[test]
    fn matches_model(ops in proptest::collection::vec(
        (arb_page(), 0u8..3), 1..64)) {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let mut model: HashMap<u64, PteFlags> = HashMap::new();
        for (va, op) in ops {
            match op {
                0 => {
                    let outcome = space.map(va, phys.alloc(), PteFlags::DATA);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(va) {
                        prop_assert!(outcome.is_ok());
                        e.insert(PteFlags::DATA);
                    } else {
                        prop_assert_eq!(outcome, Err(Fault::AlreadyMapped { va }));
                    }
                }
                1 => {
                    let outcome = space.unmap(va);
                    prop_assert_eq!(outcome.is_ok(), model.remove(&va).is_some());
                }
                _ => {
                    let outcome = space.protect(va, PteFlags::RO_DATA);
                    if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(va) {
                        prop_assert!(outcome.is_ok());
                        e.insert(PteFlags::RO_DATA);
                    } else {
                        prop_assert!(outcome.is_err());
                    }
                }
            }
        }
        // Final agreement on every address the model knows about.
        for (&va, &flags) in &model {
            let t = space.translate(va, Access::Read);
            prop_assert!(t.is_ok(), "model says {va:#x} mapped");
            prop_assert_eq!(t.unwrap().pte.flags, flags);
        }
    }

    /// Bytes written through one alias read back through another.
    #[test]
    fn aliases_are_coherent(a in arb_page(), b in arb_page(), val in any::<u64>()) {
        prop_assume!(a != b);
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(a, pfn, PteFlags::DATA).unwrap();
        space.map(b, pfn, PteFlags::DATA).unwrap();
        space.write_u64(&phys, a + 40, val).unwrap();
        prop_assert_eq!(space.read_u64(&phys, b + 40).unwrap(), val);
    }

    /// Cross-page reads stitch bytes correctly at every offset.
    #[test]
    fn cross_page_reads(off in 1usize..8) {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let base = 0x42u64 << 13;
        space.map_range(base, &phys.alloc_n(2), PteFlags::DATA).unwrap();
        let va = base + PAGE_SIZE as u64 - off as u64;
        space.write_u64(&phys, va, 0x1122_3344_5566_7788).unwrap();
        prop_assert_eq!(space.read_u64(&phys, va).unwrap(), 0x1122_3344_5566_7788);
    }

    /// The shootdown-semantics contract: after **any** interleaving of
    /// batched ops, no TLB — whether it resynchronizes on every batch
    /// or lags several batches behind — ever serves a translation the
    /// space has retired, and batch failures are fully atomic (the
    /// space still matches the model exactly).
    #[test]
    fn batched_ops_never_serve_stale_translations(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..4, 0usize..24, 1usize..5), 1..6),
            1..25,
        ),
        small_log in any::<bool>(),
        small_tlb in any::<bool>(),
    ) {
        const PAGES: usize = 24;
        let base = 0x0031_0000_0000_0000u64;
        let page = |i: usize| base + (i * PAGE_SIZE) as u64;
        let phys = PhysMem::new();
        // A small log forces full-flush fallbacks; a small TLB forces
        // capacity evictions — both paths must stay stale-free.
        let space = AddressSpace::with_inval_log(if small_log { 2 } else { 64 });
        let mut eager = Tlb::new();
        let mut laggard = if small_tlb { Tlb::with_capacity(4) } else { Tlb::new() };
        let mut model: HashMap<u64, Pte> = HashMap::new();
        for (round, ops) in batches.into_iter().enumerate() {
            let mut batch = Batch::new();
            let mut next: HashMap<u64, Pte> = model.clone();
            let mut ok = true;
            for (op, start, len) in ops {
                let start = start % PAGES;
                let len = len.min(PAGES - start);
                match op {
                    0 => {
                        let pfn = phys.alloc();
                        batch.map_page(page(start), pfn, PteFlags::DATA);
                        let pte = Pte { kind: PteKind::Frame(pfn), flags: PteFlags::DATA };
                        ok &= next.insert(page(start), pte).is_none();
                    }
                    1 => {
                        batch.unmap_sparse(page(start), len);
                        for i in start..start + len {
                            next.remove(&page(i));
                        }
                    }
                    2 => {
                        batch.protect_range(page(start), len, PteFlags::RO_DATA);
                        for i in start..start + len {
                            match next.get_mut(&page(i)) {
                                Some(pte) => pte.flags = PteFlags::RO_DATA,
                                None => ok = false,
                            }
                        }
                    }
                    _ => {
                        let pfn = phys.alloc();
                        let pte = Pte { kind: PteKind::Frame(pfn), flags: PteFlags::DATA };
                        batch.swap_frame(page(start), pfn, PteFlags::DATA);
                        ok &= next.insert(page(start), pte).is_some();
                    }
                }
            }
            match space.apply(batch) {
                Ok(_) => {
                    prop_assert!(ok, "batch succeeded but the model predicted a fault");
                    model = next;
                }
                Err(_) => prop_assert!(!ok, "batch failed but the model predicted success"),
            }
            // Whatever the outcome, the space agrees with the model and
            // the eagerly-synced TLB never serves retired state.
            for i in 0..PAGES {
                let va = page(i);
                let cached = eager.lookup(va, &space);
                match model.get(&va) {
                    Some(&pte) => {
                        if let Some(hit) = cached {
                            prop_assert_eq!(hit, pte, "TLB served a stale PTE for {:#x}", va);
                        } else {
                            let t = space.translate(va, Access::Read);
                            prop_assert!(t.is_ok(), "model says {:#x} is mapped", va);
                            eager.insert(&t.unwrap());
                        }
                    }
                    None => {
                        prop_assert!(
                            cached.is_none(),
                            "TLB served a retired translation for {:#x}", va
                        );
                        prop_assert!(space.translate(va, Access::Read).is_err());
                    }
                }
            }
            // The laggard syncs only every third batch — it crosses
            // multiple invalidation sets (or the log horizon) at once.
            if round % 3 == 2 {
                for i in 0..PAGES {
                    let va = page(i);
                    let cached = laggard.lookup(va, &space);
                    match model.get(&va) {
                        Some(&pte) => {
                            if let Some(hit) = cached {
                                prop_assert_eq!(hit, pte, "laggard served stale PTE at {:#x}", va);
                            } else if let Ok(t) = space.translate(va, Access::Read) {
                                laggard.insert(&t);
                            }
                        }
                        None => prop_assert!(
                            cached.is_none(),
                            "laggard served a retired translation for {:#x}", va
                        ),
                    }
                }
            }
        }
    }

    /// Snapshot-lifetime property: concurrent readers interleaved with
    /// batch publishes and snapshot reclamation never observe a retired
    /// root or a half-applied batch.
    ///
    /// Layout: 16 *anchor* pages that are never touched and 16 *toggle*
    /// pages whose frames flip between two known values, one
    /// `swap_frame` batch per flip (plus scratch map/unmap churn to
    /// force deep path copies). All 32 pages share radix interior
    /// nodes, so a torn copy-on-write publish — a snapshot missing
    /// sibling entries — would surface as an anchor transiently
    /// unmapping, and a use-after-retire as a walk of freed nodes. The
    /// readers hammer `translate` (and a private TLB) while the writer
    /// publishes and the reclaimer frees retired roots underneath them;
    /// any observation outside {anchor frame} / {old frame, new frame}
    /// is a violation.
    #[test]
    fn concurrent_readers_never_observe_torn_or_retired_state(
        flips in proptest::collection::vec((0usize..16, any::<bool>()), 16..48),
        locked_ablation in any::<bool>(),
    ) {
        const N: usize = 16;
        let base = 0x0042_0000_0000_0000u64;
        let anchor_va = move |i: usize| base + (i * PAGE_SIZE) as u64;
        let toggle_va = move |i: usize| base + ((N + i) * PAGE_SIZE) as u64;
        let scratch_va = base + (3 * N * PAGE_SIZE) as u64;

        let phys = PhysMem::new();
        let space = Arc::new(AddressSpace::with_space_config(SpaceConfig {
            read_path: if locked_ablation { ReadPath::Locked } else { ReadPath::Snapshot },
            ..SpaceConfig::new()
        }));
        let anchors: Vec<_> = (0..N).map(|_| phys.alloc()).collect();
        let v0: Vec<_> = (0..N).map(|_| phys.alloc()).collect();
        let v1: Vec<_> = (0..N).map(|_| phys.alloc()).collect();
        for i in 0..N {
            space.map(anchor_va(i), anchors[i], PteFlags::DATA).unwrap();
            space.map(toggle_va(i), v0[i], PteFlags::DATA).unwrap();
        }

        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let space = space.clone();
            let stop = stop.clone();
            let violations = violations.clone();
            let anchors = anchors.clone();
            let (v0, v1) = (v0.clone(), v1.clone());
            readers.push(std::thread::spawn(move || {
                let mut tlb = Tlb::new();
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..N {
                        match space.translate(anchor_va(i), Access::Read) {
                            Ok(t) if t.pte.kind == PteKind::Frame(anchors[i]) => {}
                            other => {
                                let _ = other; // anchor torn or retired
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        match space.translate(toggle_va(i), Access::Read) {
                            Ok(t)
                                if t.pte.kind == PteKind::Frame(v0[i])
                                    || t.pte.kind == PteKind::Frame(v1[i]) => {}
                            other => {
                                let _ = other; // invalid frame => torn walk
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // A TLB following the lock-free invalidation
                        // ring must never serve anything else either.
                        if let Some(pte) = tlb.lookup(anchor_va(i), &space) {
                            if pte.kind != PteKind::Frame(anchors[i]) {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if let Ok(t) = space.translate(anchor_va(i), Access::Read) {
                            tlb.insert(&t);
                        }
                    }
                }
            }));
        }

        // Writer: one swap_frame batch per flip, with scratch map/unmap
        // churn and periodic reclamation flushes racing the readers.
        for (round, (i, to_v1)) in flips.iter().enumerate() {
            let frame = if *to_v1 { v1[*i] } else { v0[*i] };
            let mut batch = Batch::new();
            batch.swap_frame(toggle_va(*i), frame, PteFlags::DATA);
            batch.map_page(scratch_va, phys.alloc(), PteFlags::DATA);
            space.apply(batch).expect("writer batch failed");
            space.unmap(scratch_va).unwrap();
            if round % 5 == 4 {
                space.flush_snapshots();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        prop_assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "readers observed torn or retired page-table state"
        );

        // Reclaim converges once readers quiesce: every retired root
        // (and replaced log slot) is freed, none early.
        space.flush_snapshots();
        let smr = space.snapshot_smr();
        prop_assert_eq!(smr.delta(), 0, "snapshot SMR leak at quiescence");
        let stats = space.stats();
        prop_assert_eq!(stats.snapshots_reclaimed, stats.snapshot_publishes);
    }

    /// Micro-TLB coherence (DESIGN.md §14): drive the kernel's lookup
    /// protocol — [`Tlb::try_lookup_current`] fast path with
    /// [`Tlb::lookup_pinned`] fallback, exactly as `Vm::translate` does
    /// — against a HashMap mirror under arbitrary interleavings of
    /// batch publishes, unmaps, and space switches. Three hazards are
    /// exercised by construction:
    ///
    /// 1. **Stale hit after publish**: a publish advances the space's
    ///    generation, so lazily-retained micro entries (tagged with the
    ///    old cursor) must never serve again — any hit must equal the
    ///    model's current value.
    /// 2. **Stale generation read** (the torn-read analog): a reader
    ///    that loaded `space.generation()` *before* a publish and
    ///    probes with it *after* must get an answer consistent with the
    ///    pre-publish state, or a refusal — never post-publish state
    ///    under a pre-publish tag, never a mix.
    /// 3. **Cross-space / cross-ASID tag reuse**: entries survive space
    ///    switches under `(asid, generation)` tags (DESIGN.md §15), so
    ///    a numerically equal generation from another space — or the
    ///    *same forced ASID value* on two live spaces — could collide;
    ///    the lazy tag check plus the defensive collision flush must
    ///    make a cross-space serve impossible. Spaces 0 and 2 share a
    ///    forced ASID value to exercise exactly that reuse, while
    ///    space 1 keeps an allocator-assigned tag so ordinary tagged
    ///    retention is interleaved with the collision path.
    #[test]
    fn micro_tlb_serves_only_generation_consistent_translations(
        ops in proptest::collection::vec((0u8..8, 0usize..12), 1..80),
    ) {
        const PAGES: usize = 12;
        let base = 0x0051_0000_0000_0000u64;
        let page = |i: usize| base + ((i % PAGES) * PAGE_SIZE) as u64;
        let phys = PhysMem::new();
        let forced = |value| AddressSpace::with_space_config(SpaceConfig {
            asid: Some(Asid { value, rollover: 0 }),
            ..SpaceConfig::new()
        });
        let spaces = [forced(7), AddressSpace::new(), forced(7)];
        let mut models: [HashMap<u64, Pte>; 3] =
            [HashMap::new(), HashMap::new(), HashMap::new()];
        let mut cur = 0usize; // which space the simulated CPU runs in
        let mut bound = 0u64; // space id the TLB is bound to (0 = none)
        let mut tlb = Tlb::new();

        // One publish in `space`: swap the frame of `va` if mapped,
        // else map it — either way the generation advances.
        let publish = |space: &AddressSpace, model: &mut HashMap<u64, Pte>, va: u64| {
            let pfn = phys.alloc();
            let pte = Pte { kind: PteKind::Frame(pfn), flags: PteFlags::DATA };
            let mut batch = Batch::new();
            if model.contains_key(&va) {
                batch.swap_frame(va, pfn, PteFlags::DATA);
            } else {
                batch.map_page(va, pfn, PteFlags::DATA);
            }
            space.apply(batch).expect("publish batch failed");
            model.insert(va, pte);
        };

        for (op, i) in ops {
            let space = &spaces[cur];
            let model = &mut models[cur];
            let va = page(i);
            match op {
                // Lookup via the exec.rs protocol.
                0..=3 => {
                    // Fast path is only defined for the bound space
                    // (`try_lookup_current` carries no space identity).
                    let cached = if space.id() == bound {
                        tlb.try_lookup_current(va, space.generation())
                    } else {
                        None
                    };
                    let got = match cached {
                        Some(hit) => hit,
                        None => {
                            let mut reader = space.reader();
                            let pin = reader.pin();
                            let got = tlb.lookup_pinned(va, &pin);
                            drop(pin);
                            bound = space.id();
                            got
                        }
                    };
                    match (got, model.get(&va)) {
                        (Some(pte), Some(&want)) => prop_assert_eq!(
                            pte, want,
                            "TLB hit disagrees with the model at {:#x}", va
                        ),
                        (Some(_), None) => prop_assert!(
                            false,
                            "stale hit: {va:#x} was unmapped by a publish \
                             but the TLB still served it"
                        ),
                        (None, _) => {
                            // Miss: walk and refill, as the kernel does.
                            match space.translate(va, Access::Read) {
                                Ok(t) => {
                                    prop_assert!(model.contains_key(&va));
                                    tlb.insert(&t);
                                }
                                Err(_) => prop_assert!(!model.contains_key(&va)),
                            }
                        }
                    }
                }
                // Publish (map or swap_frame): generation advances, all
                // micro entries tagged before it become unreachable.
                4 => publish(space, model, va),
                // Unmap: the retired translation must never serve again.
                5 => {
                    if model.remove(&va).is_some() {
                        let mut batch = Batch::new();
                        batch.unmap_sparse(va, 1);
                        space.apply(batch).expect("unmap batch failed");
                    }
                }
                // Stale generation read: capture the generation, publish
                // underneath it, then probe with the captured value.
                6 => {
                    if space.id() != bound {
                        continue; // fast path undefined across spaces
                    }
                    let stale_gen = space.generation();
                    let before = model.clone();
                    publish(space, model, va);
                    match tlb.try_lookup_current(va, stale_gen) {
                        // The TLB had already synced past the captured
                        // generation, or the page isn't cached: fine.
                        None | Some(None) => {}
                        // An answer must be the *pre-publish* state —
                        // post-publish state under a pre-publish tag
                        // would be a torn (mixed-generation) read.
                        Some(Some(pte)) => prop_assert_eq!(
                            Some(&pte), before.get(&va),
                            "probe at stale generation {} mixed in \
                             post-publish state at {:#x}", stale_gen, va
                        ),
                    }
                }
                // Space switch (fleet-style churn): the next pinned
                // lookup re-binds the TLB — parking the outgoing ASID's
                // cursor and keeping its entries tagged, except when the
                // incoming space collides on a forced ASID value (0→2
                // or 2→0 here), which must flush that one tag.
                _ => cur = (cur + 1) % spaces.len(),
            }
        }
        // Dead-reckoning check: every model entry is still reachable
        // through the protocol in its own space.
        for (s, model) in spaces.iter().zip(&models) {
            for (&va, &want) in model {
                prop_assert_eq!(s.translate(va, Access::Read).unwrap().pte, want);
            }
        }
    }

    /// Hardware PTE round trip (both ISA backends): any abstract leaf
    /// encodes to a bit pattern that decodes back to exactly itself,
    /// the encoding is present + reserved-clean by construction, and
    /// the two backends' layouts genuinely differ (an x86 encoding is
    /// not a riscv one).
    #[test]
    fn hw_pte_roundtrips_on_both_arches(pte in arb_pte(), arch in arb_arch()) {
        let hw = arch.encode(pte);
        prop_assert_eq!(arch.decode(hw), Ok(pte), "decode(encode(p)) != p on {}", arch.name());
        // Canonical re-encode is a fixed point.
        prop_assert_eq!(arch.encode(arch.decode(hw).unwrap()), hw);
    }

    /// Malformed encodings are rejected, never mis-decoded: a cleared
    /// valid bit, garbage in the reserved field, and (riscv) the
    /// architecturally-reserved W-without-R and non-leaf shapes each
    /// produce their specific error. And for *arbitrary* bit patterns,
    /// anything decode does accept re-encodes to a pattern that decodes
    /// to the same leaf (decode is a function of the accepted set, not
    /// of the junk bits around it).
    #[test]
    fn malformed_hw_ptes_are_rejected(
        pte in arb_pte(),
        arch in arb_arch(),
        junk in any::<u64>(),
    ) {
        let bits = arch.encode(pte).bits();
        // Valid bit off → NotPresent, whatever else the pattern says.
        prop_assert_eq!(
            arch.decode(HwPte::from_bits(bits & !1)),
            Err(PteDecodeError::NotPresent)
        );
        // Reserved-field garbage → ReservedBits. (Bit layouts differ:
        // x86 reserves 52..63, riscv Sv48 reserves 54..64.)
        let reserved_bit = match arch {
            ArchKind::X86_64 => 1u64 << 55,
            ArchKind::Riscv64Sv48 => 1u64 << 60,
        };
        prop_assert_eq!(
            arch.decode(HwPte::from_bits(bits | reserved_bit)),
            Err(PteDecodeError::ReservedBits)
        );
        if arch == ArchKind::Riscv64Sv48 {
            // W-without-R is architecturally reserved in the privileged
            // spec; V with RWX=000 is a pointer to the next level, not
            // a leaf.
            prop_assert_eq!(
                arch.decode(HwPte::from_bits(0b0101)),
                Err(PteDecodeError::WriteWithoutRead)
            );
            prop_assert_eq!(
                arch.decode(HwPte::from_bits(0b0001)),
                Err(PteDecodeError::NonLeaf)
            );
        }
        // Fuzz the accepted set: decode(junk) = Ok(p) ⇒ re-encoding p
        // canonically must decode to p again. riscv's PPN field is 44
        // bits but the model's frame space is 40 (pack_kind asserts
        // that), so the top PPN bits are masked off the fuzz input —
        // they are representable on hardware but not in this simulator.
        let junk = match arch {
            ArchKind::X86_64 => junk,
            ArchKind::Riscv64Sv48 => junk & !(0xFu64 << 50),
        };
        if let Ok(p) = arch.decode(HwPte::from_bits(junk)) {
            prop_assert_eq!(arch.decode(arch.encode(p)), Ok(p));
        }
    }

    /// Permissions are enforced for every flag combination.
    #[test]
    fn permission_matrix(writable in any::<bool>(), executable in any::<bool>()) {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let mut flags = PteFlags::TEXT;
        if writable { flags = flags | PteFlags::WRITABLE; }
        if !executable { flags = flags | PteFlags::NX; }
        let va = 0x77u64 << 14;
        space.map(va, phys.alloc(), flags).unwrap();
        prop_assert!(space.translate(va, Access::Read).is_ok());
        prop_assert_eq!(space.translate(va, Access::Write).is_ok(), writable);
        prop_assert_eq!(space.translate(va, Access::Exec).is_ok(), executable);
    }
}
