//! Property tests for page-table invariants.

use adelie_vmem::{Access, AddressSpace, Fault, PhysMem, PteFlags, PAGE_SIZE, VA_MASK};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_page() -> impl Strategy<Value = u64> {
    // Spread pages across the whole canonical space.
    (0u64..(VA_MASK >> 12)).prop_map(|p| p << 12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A model-based test: a HashMap mirror of the radix table must
    /// agree with it after arbitrary map/unmap/protect sequences.
    #[test]
    fn matches_model(ops in proptest::collection::vec(
        (arb_page(), 0u8..3), 1..64)) {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let mut model: HashMap<u64, PteFlags> = HashMap::new();
        for (va, op) in ops {
            match op {
                0 => {
                    let outcome = space.map(va, phys.alloc(), PteFlags::DATA);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(va) {
                        prop_assert!(outcome.is_ok());
                        e.insert(PteFlags::DATA);
                    } else {
                        prop_assert_eq!(outcome, Err(Fault::AlreadyMapped { va }));
                    }
                }
                1 => {
                    let outcome = space.unmap(va);
                    prop_assert_eq!(outcome.is_ok(), model.remove(&va).is_some());
                }
                _ => {
                    let outcome = space.protect(va, PteFlags::RO_DATA);
                    if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(va) {
                        prop_assert!(outcome.is_ok());
                        e.insert(PteFlags::RO_DATA);
                    } else {
                        prop_assert!(outcome.is_err());
                    }
                }
            }
        }
        // Final agreement on every address the model knows about.
        for (&va, &flags) in &model {
            let t = space.translate(va, Access::Read);
            prop_assert!(t.is_ok(), "model says {va:#x} mapped");
            prop_assert_eq!(t.unwrap().pte.flags, flags);
        }
    }

    /// Bytes written through one alias read back through another.
    #[test]
    fn aliases_are_coherent(a in arb_page(), b in arb_page(), val in any::<u64>()) {
        prop_assume!(a != b);
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let pfn = phys.alloc();
        space.map(a, pfn, PteFlags::DATA).unwrap();
        space.map(b, pfn, PteFlags::DATA).unwrap();
        space.write_u64(&phys, a + 40, val).unwrap();
        prop_assert_eq!(space.read_u64(&phys, b + 40).unwrap(), val);
    }

    /// Cross-page reads stitch bytes correctly at every offset.
    #[test]
    fn cross_page_reads(off in 1usize..8) {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let base = 0x42u64 << 13;
        space.map_range(base, &phys.alloc_n(2), PteFlags::DATA).unwrap();
        let va = base + PAGE_SIZE as u64 - off as u64;
        space.write_u64(&phys, va, 0x1122_3344_5566_7788).unwrap();
        prop_assert_eq!(space.read_u64(&phys, va).unwrap(), 0x1122_3344_5566_7788);
    }

    /// Permissions are enforced for every flag combination.
    #[test]
    fn permission_matrix(writable in any::<bool>(), executable in any::<bool>()) {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let mut flags = PteFlags::TEXT;
        if writable { flags = flags | PteFlags::WRITABLE; }
        if !executable { flags = flags | PteFlags::NX; }
        let va = 0x77u64 << 14;
        space.map(va, phys.alloc(), flags).unwrap();
        prop_assert!(space.translate(va, Access::Read).is_ok());
        prop_assert_eq!(space.translate(va, Access::Write).is_ok(), writable);
        prop_assert_eq!(space.translate(va, Access::Exec).is_ok(), executable);
    }
}
