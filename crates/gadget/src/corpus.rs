//! Synthetic module corpus generator.
//!
//! The paper evaluates gadget distribution over Ubuntu 18.04's ~5,300
//! modules (Fig. 10, Table 2). We have seven hand-written drivers, so
//! the corpus is filled out with *synthetic* modules: seeded-random
//! plugin IR with a realistic instruction mix, lowered through the same
//! plugin/assembler pipeline as the real drivers. DESIGN.md records the
//! substitution; Table 2's and Fig. 10's shapes (what fraction of
//! modules carry a chain; where gadgets live) are what carries over.

use adelie_isa::{AluOp, Cond, Insn, Mem, Reg};
use adelie_obj::{ObjectFile, SectionKind};
use adelie_plugin::{transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec, TransformOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Registers the generator uses for scratch values (no rsp/rbp games).
const SCRATCH: [Reg; 8] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
];

fn reg(rng: &mut SmallRng) -> Reg {
    SCRATCH[rng.gen_range(0..SCRATCH.len())]
}

/// Emit one random "statement" of IR.
fn statement(
    rng: &mut SmallRng,
    body: &mut Vec<MOp>,
    fn_idx: usize,
    n_funcs: usize,
    spec_name: &str,
) {
    let r1 = reg(rng);
    let r2 = reg(rng);
    match rng.gen_range(0..100) {
        0..=24 => body.push(MOp::Insn(Insn::MovRR { dst: r1, src: r2 })),
        25..=39 => body.push(MOp::Insn(Insn::AluImm {
            op: [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or][rng.gen_range(0..4)],
            dst: r1,
            imm: rng.gen_range(-4096..4096),
        })),
        40..=54 => body.push(MOp::Insn(Insn::Alu {
            op: [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Cmp][rng.gen_range(0..4)],
            dst: r1,
            src: r2,
        })),
        55..=64 => body.push(MOp::Insn(Insn::MovImm64(r1, rng.gen()))),
        65..=72 => {
            // Structure-field access pattern.
            body.push(MOp::Insn(Insn::MovLoad {
                dst: r1,
                src: Mem::base_disp(r2, rng.gen_range(0..32) * 8),
            }));
        }
        73..=78 => {
            body.push(MOp::Insn(Insn::MovStore {
                dst: Mem::base_disp(r1, rng.gen_range(0..32) * 8),
                src: r2,
            }));
        }
        79..=84 => {
            // Call a kernel API the real modules also import.
            let api = ["kmalloc", "kfree", "printk", "memcpy", "jiffies"][rng.gen_range(0..5)];
            body.push(MOp::CallKernel(api.into()));
        }
        85..=89 if n_funcs > 1 => {
            let callee = rng.gen_range(0..n_funcs);
            if callee != fn_idx {
                body.push(MOp::CallLocal(format!("{}_fn_{callee}", spec_name)));
            }
        }
        90..=94 => body.push(MOp::Insn(Insn::ShlImm(r1, rng.gen_range(1..8)))),
        _ => body.push(MOp::Insn(Insn::Imul { dst: r1, src: r2 })),
    }
}

/// Weighted epilogue register mix: compiled code overwhelmingly
/// restores callee-saved registers; `pop rdi`/`pop rsi`/`pop rdx`
/// appear rarely (custom conventions, mis-aligned decode) — which is
/// exactly what makes ~20% of the paper's modules chain-incomplete
/// (Table 2).
fn epilogue_reg(rng: &mut SmallRng) -> Reg {
    match rng.gen_range(0..100) {
        0..=29 => Reg::Rbx,
        30..=54 => Reg::Rbp,
        55..=69 => Reg::R12,
        70..=84 => Reg::R15,
        85..=91 => Reg::Rdi,
        92..=96 => Reg::Rsi,
        _ => Reg::Rdx,
    }
}

fn rng_clone(rng: &mut SmallRng) -> SmallRng {
    SmallRng::seed_from_u64(rng.gen())
}

fn emit_epilogue(rng: &mut SmallRng, body: &mut Vec<MOp>) {
    // Restore 0–3 registers before returning.
    let n = rng.gen_range(0..4);
    for _ in 0..n {
        let r = epilogue_reg(rng);
        body.push(MOp::Insn(Insn::Pop(r)));
    }
}

/// Generate a synthetic module of roughly `target_text_bytes` of code.
///
/// Function 0 is exported (modules expose at least one entry point);
/// a random subset of the rest is too.
pub fn synth_module(name: &str, target_text_bytes: usize, seed: u64) -> ModuleSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spec = ModuleSpec::new(name);
    // ~40 bytes/statement: pick function count and lengths to hit target.
    let n_funcs = (target_text_bytes / 400).clamp(2, 64);
    let stmts_per_fn = (target_text_bytes / n_funcs / 10).max(4);
    for f in 0..n_funcs {
        let mut body = Vec::new();
        let mut label = 0usize;
        for s in 0..stmts_per_fn {
            statement(&mut rng, &mut body, f, n_funcs, name);
            // Occasional branch diamond.
            if rng.gen_bool(0.08) {
                let l = format!("l{label}");
                label += 1;
                body.push(MOp::Insn(Insn::Test(reg(&mut rng), reg(&mut rng))));
                body.push(MOp::Jcc(
                    [Cond::E, Cond::Ne, Cond::L, Cond::G][rng.gen_range(0..4)],
                    l.clone(),
                ));
                statement(&mut rng, &mut body, f, n_funcs, name);
                body.push(MOp::Label(l));
            }
            // Early return sometimes (multiple rets per function, like
            // real C).
            if s > 2 && rng.gen_bool(0.05) {
                emit_epilogue(&mut rng_clone(&mut rng), &mut body);
                body.push(MOp::Ret);
            }
        }
        emit_epilogue(&mut rng_clone(&mut rng), &mut body);
        body.push(MOp::Ret);
        let exported = f == 0 || rng.gen_bool(0.3);
        spec.funcs.push(FuncSpec {
            name: format!("{name}_fn_{f}"),
            exported,
            is_static: !exported,
            body,
        });
    }
    // Some data: a pointer table and a buffer.
    spec.data.push(DataSpec {
        name: format!("{name}_ops_table"),
        readonly: false,
        init: DataInit::PtrTable(vec![format!("{name}_fn_0")]),
    });
    spec.data.push(DataSpec {
        name: format!("{name}_scratch_buf"),
        readonly: false,
        init: DataInit::Zero(rng.gen_range(64..2048)),
    });
    spec.init = None; // corpus modules are scanned, not executed
    spec
}

/// A corpus entry: the module name, its declared size class, and its
/// transformed objects under both code models.
pub struct CorpusModule {
    /// Module name.
    pub name: String,
    /// The non-PIC (vanilla) object.
    pub vanilla: ObjectFile,
    /// The PIC object.
    pub pic: ObjectFile,
}

impl CorpusModule {
    /// Concatenated code bytes of an object (what the scanner sees).
    pub fn code_bytes(obj: &ObjectFile) -> Vec<u8> {
        let mut v = Vec::new();
        for kind in [SectionKind::Text, SectionKind::FixedText] {
            if let Some(s) = obj.section(kind) {
                v.extend_from_slice(&s.bytes);
            }
        }
        v
    }
}

/// Generate `count` corpus modules with text sizes log-spaced over
/// `min_bytes..max_bytes` (Fig. 5a spans ~4–100 KB).
pub fn generate_corpus(
    count: usize,
    min_bytes: usize,
    max_bytes: usize,
    seed: u64,
) -> Vec<CorpusModule> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        // Log-uniform size draw, mimicking the long-tailed real module
        // size distribution.
        let lo = (min_bytes as f64).ln();
        let hi = (max_bytes as f64).ln();
        let size = rng.gen_range(lo..hi).exp() as usize;
        let spec = synth_module(&format!("synth{i:04}"), size, rng.gen());
        let vanilla =
            transform(&spec, &TransformOptions::vanilla(false)).expect("vanilla transform");
        let pic = transform(&spec, &TransformOptions::pic(true)).expect("pic transform");
        out.push(CorpusModule {
            name: spec.name.clone(),
            vanilla,
            pic,
        });
    }
    out
}

/// Generate a synthetic "core kernel" text blob of roughly `bytes`
/// (Fig. 10 scans the kernel image too; only ~15 % of all gadgets live
/// there).
pub fn synth_kernel_text(bytes: usize, seed: u64) -> Vec<u8> {
    let spec = synth_module("vmlinux", bytes, seed);
    let obj = transform(&spec, &TransformOptions::vanilla(false)).expect("kernel transform");
    CorpusModule::code_bytes(&obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_roughly_track_target() {
        for target in [4096usize, 16384, 65536] {
            let spec = synth_module("m", target, 7);
            let obj = transform(&spec, &TransformOptions::vanilla(false)).unwrap();
            let text = obj.section(SectionKind::Text).unwrap().size;
            assert!(
                text > target / 4 && text < target * 4,
                "target {target} produced {text}"
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = synth_module("m", 8192, 42);
        let b = synth_module("m", 8192, 42);
        let oa = transform(&a, &TransformOptions::pic(true)).unwrap();
        let ob = transform(&b, &TransformOptions::pic(true)).unwrap();
        assert_eq!(
            oa.section(SectionKind::Text).unwrap().bytes,
            ob.section(SectionKind::Text).unwrap().bytes
        );
    }

    #[test]
    fn corpus_has_both_flavors() {
        let corpus = generate_corpus(4, 2048, 8192, 1);
        assert_eq!(corpus.len(), 4);
        for m in &corpus {
            assert!(!CorpusModule::code_bytes(&m.vanilla).is_empty());
            assert!(!CorpusModule::code_bytes(&m.pic).is_empty());
            // PIC objects carry GOT relocations; vanilla must not.
            assert!(m.pic.reloc_histogram().keys().any(
                |k| *k == adelie_obj::RelocKind::Plt32 || *k == adelie_obj::RelocKind::GotPcRel
            ));
        }
    }

    /// The attack surface the scanner measures must be invariant under
    /// ELF ingestion: round-tripping a corpus object through
    /// `adelie_elf::emit` → `parse` may not add, drop, or move a single
    /// gadget relative to the direct-build text.
    #[test]
    fn elf_ingested_corpus_text_scans_identically() {
        for m in generate_corpus(4, 2048, 16384, 0xE1F) {
            for (flavor, obj) in [("vanilla", &m.vanilla), ("pic", &m.pic)] {
                let round = adelie_elf::parse(&adelie_elf::emit(obj))
                    .unwrap_or_else(|e| panic!("{} {flavor}: {e}", m.name));
                let direct = CorpusModule::code_bytes(obj);
                let ingested = CorpusModule::code_bytes(&round);
                assert_eq!(
                    direct, ingested,
                    "{} {flavor}: text bytes must survive ELF ingestion",
                    m.name
                );
                let ga = crate::scan::scan(&direct);
                let gb = crate::scan::scan(&ingested);
                assert!(
                    !ga.is_empty(),
                    "{} {flavor}: corpus text has gadgets",
                    m.name
                );
                assert_eq!(
                    ga, gb,
                    "{} {flavor}: gadget scan must match across ingestion paths",
                    m.name
                );
                assert_eq!(
                    crate::classify::histogram(&ga),
                    crate::classify::histogram(&gb)
                );
            }
        }
    }

    #[test]
    fn synthetic_modules_contain_gadgets() {
        let spec = synth_module("g", 32768, 3);
        let obj = transform(&spec, &TransformOptions::vanilla(false)).unwrap();
        let bytes = CorpusModule::code_bytes(&obj);
        let gadgets = crate::scan::scan(&bytes);
        assert!(
            gadgets.len() > 50,
            "a 32 KB module should brim with gadgets, found {}",
            gadgets.len()
        );
    }
}
