//! Gadget classification by instruction type (paper Fig. 10 buckets).

use crate::scan::Gadget;
use adelie_isa::{AluOp, Insn};
use std::collections::BTreeMap;
use std::fmt;

/// The Fig. 10 gadget classes ("classified according to the type of
/// their instructions" — keyed on the first instruction, the one the
/// attacker's chain lands on).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GadgetClass {
    /// Register/memory moves.
    Mov,
    /// Stack pops (the argument-loading workhorses).
    Pop,
    /// Stack pushes.
    Push,
    /// add/sub arithmetic.
    AddSub,
    /// xor/and/or logic.
    Logic,
    /// Comparisons and tests.
    Cmp,
    /// Address computation.
    Lea,
    /// Shifts and multiplies.
    Shift,
    /// Direct or indirect calls.
    Call,
    /// Jumps.
    Jmp,
    /// A bare return.
    Ret,
    /// Everything else (nops, fences, …).
    Other,
}

impl GadgetClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            GadgetClass::Mov => "mov",
            GadgetClass::Pop => "pop",
            GadgetClass::Push => "push",
            GadgetClass::AddSub => "add/sub",
            GadgetClass::Logic => "xor/and/or",
            GadgetClass::Cmp => "cmp/test",
            GadgetClass::Lea => "lea",
            GadgetClass::Shift => "shift/mul",
            GadgetClass::Call => "call",
            GadgetClass::Jmp => "jmp",
            GadgetClass::Ret => "ret",
            GadgetClass::Other => "other",
        }
    }

    /// All classes in display order.
    pub const ALL: [GadgetClass; 12] = [
        GadgetClass::Mov,
        GadgetClass::Pop,
        GadgetClass::Push,
        GadgetClass::AddSub,
        GadgetClass::Logic,
        GadgetClass::Cmp,
        GadgetClass::Lea,
        GadgetClass::Shift,
        GadgetClass::Call,
        GadgetClass::Jmp,
        GadgetClass::Ret,
        GadgetClass::Other,
    ];
}

impl fmt::Display for GadgetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classify a single instruction.
pub fn class_of_insn(insn: &Insn) -> GadgetClass {
    match insn {
        Insn::MovImm64(..)
        | Insn::MovImm32(..)
        | Insn::MovRR { .. }
        | Insn::MovLoad { .. }
        | Insn::MovStore { .. } => GadgetClass::Mov,
        Insn::Pop(_) => GadgetClass::Pop,
        Insn::Push(_) => GadgetClass::Push,
        Insn::Alu { op, .. }
        | Insn::AluImm { op, .. }
        | Insn::AluLoad { op, .. }
        | Insn::AluStore { op, .. } => match op {
            AluOp::Add | AluOp::Sub => GadgetClass::AddSub,
            AluOp::Xor | AluOp::And | AluOp::Or => GadgetClass::Logic,
            AluOp::Cmp => GadgetClass::Cmp,
        },
        Insn::Test(..) => GadgetClass::Cmp,
        Insn::Lea { .. } => GadgetClass::Lea,
        Insn::ShlImm(..) | Insn::ShrImm(..) | Insn::Imul { .. } => GadgetClass::Shift,
        Insn::CallRel(_) | Insn::CallReg(_) | Insn::CallMem(_) => GadgetClass::Call,
        Insn::JmpRel(_) | Insn::JmpReg(_) | Insn::JmpMem(_) | Insn::Jcc(..) => GadgetClass::Jmp,
        Insn::Ret => GadgetClass::Ret,
        _ => GadgetClass::Other,
    }
}

/// Classify a gadget by its first instruction.
pub fn classify(g: &Gadget) -> GadgetClass {
    class_of_insn(&g.insns[0])
}

/// Histogram of gadget classes (a Fig. 10 column).
pub fn histogram(gadgets: &[Gadget]) -> BTreeMap<GadgetClass, usize> {
    let mut h = BTreeMap::new();
    for g in gadgets {
        *h.entry(classify(g)).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::GadgetEnd;
    use adelie_isa::Reg;

    fn g(insns: Vec<Insn>) -> Gadget {
        Gadget {
            offset: 0,
            insns,
            end: GadgetEnd::Ret,
        }
    }

    #[test]
    fn classes() {
        assert_eq!(
            classify(&g(vec![Insn::Pop(Reg::Rdi), Insn::Ret])),
            GadgetClass::Pop
        );
        assert_eq!(classify(&g(vec![Insn::Ret])), GadgetClass::Ret);
        assert_eq!(
            classify(&g(vec![
                Insn::MovRR {
                    dst: Reg::Rax,
                    src: Reg::Rdi
                },
                Insn::Ret
            ])),
            GadgetClass::Mov
        );
        assert_eq!(
            classify(&g(vec![
                Insn::Alu {
                    op: AluOp::Xor,
                    dst: Reg::Rax,
                    src: Reg::Rax
                },
                Insn::Ret
            ])),
            GadgetClass::Logic
        );
    }

    #[test]
    fn histogram_sums_to_total() {
        let gs = vec![
            g(vec![Insn::Ret]),
            g(vec![Insn::Pop(Reg::Rax), Insn::Ret]),
            g(vec![Insn::Pop(Reg::Rbx), Insn::Ret]),
        ];
        let h = histogram(&gs);
        assert_eq!(h.values().sum::<usize>(), 3);
        assert_eq!(h[&GadgetClass::Pop], 2);
    }
}
