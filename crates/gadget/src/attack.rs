//! Attack models — the §6 security-analysis arithmetic, executable.
//!
//! Two quantitative models from the paper:
//!
//! * **Traditional (brute-force) ROP**: the attacker injects absolute
//!   gadget addresses and must guess the module base. Success
//!   probability per guess is `2^-entropy_bits` (page-aligned guesses);
//!   the paper contrasts Adelie's 2⁻⁴⁴ against 32-bit schemes' 2⁻¹⁹.
//! * **JIT ROP vs. continuous re-randomization**: the attacker leaks a
//!   pointer, scans for gadgets, builds and fires a chain — taking
//!   `attack_time` in total. The chain only works if the module has not
//!   moved in between, i.e. the whole attack fits inside the remaining
//!   part of the current period ("the entire attack must be performed
//!   within several milliseconds; all known attacks need several
//!   seconds").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Success probability of a single absolute-address guess given
/// `entropy_bits` of page-aligned placement entropy.
pub fn guess_probability(entropy_bits: u32) -> f64 {
    0.5f64.powi(entropy_bits as i32)
}

/// Probability that at least one of `attempts` independent guesses
/// lands (each failed guess crashes a kernel thread — the paper's
/// footnote 1 brute-force scenario).
pub fn brute_force_success(entropy_bits: u32, attempts: u64) -> f64 {
    let p = guess_probability(entropy_bits);
    1.0 - (1.0 - p).powf(attempts as f64)
}

/// Expected number of guesses until success (geometric mean).
pub fn expected_attempts(entropy_bits: u32) -> f64 {
    2f64.powi(entropy_bits as i32)
}

/// Monte-Carlo brute force: draw a hidden base among `2^entropy_bits`
/// slots and guess `budget` times. Returns attempts used on success.
pub fn simulate_brute_force(entropy_bits: u32, budget: u64, seed: u64) -> Option<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let slots: u64 = 1 << entropy_bits.min(62);
    let hidden = rng.gen_range(0..slots);
    for attempt in 1..=budget {
        if rng.gen_range(0..slots) == hidden {
            return Some(attempt);
        }
    }
    None
}

/// Probability a JIT-ROP attack of duration `attack_secs` completes
/// within one re-randomization period of `period_secs`, assuming the
/// attack starts uniformly at random within the period. The chain dies
/// at the next boundary (code moved, key rotated, stacks swapped).
pub fn jit_rop_success(attack_secs: f64, period_secs: f64) -> f64 {
    if period_secs <= 0.0 {
        return 0.0;
    }
    (1.0 - attack_secs / period_secs).max(0.0)
}

/// Monte-Carlo JIT-ROP race: the module re-randomizes every
/// `period_secs`; the attacker starts at a random phase and needs
/// `attack_secs`. Returns the fraction of `trials` that succeed.
pub fn simulate_jit_rop(attack_secs: f64, period_secs: f64, trials: u32, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut wins = 0u32;
    for _ in 0..trials {
        let phase: f64 = rng.gen_range(0.0..period_secs);
        if phase + attack_secs < period_secs {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

/// For each leak time, the *exposure window*: how long the leaked
/// address stays weaponizable, i.e. the distance to the next
/// re-randomization of the leaked-from module. `rerand_times` must be
/// sorted ascending (the commit timeline a harness observed). Leaks
/// with no later re-randomization are dropped — their window is not yet
/// bounded by the observation.
pub fn exposure_windows(leak_times_ns: &[u64], rerand_times_ns: &[u64]) -> Vec<u64> {
    debug_assert!(rerand_times_ns.windows(2).all(|w| w[0] <= w[1]));
    leak_times_ns
        .iter()
        .filter_map(|&t| {
            let i = rerand_times_ns.partition_point(|&r| r <= t);
            rerand_times_ns.get(i).map(|&next| next - t)
        })
        .collect()
}

/// Survival curve over a grid of attack durations: entry `i` is the
/// fraction of leaks whose exposure window is *longer* than
/// `deltas_ns[i]` — the probability an attacker needing `deltas_ns[i]`
/// from leak to fire still lands on live code. Empty windows give an
/// all-zero curve.
pub fn survival_curve(windows_ns: &[u64], deltas_ns: &[u64]) -> Vec<f64> {
    if windows_ns.is_empty() {
        return vec![0.0; deltas_ns.len()];
    }
    deltas_ns
        .iter()
        .map(|&d| {
            let survive = windows_ns.iter().filter(|&&w| w > d).count();
            survive as f64 / windows_ns.len() as f64
        })
        .collect()
}

/// Mean exposure window in nanoseconds (`NaN`-free: 0 for no windows).
/// This is the area under the survival curve taken to Δ → ∞ — the
/// scalar the attack-window suite compares across scheduling policies.
pub fn mean_exposure_ns(windows_ns: &[u64]) -> f64 {
    if windows_ns.is_empty() {
        return 0.0;
    }
    windows_ns.iter().map(|&w| w as f64).sum::<f64>() / windows_ns.len() as f64
}

/// The paper's headline numbers, as a struct benches print.
#[derive(Copy, Clone, Debug)]
pub struct EntropyComparison {
    /// Adelie/PIC placement entropy (page-aligned), ~44 bits.
    pub pic_bits: u32,
    /// 32-bit-scheme entropy (Shuffler/CodeArmor), 19 bits.
    pub legacy_bits: u32,
}

impl EntropyComparison {
    /// Expected brute-force attempts under each scheme.
    pub fn expected(&self) -> (f64, f64) {
        (
            expected_attempts(self.pic_bits),
            expected_attempts(self.legacy_bits),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_probabilities() {
        // §6: 2^-(56-12) = 2^-44 for Adelie; 2^-(31-12) = 2^-19 for
        // 32-bit schemes.
        assert!((guess_probability(44) - 2f64.powi(-44)).abs() < 1e-30);
        assert!((guess_probability(19) - 2f64.powi(-19)).abs() < 1e-12);
        // The gap is a factor of 2^25.
        let ratio = guess_probability(19) / guess_probability(44);
        assert!((ratio - 2f64.powi(25)).abs() / 2f64.powi(25) < 1e-9);
    }

    #[test]
    fn legacy_brute_force_is_feasible_pic_is_not() {
        // Paper footnote 1: ≤ 512K attempts for the 2 GiB window.
        let half_million = 512 * 1024;
        assert!(brute_force_success(19, half_million) > 0.6);
        // The same budget against the PIC arena is hopeless.
        assert!(brute_force_success(44, half_million) < 1e-6);
    }

    #[test]
    fn monte_carlo_agrees_with_analytics() {
        // With a 10-bit toy space and a 2^12 budget, success is ~98 %.
        let mut wins = 0;
        for seed in 0..200 {
            if simulate_brute_force(10, 1 << 12, seed).is_some() {
                wins += 1;
            }
        }
        let rate = wins as f64 / 200.0;
        let expect = brute_force_success(10, 1 << 12);
        assert!((rate - expect).abs() < 0.08, "rate {rate} vs {expect}");
    }

    #[test]
    fn jit_rop_window_shapes() {
        // Shuffler's observation: all known JIT-ROP attacks need seconds;
        // with millisecond periods the success probability is zero.
        assert_eq!(jit_rop_success(2.0, 0.005), 0.0);
        assert_eq!(jit_rop_success(2.0, 0.020), 0.0);
        // A hypothetical sub-millisecond attack against 5 ms periods.
        let p = jit_rop_success(0.001, 0.005);
        assert!((p - 0.8).abs() < 1e-12);
        let sim = simulate_jit_rop(0.001, 0.005, 20_000, 9);
        assert!((sim - 0.8).abs() < 0.02, "{sim}");
    }

    #[test]
    fn exposure_windows_measure_time_to_next_move() {
        let rerands = [10, 30, 60];
        // Leak at 5 → window 5; at 10 → next move is 30 (the move *at*
        // 10 already retired what was leaked before it); at 59 → 1; at
        // 60 and later → unbounded, dropped.
        let windows = exposure_windows(&[5, 10, 59, 60, 70], &rerands);
        assert_eq!(windows, vec![5, 20, 1]);
        assert!((mean_exposure_ns(&windows) - 26.0 / 3.0).abs() < 1e-9);
        assert_eq!(mean_exposure_ns(&[]), 0.0);
    }

    #[test]
    fn survival_curve_is_monotone_nonincreasing() {
        let windows = [5, 20, 1];
        let curve = survival_curve(&windows, &[0, 1, 5, 20, 100]);
        assert_eq!(curve, vec![1.0, 2.0 / 3.0, 1.0 / 3.0, 0.0, 0.0]);
        assert!(curve.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(survival_curve(&[], &[0, 1]), vec![0.0, 0.0]);
    }

    #[test]
    fn expected_attempts_match_entropy() {
        let cmp = EntropyComparison {
            pic_bits: 44,
            legacy_bits: 19,
        };
        let (pic, legacy) = cmp.expected();
        assert_eq!(legacy, 524_288.0);
        assert!(pic > 1.7e13);
    }
}
