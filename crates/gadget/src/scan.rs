//! Ropper-style ROP gadget scanner.
//!
//! Decodes from *every* byte offset of a text image (gadgets routinely
//! start mid-instruction on x86) and records short instruction sequences
//! ending in a control transfer usable by an attacker: `ret` (classic
//! ROP), or indirect `jmp`/`call` (JOP, §2.1).

use adelie_isa::{decode, Insn};

/// Maximum instructions per gadget (Ropper's default depth is 6).
pub const MAX_GADGET_LEN: usize = 6;

/// How a gadget transfers control.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum GadgetEnd {
    /// Ends in `ret` — a classic ROP gadget.
    Ret,
    /// Ends in `jmp reg` / `jmp [mem]` — a JOP gadget.
    Jmp,
    /// Ends in `call reg` / `call [mem]` — a call-oriented gadget.
    Call,
}

/// One discovered gadget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gadget {
    /// Byte offset within the scanned image.
    pub offset: usize,
    /// The instruction sequence (terminator included).
    pub insns: Vec<Insn>,
    /// Terminator kind.
    pub end: GadgetEnd,
}

impl Gadget {
    /// Instructions before the terminator.
    pub fn body(&self) -> &[Insn] {
        &self.insns[..self.insns.len() - 1]
    }

    /// Render as Ropper-style text (`pop rdi; ret`).
    pub fn text(&self) -> String {
        self.insns
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

fn end_of(insn: &Insn) -> Option<GadgetEnd> {
    match insn {
        Insn::Ret => Some(GadgetEnd::Ret),
        Insn::JmpReg(_) | Insn::JmpMem(_) => Some(GadgetEnd::Jmp),
        Insn::CallReg(_) | Insn::CallMem(_) => Some(GadgetEnd::Call),
        _ => None,
    }
}

/// Scan `bytes` for gadgets.
///
/// Every offset that decodes into a valid sequence of at most
/// [`MAX_GADGET_LEN`] instructions ending in a usable control transfer
/// yields one gadget (suffixes of longer gadgets are themselves gadgets,
/// exactly as Ropper counts them).
pub fn scan(bytes: &[u8]) -> Vec<Gadget> {
    let mut out = Vec::new();
    for start in 0..bytes.len() {
        let mut insns = Vec::new();
        let mut pos = start;
        for _ in 0..MAX_GADGET_LEN {
            let Ok((insn, len)) = decode(&bytes[pos..]) else {
                break;
            };
            pos += len;
            let done = end_of(&insn);
            insns.push(insn);
            if let Some(end) = done {
                out.push(Gadget {
                    offset: start,
                    insns: insns.clone(),
                    end,
                });
                break;
            }
            // Direct control flow mid-sequence makes the tail
            // unreachable from this entry; stop extending.
            if matches!(
                insns.last(),
                Some(Insn::JmpRel(_)) | Some(Insn::Jcc(..)) | Some(Insn::Hlt) | Some(Insn::Ud2)
            ) {
                break;
            }
        }
    }
    out
}

/// Count gadgets per terminator kind.
pub fn count_by_end(gadgets: &[Gadget]) -> (usize, usize, usize) {
    let mut ret = 0;
    let mut jmp = 0;
    let mut call = 0;
    for g in gadgets {
        match g.end {
            GadgetEnd::Ret => ret += 1,
            GadgetEnd::Jmp => jmp += 1,
            GadgetEnd::Call => call += 1,
        }
    }
    (ret, jmp, call)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::{encode_into, Reg};

    fn bytes_of(insns: &[Insn]) -> Vec<u8> {
        let mut v = Vec::new();
        for i in insns {
            encode_into(i, &mut v);
        }
        v
    }

    #[test]
    fn finds_pop_ret() {
        let bytes = bytes_of(&[Insn::Pop(Reg::Rdi), Insn::Ret]);
        let gadgets = scan(&bytes);
        assert!(gadgets
            .iter()
            .any(|g| g.text() == "pop rdi; ret" && g.offset == 0));
        // The bare `ret` suffix is also a gadget.
        assert!(gadgets.iter().any(|g| g.insns == vec![Insn::Ret]));
    }

    #[test]
    fn finds_misaligned_gadgets() {
        // movabs rax, 0x5FC3 — contains `pop rdi (0x5F); ret (0xC3)`
        // starting inside the immediate.
        let bytes = bytes_of(&[Insn::MovImm64(Reg::Rax, 0xC35F)]);
        let gadgets = scan(&bytes);
        assert!(
            gadgets.iter().any(|g| g.text() == "pop rdi; ret"),
            "hidden gadget in immediate: {:?}",
            gadgets.iter().map(Gadget::text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jop_gadgets_detected() {
        let bytes = bytes_of(&[Insn::Pop(Reg::Rax), Insn::JmpReg(Reg::Rax)]);
        let gadgets = scan(&bytes);
        assert!(gadgets.iter().any(|g| g.end == GadgetEnd::Jmp));
    }

    #[test]
    fn depth_limit_respected() {
        let mut seq = vec![Insn::Nop; MAX_GADGET_LEN];
        seq.push(Insn::Ret);
        let bytes = bytes_of(&seq);
        let gadgets = scan(&bytes);
        // From offset 0 the ret is MAX_GADGET_LEN+1 instructions away —
        // no gadget can start there.
        assert!(gadgets.iter().all(|g| g.offset != 0));
        assert!(gadgets.iter().any(|g| g.insns.len() == MAX_GADGET_LEN));
    }

    #[test]
    fn direct_branches_cut_gadgets() {
        let bytes = bytes_of(&[Insn::JmpRel(100), Insn::Ret]);
        let gadgets = scan(&bytes);
        // No gadget starts at the jmp (control leaves the sequence).
        assert!(gadgets.iter().all(|g| g.offset != 0));
    }

    #[test]
    fn empty_and_garbage_input() {
        assert!(scan(&[]).is_empty());
        let garbage = vec![0x06u8; 64]; // invalid opcode bytes
        assert!(scan(&garbage).is_empty());
    }
}
