//! Ropper-style ROP gadget scanner.
//!
//! Decodes from *every* byte offset of a text image (gadgets routinely
//! start mid-instruction on x86) and records short instruction sequences
//! ending in a control transfer usable by an attacker: `ret` (classic
//! ROP), or indirect `jmp`/`call` (JOP, §2.1).

use adelie_isa::{decode, Insn};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum instructions per gadget (Ropper's default depth is 6).
pub const MAX_GADGET_LEN: usize = 6;

/// How a gadget transfers control.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum GadgetEnd {
    /// Ends in `ret` — a classic ROP gadget.
    Ret,
    /// Ends in `jmp reg` / `jmp [mem]` — a JOP gadget.
    Jmp,
    /// Ends in `call reg` / `call [mem]` — a call-oriented gadget.
    Call,
}

/// One discovered gadget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gadget {
    /// Byte offset within the scanned image.
    pub offset: usize,
    /// The instruction sequence (terminator included).
    pub insns: Vec<Insn>,
    /// Terminator kind.
    pub end: GadgetEnd,
}

impl Gadget {
    /// Instructions before the terminator.
    pub fn body(&self) -> &[Insn] {
        &self.insns[..self.insns.len() - 1]
    }

    /// Render as Ropper-style text (`pop rdi; ret`).
    pub fn text(&self) -> String {
        self.insns
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

fn end_of(insn: &Insn) -> Option<GadgetEnd> {
    match insn {
        Insn::Ret => Some(GadgetEnd::Ret),
        Insn::JmpReg(_) | Insn::JmpMem(_) => Some(GadgetEnd::Jmp),
        Insn::CallReg(_) | Insn::CallMem(_) => Some(GadgetEnd::Call),
        _ => None,
    }
}

/// Scan `bytes` for gadgets.
///
/// Every offset that decodes into a valid sequence of at most
/// [`MAX_GADGET_LEN`] instructions ending in a usable control transfer
/// yields one gadget (suffixes of longer gadgets are themselves gadgets,
/// exactly as Ropper counts them).
pub fn scan(bytes: &[u8]) -> Vec<Gadget> {
    let mut out = Vec::new();
    for start in 0..bytes.len() {
        let mut insns = Vec::new();
        let mut pos = start;
        for _ in 0..MAX_GADGET_LEN {
            let Ok((insn, len)) = decode(&bytes[pos..]) else {
                break;
            };
            pos += len;
            let done = end_of(&insn);
            insns.push(insn);
            if let Some(end) = done {
                out.push(Gadget {
                    offset: start,
                    insns: insns.clone(),
                    end,
                });
                break;
            }
            // Direct control flow mid-sequence makes the tail
            // unreachable from this entry; stop extending.
            if matches!(
                insns.last(),
                Some(Insn::JmpRel(_)) | Some(Insn::Jcc(..)) | Some(Insn::Hlt) | Some(Insn::Ud2)
            ) {
                break;
            }
        }
    }
    out
}

/// FNV-1a content hash of a text image — the memoization key for
/// [`ScanCache`]. Zero-copy re-randomization moves a module without
/// changing a byte of its position-independent text, so the hash of the
/// movable text is stable across cycles.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Memoizes [`scan`] results by content hash so callers that re-scan
/// unchanged text every cycle (the scheduler's Adaptive-policy exposure
/// refresh) pay a hash instead of a full every-offset decode. Gadget
/// *counts* are cached, not gadget lists: exposure only needs the
/// density, and counts keep the cache O(modules), not O(text).
///
/// Thread-safe; hit/miss counters are exported so schedulers can
/// surface cache behaviour in their stats (and tests can assert a no-op
/// cycle costs zero rescans).
#[derive(Default)]
pub struct ScanCache {
    counts: Mutex<HashMap<u64, usize>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScanCache {
    /// An empty cache.
    pub fn new() -> ScanCache {
        ScanCache::default()
    }

    /// Number of gadgets in `bytes`, memoized by [`content_hash`].
    pub fn gadget_count(&self, bytes: &[u8]) -> usize {
        let key = content_hash(bytes);
        if let Some(&n) = self
            .counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return n;
        }
        let n = scan(bytes).len();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, n);
        n
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run a full [`scan`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ScanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanCache")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Count gadgets per terminator kind.
pub fn count_by_end(gadgets: &[Gadget]) -> (usize, usize, usize) {
    let mut ret = 0;
    let mut jmp = 0;
    let mut call = 0;
    for g in gadgets {
        match g.end {
            GadgetEnd::Ret => ret += 1,
            GadgetEnd::Jmp => jmp += 1,
            GadgetEnd::Call => call += 1,
        }
    }
    (ret, jmp, call)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::{encode_into, Reg};

    fn bytes_of(insns: &[Insn]) -> Vec<u8> {
        let mut v = Vec::new();
        for i in insns {
            encode_into(i, &mut v);
        }
        v
    }

    #[test]
    fn finds_pop_ret() {
        let bytes = bytes_of(&[Insn::Pop(Reg::Rdi), Insn::Ret]);
        let gadgets = scan(&bytes);
        assert!(gadgets
            .iter()
            .any(|g| g.text() == "pop rdi; ret" && g.offset == 0));
        // The bare `ret` suffix is also a gadget.
        assert!(gadgets.iter().any(|g| g.insns == vec![Insn::Ret]));
    }

    #[test]
    fn finds_misaligned_gadgets() {
        // movabs rax, 0x5FC3 — contains `pop rdi (0x5F); ret (0xC3)`
        // starting inside the immediate.
        let bytes = bytes_of(&[Insn::MovImm64(Reg::Rax, 0xC35F)]);
        let gadgets = scan(&bytes);
        assert!(
            gadgets.iter().any(|g| g.text() == "pop rdi; ret"),
            "hidden gadget in immediate: {:?}",
            gadgets.iter().map(Gadget::text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jop_gadgets_detected() {
        let bytes = bytes_of(&[Insn::Pop(Reg::Rax), Insn::JmpReg(Reg::Rax)]);
        let gadgets = scan(&bytes);
        assert!(gadgets.iter().any(|g| g.end == GadgetEnd::Jmp));
    }

    #[test]
    fn depth_limit_respected() {
        let mut seq = vec![Insn::Nop; MAX_GADGET_LEN];
        seq.push(Insn::Ret);
        let bytes = bytes_of(&seq);
        let gadgets = scan(&bytes);
        // From offset 0 the ret is MAX_GADGET_LEN+1 instructions away —
        // no gadget can start there.
        assert!(gadgets.iter().all(|g| g.offset != 0));
        assert!(gadgets.iter().any(|g| g.insns.len() == MAX_GADGET_LEN));
    }

    #[test]
    fn direct_branches_cut_gadgets() {
        let bytes = bytes_of(&[Insn::JmpRel(100), Insn::Ret]);
        let gadgets = scan(&bytes);
        // No gadget starts at the jmp (control leaves the sequence).
        assert!(gadgets.iter().all(|g| g.offset != 0));
    }

    #[test]
    fn empty_and_garbage_input() {
        assert!(scan(&[]).is_empty());
        let garbage = vec![0x06u8; 64]; // invalid opcode bytes
        assert!(scan(&garbage).is_empty());
    }

    #[test]
    fn cache_memoizes_by_content() {
        let a = bytes_of(&[Insn::Pop(Reg::Rdi), Insn::Ret]);
        let b = bytes_of(&[Insn::Pop(Reg::Rax), Insn::JmpReg(Reg::Rax)]);
        let cache = ScanCache::new();
        let n_a = cache.gadget_count(&a);
        assert_eq!(n_a, scan(&a).len());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Identical bytes hit, regardless of where they live.
        assert_eq!(cache.gadget_count(&a.clone()), n_a);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Different content misses.
        cache.gadget_count(&b);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn content_hash_is_content_only() {
        let a = bytes_of(&[Insn::Pop(Reg::Rdi), Insn::Ret]);
        assert_eq!(content_hash(&a), content_hash(&a.clone()));
        let b = bytes_of(&[Insn::Pop(Reg::Rsi), Insn::Ret]);
        assert_ne!(content_hash(&a), content_hash(&b));
    }
}
