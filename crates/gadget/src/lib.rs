//! # adelie-gadget — ROP gadget analysis and attack models
//!
//! The measurement half of the paper's security story:
//!
//! * [`scan`](scan()) — a Ropper-style gadget finder over raw text bytes
//!   (decodes from every offset; mis-aligned gadgets included), used for
//!   Fig. 10's distribution,
//! * [`classify()`]/[`histogram`] — the Fig. 10 instruction-type buckets,
//! * [`chain_verdict`]/[`build_chain`] — the Table 2 "can this module's
//!   gadgets disable NX" experiment, including constructing the actual
//!   chain an attacker would inject,
//! * [`corpus`] — a seeded synthetic-module generator standing in for
//!   Ubuntu's ~5,300 modules (substitution documented in DESIGN.md),
//! * [`attack`] — the §6 entropy and JIT-ROP-race arithmetic, analytic
//!   and Monte-Carlo.
//!
//! # Example
//!
//! ```
//! use adelie_gadget::{scan, classify::histogram, chain::chain_verdict};
//! use adelie_isa::{encode_into, Insn, Reg};
//!
//! let mut text = Vec::new();
//! for i in [Insn::Pop(Reg::Rdi), Insn::Ret] {
//!     encode_into(&i, &mut text);
//! }
//! let gadgets = scan(&text);
//! assert!(!gadgets.is_empty());
//! let classes = histogram(&gadgets);
//! assert!(classes.values().sum::<usize>() == gadgets.len());
//! let _ = chain_verdict(&gadgets);
//! ```

pub mod attack;
pub mod chain;
pub mod classify;
pub mod corpus;
pub mod scan;

pub use chain::{build_chain, chain_verdict, ChainVerdict, RopChain};
pub use classify::{classify, histogram, GadgetClass};
pub use corpus::{generate_corpus, synth_kernel_text, synth_module, CorpusModule};
pub use scan::{content_hash, count_by_end, scan, Gadget, GadgetEnd, ScanCache, MAX_GADGET_LEN};
