//! ROP-chain construction — the Table 2 experiment.
//!
//! The paper's "specific example with NX" checks whether a module's
//! gadget set suffices to call a kernel function that disables NX
//! (`set_memory_x`-style: address in `rdi`, page count in `rsi`, plus a
//! third argument in `rdx`). A module qualifies when the attacker can
//! load all three System-V argument registers from the stack and then
//! return into the target — i.e. a `pop rdi; ret` / `pop rsi; ret` /
//! `pop rdx; ret` trio. Gadgets that load the register but execute
//! extra instructions on the way to `ret` still work but have *side
//! effects* (Table 2's middle row).

use crate::scan::{Gadget, GadgetEnd};
use adelie_isa::{Insn, Reg};

/// How a needed register can be loaded from this module's gadgets.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RegLoad {
    /// A clean `pop reg; ret` exists.
    Clean,
    /// Only a longer `pop reg; …; ret` with benign extra instructions.
    SideEffect,
    /// No usable gadget.
    Missing,
}

/// Table 2 membership for one module.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChainVerdict {
    /// "With ROP Chain, no side-effect".
    CleanChain,
    /// "With ROP Chain, with side-effect".
    ChainWithSideEffects,
    /// "Without ROP Chain".
    NoChain,
}

/// The argument registers the NX-disable call needs.
pub const CHAIN_REGS: [Reg; 3] = [Reg::Rdi, Reg::Rsi, Reg::Rdx];

/// Whether an instruction ruins a gadget for chain use (clobbers the
/// stack pointer or leaves the chain).
fn disqualifies(insn: &Insn, target: Reg) -> bool {
    match insn {
        // Touching rsp derails the chain.
        Insn::Pop(Reg::Rsp) | Insn::Push(_) => true,
        Insn::MovRR { dst: Reg::Rsp, .. } => true,
        Insn::AluImm { dst: Reg::Rsp, .. } | Insn::Alu { dst: Reg::Rsp, .. } => true,
        // Mid-gadget calls leave the chain.
        Insn::CallRel(_) | Insn::CallReg(_) | Insn::CallMem(_) => true,
        // A later pop of the same register undoes our load.
        Insn::Pop(r) if *r == target => true,
        // Overwriting the freshly-loaded register undoes the load.
        Insn::MovRR { dst, .. }
        | Insn::MovImm64(dst, _)
        | Insn::MovImm32(dst, _)
        | Insn::MovLoad { dst, .. }
        | Insn::Lea { dst, .. }
            if *dst == target =>
        {
            true
        }
        // Memory stores may fault at attacker-chosen register values —
        // count as disqualifying (conservative, like the paper's "no
        // side-effect" chain quality bar)…
        _ => false,
    }
}

/// Judge how well `reg` can be loaded from the gadget set.
pub fn reg_load_quality(gadgets: &[Gadget], reg: Reg) -> RegLoad {
    let mut best = RegLoad::Missing;
    for g in gadgets {
        if g.end != GadgetEnd::Ret {
            continue;
        }
        // Find `pop reg` in the body.
        let Some(pos) = g.insns.iter().position(|i| *i == Insn::Pop(reg)) else {
            continue;
        };
        let tail = &g.insns[pos + 1..g.insns.len() - 1];
        // Everything before the pop must also be harmless for the chain
        // to *start* at the gadget's entry (pops consume stack slots but
        // that only costs filler words — allowed, counts as side effect).
        let pre = &g.insns[..pos];
        if tail.iter().any(|i| disqualifies(i, reg)) || pre.iter().any(|i| disqualifies(i, reg)) {
            continue;
        }
        if pos == 0 && tail.is_empty() {
            return RegLoad::Clean;
        }
        best = RegLoad::SideEffect;
    }
    best
}

/// Classify a module's gadget set (one Table 2 row contribution).
pub fn chain_verdict(gadgets: &[Gadget]) -> ChainVerdict {
    let loads: Vec<RegLoad> = CHAIN_REGS
        .iter()
        .map(|&r| reg_load_quality(gadgets, r))
        .collect();
    if loads.contains(&RegLoad::Missing) {
        return ChainVerdict::NoChain;
    }
    if loads.iter().all(|l| *l == RegLoad::Clean) {
        ChainVerdict::CleanChain
    } else {
        ChainVerdict::ChainWithSideEffects
    }
}

/// A concrete chain: the stack image an attacker would inject.
#[derive(Clone, Debug)]
pub struct RopChain {
    /// Stack words, bottom (first-popped) first: alternating gadget
    /// addresses and data.
    pub words: Vec<u64>,
    /// Human-readable plan.
    pub plan: Vec<String>,
}

/// Build an actual NX-disable-style chain against a module image mapped
/// at `base`: sets `rdi=arg0, rsi=arg1, rdx=arg2` then returns into
/// `target`. Returns `None` when the gadget set is insufficient.
pub fn build_chain(gadgets: &[Gadget], base: u64, args: [u64; 3], target: u64) -> Option<RopChain> {
    let mut words = Vec::new();
    let mut plan = Vec::new();
    for (reg, arg) in CHAIN_REGS.iter().zip(args) {
        // Prefer the clean pop; fall back to any qualifying gadget.
        let g = gadgets
            .iter()
            .filter(|g| g.end == GadgetEnd::Ret)
            .filter(|g| {
                let Some(pos) = g.insns.iter().position(|i| *i == Insn::Pop(*reg)) else {
                    return false;
                };
                let pre = &g.insns[..pos];
                let tail = &g.insns[pos + 1..g.insns.len() - 1];
                !pre.iter().any(|i| disqualifies(i, *reg))
                    && !tail.iter().any(|i| disqualifies(i, *reg))
            })
            .min_by_key(|g| g.insns.len())?;
        let pos = g.insns.iter().position(|i| *i == Insn::Pop(*reg)).unwrap();
        words.push(base + g.offset as u64);
        plan.push(format!("{:#x}: {}", base + g.offset as u64, g.text()));
        // Filler for pops before ours, then our value, then filler for
        // pops after ours (other registers' side-effect pops).
        for i in &g.insns[..pos] {
            if matches!(i, Insn::Pop(_)) {
                words.push(0xFFFF_FFFF_DEAD_0000);
            }
        }
        words.push(arg);
        for i in &g.insns[pos + 1..g.insns.len() - 1] {
            if matches!(i, Insn::Pop(_)) {
                words.push(0xFFFF_FFFF_DEAD_0001);
            }
        }
    }
    words.push(target);
    plan.push(format!("{target:#x}: target (disable-NX call)"));
    Some(RopChain { words, plan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::encode_into;

    fn image(insns: &[Insn]) -> Vec<u8> {
        let mut v = Vec::new();
        for i in insns {
            encode_into(i, &mut v);
        }
        v
    }

    #[test]
    fn clean_chain_found() {
        let bytes = image(&[
            Insn::Pop(Reg::Rdi),
            Insn::Ret,
            Insn::Pop(Reg::Rsi),
            Insn::Ret,
            Insn::Pop(Reg::Rdx),
            Insn::Ret,
        ]);
        let gadgets = crate::scan::scan(&bytes);
        assert_eq!(chain_verdict(&gadgets), ChainVerdict::CleanChain);
        let chain = build_chain(&gadgets, 0x1000, [1, 2, 3], 0x01F0_0000_0000_0100).unwrap();
        assert_eq!(chain.words.len(), 7); // 3×(gadget,value) + target
    }

    #[test]
    fn side_effect_chain() {
        let bytes = image(&[
            Insn::Pop(Reg::Rdi),
            Insn::Nop,
            Insn::Ret,
            Insn::Pop(Reg::Rsi),
            Insn::Ret,
            Insn::Pop(Reg::Rdx),
            Insn::Ret,
        ]);
        let gadgets = crate::scan::scan(&bytes);
        assert_eq!(chain_verdict(&gadgets), ChainVerdict::ChainWithSideEffects);
    }

    #[test]
    fn missing_register_means_no_chain() {
        let bytes = image(&[
            Insn::Pop(Reg::Rdi),
            Insn::Ret,
            Insn::Pop(Reg::Rsi),
            Insn::Ret,
        ]);
        let gadgets = crate::scan::scan(&bytes);
        assert_eq!(chain_verdict(&gadgets), ChainVerdict::NoChain);
    }

    #[test]
    fn clobbered_load_rejected() {
        // pop rdx; mov rdx, rax; ret — the load is destroyed.
        let bytes = image(&[
            Insn::Pop(Reg::Rdi),
            Insn::Ret,
            Insn::Pop(Reg::Rsi),
            Insn::Ret,
            Insn::Pop(Reg::Rdx),
            Insn::MovRR {
                dst: Reg::Rdx,
                src: Reg::Rax,
            },
            Insn::Ret,
        ]);
        let gadgets = crate::scan::scan(&bytes);
        assert_eq!(chain_verdict(&gadgets), ChainVerdict::NoChain);
    }
}
