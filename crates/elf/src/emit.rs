//! ELF64 `ET_REL` emitter.
//!
//! Serializes an [`ObjectFile`] into a spec-shaped relocatable object:
//! file header, one section per populated [`SectionKind`] (in layout
//! order), one `.rela.*` section per relocated section, the
//! `.adelie.modinfo` metadata section, then `.symtab`/`.strtab`/
//! `.shstrtab` and the section-header table. The output is a real ELF —
//! `readelf -a` renders it — and [`crate::parse`] reconstructs the
//! original [`ObjectFile`] losslessly.

use crate::consts::*;
use crate::{reloc_type, section_encoding};
use adelie_obj::{Binding, ObjectFile, SectionKind, SymbolDef};
use std::collections::HashMap;

/// A string table under construction (offset 0 is the empty string, as
/// the spec requires).
struct StrTab {
    bytes: Vec<u8>,
    index: HashMap<String, u32>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab {
            bytes: vec![0],
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if s.is_empty() {
            return 0;
        }
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        self.bytes.push(0);
        self.index.insert(s.to_string(), i);
        i
    }
}

/// One section header plus its payload, pre-layout.
struct OutSection {
    name: u32,
    sh_type: u32,
    flags: u64,
    size: u64,
    link: u32,
    info: u32,
    addralign: u64,
    entsize: u64,
    /// File payload (empty for `SHT_NOBITS`).
    data: Vec<u8>,
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn sym_entry(out: &mut Vec<u8>, name: u32, info: u8, shndx: u16, value: u64) {
    push_u32(out, name);
    out.push(info);
    out.push(0); // st_other
    push_u16(out, shndx);
    push_u64(out, value);
    push_u64(out, 0); // st_size: the pipeline does not track it
}

/// The `key=value\0` metadata payload for `.adelie.modinfo`.
fn modinfo_bytes(obj: &ObjectFile) -> Vec<u8> {
    let mut out = Vec::new();
    let mut put = |k: &str, v: &str| {
        out.extend_from_slice(k.as_bytes());
        out.push(b'=');
        out.extend_from_slice(v.as_bytes());
        out.push(0);
    };
    put("name", &obj.name);
    if let Some(init) = &obj.init {
        put("init", init);
    }
    if let Some(exit) = &obj.exit {
        put("exit", exit);
    }
    if let Some(up) = &obj.update_pointers {
        put("update_pointers", up);
    }
    for e in &obj.exports {
        put("export", e);
    }
    out
}

/// Serialize `obj` as an ELF64 `ET_REL` x86-64 object.
///
/// Infallible: an in-memory [`ObjectFile`] is already structurally
/// valid (the builder enforces it), and every supported [`RelocKind`]
/// has an x86-64 relocation number.
///
/// [`RelocKind`]: adelie_obj::RelocKind
pub fn emit(obj: &ObjectFile) -> Vec<u8> {
    let mut shstr = StrTab::new();
    let mut strtab = StrTab::new();

    // --- section indices ------------------------------------------------
    // [0]=NULL, then alloc sections in BTreeMap (= layout) order, then
    // one .rela per relocated section, then modinfo, symtab, strtab,
    // shstrtab.
    let kinds: Vec<SectionKind> = obj.sections.keys().copied().collect();
    let shndx_of: HashMap<SectionKind, u16> = kinds
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, (i + 1) as u16))
        .collect();
    let relocated: Vec<SectionKind> = kinds
        .iter()
        .copied()
        .filter(|k| !obj.sections[k].relocs.is_empty())
        .collect();
    let symtab_ndx = (1 + kinds.len() + relocated.len() + 1) as u32;
    let strtab_ndx = symtab_ndx + 1;
    let shstrtab_ndx = strtab_ndx + 1;

    // --- symbol table ---------------------------------------------------
    // Locals first (the spec's `sh_info` contract), emission order
    // otherwise preserved.
    let mut order: Vec<usize> = (0..obj.symbols.len()).collect();
    order.sort_by_key(|&i| matches!(obj.symbols[i].binding, Binding::Global));
    let first_global = 1 + order
        .iter()
        .take_while(|&&i| matches!(obj.symbols[i].binding, Binding::Local))
        .count() as u32;
    let mut sym_ndx: HashMap<&str, u64> = HashMap::new();
    let mut symtab = Vec::with_capacity(SYM_SIZE * (obj.symbols.len() + 1));
    sym_entry(&mut symtab, 0, 0, SHN_UNDEF, 0); // entry 0: null
    for (n, &i) in order.iter().enumerate() {
        let sym = &obj.symbols[i];
        let bind = match sym.binding {
            Binding::Local => STB_LOCAL,
            Binding::Global => STB_GLOBAL,
        };
        let (stype, shndx, value) = match sym.def {
            SymbolDef::Defined { section, offset } => {
                let stype = if section.is_code() {
                    STT_FUNC
                } else {
                    STT_OBJECT
                };
                (stype, shndx_of[&section], offset as u64)
            }
            SymbolDef::Undefined => (STT_NOTYPE, SHN_UNDEF, 0),
        };
        let name = strtab.intern(&sym.name);
        sym_entry(&mut symtab, name, (bind << 4) | stype, shndx, value);
        sym_ndx.insert(&sym.name, (n + 1) as u64);
    }

    // --- sections -------------------------------------------------------
    let mut sections: Vec<OutSection> = Vec::new();
    for &kind in &kinds {
        let sec = &obj.sections[&kind];
        let (flags, sh_type) = section_encoding(kind);
        sections.push(OutSection {
            name: shstr.intern(kind.name()),
            sh_type,
            flags,
            size: sec.size as u64,
            link: 0,
            info: 0,
            addralign: if kind.is_code() { 16 } else { 8 },
            entsize: 0,
            data: if sh_type == SHT_NOBITS {
                Vec::new()
            } else {
                sec.bytes.clone()
            },
        });
    }
    for &kind in &relocated {
        let sec = &obj.sections[&kind];
        let mut data = Vec::with_capacity(RELA_SIZE * sec.relocs.len());
        for r in &sec.relocs {
            push_u64(&mut data, r.offset as u64);
            let info = (sym_ndx[&*r.symbol] << 32) | u64::from(reloc_type(r.kind));
            push_u64(&mut data, info);
            push_u64(&mut data, r.addend as u64);
        }
        sections.push(OutSection {
            name: shstr.intern(&format!(".rela{}", kind.name())),
            sh_type: SHT_RELA,
            flags: 0,
            size: data.len() as u64,
            link: symtab_ndx,
            info: u32::from(shndx_of[&kind]),
            addralign: 8,
            entsize: RELA_SIZE as u64,
            data,
        });
    }
    let modinfo = modinfo_bytes(obj);
    sections.push(OutSection {
        name: shstr.intern(MODINFO_SECTION),
        sh_type: SHT_PROGBITS,
        flags: 0,
        size: modinfo.len() as u64,
        link: 0,
        info: 0,
        addralign: 1,
        entsize: 0,
        data: modinfo,
    });
    sections.push(OutSection {
        name: shstr.intern(".symtab"),
        sh_type: SHT_SYMTAB,
        flags: 0,
        size: symtab.len() as u64,
        link: strtab_ndx,
        info: first_global,
        addralign: 8,
        entsize: SYM_SIZE as u64,
        data: symtab,
    });
    let strtab_bytes = strtab.bytes;
    sections.push(OutSection {
        name: shstr.intern(".strtab"),
        sh_type: SHT_STRTAB,
        flags: 0,
        size: strtab_bytes.len() as u64,
        link: 0,
        info: 0,
        addralign: 1,
        entsize: 0,
        data: strtab_bytes,
    });
    let shstrtab_name = shstr.intern(".shstrtab");
    let shstr_bytes = shstr.bytes;
    sections.push(OutSection {
        name: shstrtab_name,
        sh_type: SHT_STRTAB,
        flags: 0,
        size: shstr_bytes.len() as u64,
        link: 0,
        info: 0,
        addralign: 1,
        entsize: 0,
        data: shstr_bytes,
    });

    // --- layout ---------------------------------------------------------
    let mut out = vec![0u8; EHDR_SIZE];
    let mut offsets = Vec::with_capacity(sections.len());
    for s in &sections {
        if s.addralign > 1 {
            let a = s.addralign as usize;
            let pad = (a - out.len() % a) % a;
            out.resize(out.len() + pad, 0);
        }
        offsets.push(out.len() as u64);
        out.extend_from_slice(&s.data);
    }
    let pad = (8 - out.len() % 8) % 8;
    out.resize(out.len() + pad, 0);
    let e_shoff = out.len() as u64;

    // --- section header table -------------------------------------------
    out.extend_from_slice(&[0u8; SHDR_SIZE]); // [0]: SHT_NULL
    for (s, &off) in sections.iter().zip(&offsets) {
        push_u32(&mut out, s.name);
        push_u32(&mut out, s.sh_type);
        push_u64(&mut out, s.flags);
        push_u64(&mut out, 0); // sh_addr: unallocated until load
        push_u64(&mut out, off);
        push_u64(&mut out, s.size);
        push_u32(&mut out, s.link);
        push_u32(&mut out, s.info);
        push_u64(&mut out, s.addralign);
        push_u64(&mut out, s.entsize);
    }

    // --- file header ----------------------------------------------------
    let e_shnum = (sections.len() + 1) as u16;
    let mut ehdr = Vec::with_capacity(EHDR_SIZE);
    ehdr.extend_from_slice(&ELFMAG);
    ehdr.push(ELFCLASS64);
    ehdr.push(ELFDATA2LSB);
    ehdr.push(EV_CURRENT);
    ehdr.resize(16, 0); // OS ABI 0 (SysV) + padding
    push_u16(&mut ehdr, ET_REL);
    push_u16(&mut ehdr, EM_X86_64);
    push_u32(&mut ehdr, u32::from(EV_CURRENT));
    push_u64(&mut ehdr, 0); // e_entry
    push_u64(&mut ehdr, 0); // e_phoff
    push_u64(&mut ehdr, e_shoff);
    push_u32(&mut ehdr, 0); // e_flags
    push_u16(&mut ehdr, EHDR_SIZE as u16);
    push_u16(&mut ehdr, 0); // e_phentsize
    push_u16(&mut ehdr, 0); // e_phnum
    push_u16(&mut ehdr, SHDR_SIZE as u16);
    push_u16(&mut ehdr, e_shnum);
    push_u16(&mut ehdr, shstrtab_ndx as u16);
    debug_assert_eq!(ehdr.len(), EHDR_SIZE);
    out[..EHDR_SIZE].copy_from_slice(&ehdr);
    out
}
