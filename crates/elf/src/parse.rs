//! ELF64 `ET_REL` parser.
//!
//! Ingests a relocatable x86-64 object into an
//! [`ObjectFile`](adelie_obj::ObjectFile). Hardened against adversarial
//! input: every offset, size, count, and index is validated with
//! overflow-checked arithmetic before use, and every rejection is a
//! typed [`ElfError`] — malformed bytes can never panic this code or
//! make it read out of bounds.

use crate::consts::*;
use crate::{classify_section, reloc_kind, ElfError};
use adelie_obj::{Binding, ObjectFile, Reloc, Section, SectionKind, Symbol, SymbolDef};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Bounds-checked little-endian reader over the input buffer.
struct Reader<'a> {
    b: &'a [u8],
}

impl<'a> Reader<'a> {
    fn bytes(&self, off: u64, len: u64, what: &'static str) -> Result<&'a [u8], ElfError> {
        let end = off.checked_add(len).ok_or(ElfError::Truncated {
            what,
            need: u64::MAX,
            have: self.b.len() as u64,
        })?;
        if end > self.b.len() as u64 {
            return Err(ElfError::Truncated {
                what,
                need: end,
                have: self.b.len() as u64,
            });
        }
        // `end` fits in the buffer, so both convert to usize losslessly.
        Ok(&self.b[off as usize..end as usize])
    }

    fn u16(&self, off: u64, what: &'static str) -> Result<u16, ElfError> {
        let b = self.bytes(off, 2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&self, off: u64, what: &'static str) -> Result<u32, ElfError> {
        let b = self.bytes(off, 4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&self, off: u64, what: &'static str) -> Result<u64, ElfError> {
        let b = self.bytes(off, 8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
}

/// A decoded section header.
#[derive(Clone, Debug)]
struct Shdr {
    name: u32,
    sh_type: u32,
    flags: u64,
    offset: u64,
    size: u64,
    link: u32,
    info: u32,
}

fn read_shdr(r: &Reader<'_>, off: u64) -> Result<Shdr, ElfError> {
    Ok(Shdr {
        name: r.u32(off, "section header")?,
        sh_type: r.u32(off + 4, "section header")?,
        flags: r.u64(off + 8, "section header")?,
        // sh_addr at +16 is ignored: ET_REL sections are unallocated.
        offset: r.u64(off + 24, "section header")?,
        size: r.u64(off + 32, "section header")?,
        link: r.u32(off + 40, "section header")?,
        info: r.u32(off + 44, "section header")?,
    })
}

/// The file payload of a section (empty for `SHT_NOBITS`, which
/// occupies no file space).
fn section_data<'a>(r: &Reader<'a>, sh: &Shdr) -> Result<&'a [u8], ElfError> {
    if sh.sh_type == SHT_NOBITS {
        return Ok(&[]);
    }
    r.bytes(sh.offset, sh.size, "section contents")
}

/// A NUL-terminated UTF-8 string at `off` within string table `tab`.
fn get_str(tab: &[u8], off: u32, what: &str) -> Result<String, ElfError> {
    let start = off as usize;
    if start > tab.len() {
        return Err(ElfError::BadString(format!(
            "{what}: offset {off} outside string table of {} bytes",
            tab.len()
        )));
    }
    let rest = &tab[start..];
    let end = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| ElfError::BadString(format!("{what}: unterminated at offset {off}")))?;
    std::str::from_utf8(&rest[..end])
        .map(str::to_string)
        .map_err(|_| ElfError::BadString(format!("{what}: not UTF-8 at offset {off}")))
}

fn usize_of(v: u64, what: &str) -> Result<usize, ElfError> {
    usize::try_from(v).map_err(|_| ElfError::BadSection(format!("{what} {v:#x} exceeds usize")))
}

/// Parse an ELF64 `ET_REL` x86-64 object into an [`ObjectFile`].
///
/// # Errors
///
/// A typed [`ElfError`] for anything malformed: truncated or non-ELF
/// headers, unsupported class/endianness/type/machine, out-of-range
/// section offsets, string-table abuse, bogus symbol or relocation
/// records, or metadata that does not decode. Never panics.
pub fn parse(bytes: &[u8]) -> Result<ObjectFile, ElfError> {
    let r = Reader { b: bytes };

    // --- file header ----------------------------------------------------
    let ident = r.bytes(0, 16, "ELF identification")?;
    if ident[..4] != ELFMAG {
        return Err(ElfError::BadIdent("not an ELF file (bad magic)".into()));
    }
    if ident[4] != ELFCLASS64 {
        return Err(ElfError::BadIdent(format!(
            "class {} is not ELF64",
            ident[4]
        )));
    }
    if ident[5] != ELFDATA2LSB {
        return Err(ElfError::BadIdent(format!(
            "data encoding {} is not little-endian",
            ident[5]
        )));
    }
    if ident[6] != EV_CURRENT {
        return Err(ElfError::BadIdent(format!("ident version {}", ident[6])));
    }
    let e_type = r.u16(16, "file header")?;
    if e_type != ET_REL {
        return Err(ElfError::BadHeader(format!(
            "e_type {e_type} is not ET_REL (only relocatable objects are ingested)"
        )));
    }
    let e_machine = r.u16(18, "file header")?;
    if e_machine != EM_X86_64 {
        return Err(ElfError::BadHeader(format!(
            "e_machine {e_machine} is not x86-64"
        )));
    }
    let e_version = r.u32(20, "file header")?;
    if e_version != u32::from(EV_CURRENT) {
        return Err(ElfError::BadHeader(format!("e_version {e_version}")));
    }
    let e_shoff = r.u64(40, "file header")?;
    let e_shentsize = r.u16(58, "file header")?;
    let e_shnum = r.u16(60, "file header")?;
    let e_shstrndx = r.u16(62, "file header")?;
    if e_shnum == 0 {
        return Err(ElfError::BadHeader("no section headers".into()));
    }
    if e_shentsize as usize != SHDR_SIZE {
        return Err(ElfError::BadHeader(format!(
            "e_shentsize {e_shentsize} (expected {SHDR_SIZE})"
        )));
    }

    // --- section header table -------------------------------------------
    let mut shdrs = Vec::with_capacity(e_shnum as usize);
    for i in 0..u64::from(e_shnum) {
        let off = e_shoff
            .checked_add(i.checked_mul(SHDR_SIZE as u64).ok_or_else(|| {
                ElfError::BadSection("section header table size overflows".into())
            })?)
            .ok_or_else(|| ElfError::BadSection("section header offset overflows".into()))?;
        shdrs.push(read_shdr(&r, off)?);
    }
    if e_shstrndx as usize >= shdrs.len() {
        return Err(ElfError::BadSection(format!(
            "e_shstrndx {e_shstrndx} out of range ({} headers)",
            shdrs.len()
        )));
    }
    let shstr_hdr = &shdrs[e_shstrndx as usize];
    if shstr_hdr.sh_type != SHT_STRTAB {
        return Err(ElfError::BadSection(format!(
            "e_shstrndx names a section of type {} (not a string table)",
            shstr_hdr.sh_type
        )));
    }
    let shstrtab = section_data(&r, shstr_hdr)?;

    // --- classify sections ----------------------------------------------
    let mut sections: BTreeMap<SectionKind, Section> = BTreeMap::new();
    let mut kind_of_shndx: HashMap<usize, SectionKind> = HashMap::new();
    let mut symtab_hdr: Option<&Shdr> = None;
    let mut modinfo: Option<&Shdr> = None;
    let mut rela_hdrs: Vec<&Shdr> = Vec::new();
    for (i, sh) in shdrs.iter().enumerate().skip(1) {
        let name = get_str(shstrtab, sh.name, "section name")?;
        match sh.sh_type {
            SHT_SYMTAB => {
                if symtab_hdr.is_some() {
                    return Err(ElfError::BadSection("more than one .symtab".into()));
                }
                symtab_hdr = Some(sh);
                continue;
            }
            SHT_RELA => {
                rela_hdrs.push(sh);
                continue;
            }
            SHT_NULL | SHT_STRTAB => continue,
            _ => {}
        }
        if sh.flags & SHF_ALLOC == 0 {
            if name == MODINFO_SECTION {
                modinfo = Some(sh);
            }
            continue;
        }
        let Some(kind) = classify_section(&name, sh.sh_type, sh.flags) else {
            return Err(ElfError::Unclassifiable(format!(
                "`{name}` (type {}, flags {:#x})",
                sh.sh_type, sh.flags
            )));
        };
        let data = section_data(&r, sh)?;
        let size = usize_of(sh.size, "section size")?;
        if sections
            .insert(
                kind,
                Section {
                    bytes: data.to_vec(),
                    size,
                    relocs: Vec::new(),
                },
            )
            .is_some()
        {
            return Err(ElfError::DuplicateSection(kind.name()));
        }
        kind_of_shndx.insert(i, kind);
    }

    // --- symbol table ---------------------------------------------------
    // `names[i]` is the interned name of symtab entry `i`; `None` for
    // the null entry and for entries relocations may not target
    // (section/file symbols).
    fn intern(s: &str, pool: &mut HashSet<Arc<str>>) -> Arc<str> {
        if let Some(a) = pool.get(s) {
            return a.clone();
        }
        let a: Arc<str> = Arc::from(s);
        pool.insert(a.clone());
        a
    }
    let mut interned: HashSet<Arc<str>> = HashSet::new();
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut names: Vec<Option<Arc<str>>> = Vec::new();
    if let Some(st) = symtab_hdr {
        let data = section_data(&r, st)?;
        if data.len() % SYM_SIZE != 0 {
            return Err(ElfError::BadSymbol(format!(
                ".symtab size {} is not a multiple of {SYM_SIZE}",
                data.len()
            )));
        }
        let strtab_hdr = shdrs
            .get(st.link as usize)
            .filter(|sh| sh.sh_type == SHT_STRTAB)
            .ok_or_else(|| {
                ElfError::BadSection(format!(".symtab sh_link {} is not a string table", st.link))
            })?;
        let strtab = section_data(&r, strtab_hdr)?;
        let mut seen: HashSet<Arc<str>> = HashSet::new();
        for (i, e) in data.chunks_exact(SYM_SIZE).enumerate() {
            names.push(None);
            if i == 0 {
                continue; // the mandatory null entry
            }
            let st_name = u32::from_le_bytes(e[0..4].try_into().expect("4 bytes"));
            let st_info = e[4];
            let st_shndx = u16::from_le_bytes(e[6..8].try_into().expect("2 bytes"));
            let st_value = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
            let stype = st_info & 0xf;
            if stype == STT_SECTION || stype == STT_FILE {
                continue; // bookkeeping entries, not module symbols
            }
            let name = get_str(strtab, st_name, "symbol name")?;
            if name.is_empty() {
                return Err(ElfError::BadSymbol(format!("entry {i} has no name")));
            }
            let binding = match st_info >> 4 {
                STB_LOCAL => Binding::Local,
                STB_GLOBAL => Binding::Global,
                b => {
                    return Err(ElfError::BadSymbol(format!(
                        "`{name}`: unsupported binding {b}"
                    )))
                }
            };
            let def = if st_shndx == SHN_UNDEF {
                SymbolDef::Undefined
            } else {
                let kind = kind_of_shndx
                    .get(&(st_shndx as usize))
                    .copied()
                    .ok_or_else(|| {
                        ElfError::BadSymbol(format!(
                            "`{name}`: st_shndx {st_shndx} is not an ingested section"
                        ))
                    })?;
                let offset = usize_of(st_value, "symbol value")?;
                if offset > sections[&kind].size {
                    return Err(ElfError::BadSymbol(format!(
                        "`{name}`: offset {offset:#x} outside {kind} ({:#x} bytes)",
                        sections[&kind].size
                    )));
                }
                SymbolDef::Defined {
                    section: kind,
                    offset,
                }
            };
            let name = intern(&name, &mut interned);
            if !seen.insert(name.clone()) {
                return Err(ElfError::BadSymbol(format!("duplicate symbol `{name}`")));
            }
            *names.last_mut().expect("pushed above") = Some(name.clone());
            symbols.push(Symbol { name, def, binding });
        }
    }

    // --- relocations ----------------------------------------------------
    for rh in rela_hdrs {
        let target = rh.info as usize;
        let Some(&kind) = kind_of_shndx.get(&target) else {
            return Err(ElfError::BadReloc(format!(
                "RELA sh_info {target} does not name an ingested section"
            )));
        };
        let data = section_data(&r, rh)?;
        if data.len() % RELA_SIZE != 0 {
            return Err(ElfError::BadReloc(format!(
                "RELA size {} is not a multiple of {RELA_SIZE}",
                data.len()
            )));
        }
        let sec_size = sections[&kind].size as u64;
        for e in data.chunks_exact(RELA_SIZE) {
            let r_offset = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
            let r_info = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
            let r_addend = i64::from_le_bytes(e[16..24].try_into().expect("8 bytes"));
            let r_type = (r_info & 0xffff_ffff) as u32;
            let r_sym = (r_info >> 32) as usize;
            let Some(rkind) = reloc_kind(r_type) else {
                return Err(ElfError::BadReloc(format!(
                    "unsupported relocation type {r_type} in {kind}"
                )));
            };
            let symbol = names.get(r_sym).and_then(|n| n.clone()).ok_or_else(|| {
                ElfError::BadReloc(format!("symbol index {r_sym} names no relocatable symbol"))
            })?;
            // The patched field must lie inside the target section.
            let field = match rkind {
                adelie_obj::RelocKind::Abs64 => 8,
                _ => 4,
            };
            if r_offset.checked_add(field).is_none_or(|end| end > sec_size) {
                return Err(ElfError::BadReloc(format!(
                    "offset {r_offset:#x} (+{field}) outside {kind} ({sec_size:#x} bytes)"
                )));
            }
            let offset = usize_of(r_offset, "relocation offset")?;
            sections
                .get_mut(&kind)
                .expect("kind came from kind_of_shndx")
                .relocs
                .push(Reloc {
                    offset,
                    kind: rkind,
                    symbol,
                    addend: r_addend,
                });
        }
    }

    // --- module metadata -------------------------------------------------
    let mut name = String::from("module");
    let mut init = None;
    let mut exit = None;
    let mut update_pointers = None;
    let mut exports = Vec::new();
    if let Some(mh) = modinfo {
        let data = section_data(&r, mh)?;
        for entry in data.split(|&b| b == 0) {
            if entry.is_empty() {
                continue;
            }
            let s = std::str::from_utf8(entry)
                .map_err(|_| ElfError::BadModinfo("entry is not UTF-8".into()))?;
            let (k, v) = s
                .split_once('=')
                .ok_or_else(|| ElfError::BadModinfo(format!("entry `{s}` has no `=`")))?;
            match k {
                "name" => name = v.to_string(),
                "init" => init = Some(v.to_string()),
                "exit" => exit = Some(v.to_string()),
                "update_pointers" => update_pointers = Some(v.to_string()),
                "export" => exports.push(v.to_string()),
                // Unknown keys are forward-compatible metadata, not
                // corruption.
                _ => {}
            }
        }
    }

    Ok(ObjectFile {
        name,
        sections,
        symbols,
        exports,
        init,
        exit,
        update_pointers,
    })
}
