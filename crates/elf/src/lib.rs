//! # adelie-elf — real ELF64 relocatable-object ingestion
//!
//! Adelie modules are "relocatable kernel modules adapted for PIC"
//! (paper §4.1): on a real system they arrive as ELF64 `ET_REL` files
//! produced by the GCC plugin, and the loader finalizes their
//! relocations. This crate closes that gap for the simulated stack with
//! **zero external dependencies** (no `object`, no `goblin`, no
//! toolchain at test time):
//!
//! * [`emit`] serializes an [`adelie_obj::ObjectFile`] — the in-memory
//!   object the [`ObjectBuilder`](adelie_obj::ObjectBuilder)/`Asm`
//!   pipeline produces — into a spec-shaped ELF64 relocatable object
//!   (section headers, `.symtab`/`.strtab`/`.shstrtab`, RELA records),
//!   so fixtures are synthesized offline, in-process.
//! * [`parse`] ingests such an object (or any well-formed ELF64
//!   `ET_REL` for x86-64 using the supported relocation kinds) back
//!   into an [`ObjectFile`](adelie_obj::ObjectFile), which then flows through `Loader::load`,
//!   re-randomization, fleet migration, and the gadget scanner
//!   unchanged.
//!
//! ## Mapping
//!
//! | ELF                      | adelie                              |
//! |--------------------------|-------------------------------------|
//! | `R_X86_64_64` (1)        | [`RelocKind::Abs64`]                |
//! | `R_X86_64_PC32` (2)      | [`RelocKind::Pc32`]                 |
//! | `R_X86_64_PLT32` (4)     | [`RelocKind::Plt32`]                |
//! | `R_X86_64_GOTPCREL` (9)  | [`RelocKind::GotPcRel`]             |
//! | `R_X86_64_32S` (11)      | [`RelocKind::Abs32S`]               |
//! | `.fixed.text` (by name)  | [`SectionKind::FixedText`]          |
//! | `SHT_NOBITS` + alloc     | [`SectionKind::Bss`]                |
//! | `SHF_EXECINSTR`          | [`SectionKind::Text`]               |
//! | `SHF_WRITE`              | [`SectionKind::Data`]               |
//! | alloc, read-only         | [`SectionKind::Rodata`]             |
//!
//! Module metadata that has no ELF-native home (module name, init/exit
//! entry points, `update_pointers`, the export list) rides in a
//! non-alloc `.adelie.modinfo` section of `key=value\0` strings —
//! the same trick Linux's `.modinfo` uses — so a parse of an emitted
//! object reconstructs the [`ObjectFile`](adelie_obj::ObjectFile) losslessly.
//!
//! ## Robustness
//!
//! [`parse`] never panics on malformed input: every offset, size, and
//! index is bounds-checked with overflow-checked arithmetic, and every
//! failure is a typed [`ElfError`]. The property suite feeds it
//! truncated headers, out-of-range section offsets, and bogus
//! relocation symbols.
//!
//! # Example
//!
//! ```
//! use adelie_isa::Asm;
//! use adelie_obj::{Binding, ObjectBuilder, SectionKind};
//!
//! let mut b = ObjectBuilder::new("demo");
//! let mut f = Asm::new();
//! f.call_plt("kmalloc");
//! f.ret();
//! b.add_function("demo_init", &f, SectionKind::Text, Binding::Global)?;
//! b.export("demo_init");
//! let obj = b.finish();
//!
//! let bytes = adelie_elf::emit(&obj);
//! assert_eq!(&bytes[..4], b"\x7fELF");
//! let back = adelie_elf::parse(&bytes)?;
//! assert_eq!(back.name, "demo");
//! assert!(back.undefined_symbols().any(|s| &*s.name == "kmalloc"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use adelie_obj::{RelocKind, SectionKind};
use std::fmt;

mod emit;
mod parse;

pub use emit::emit;
pub use parse::parse;

/// The ELF64 constants this crate reads and writes (the subset an
/// `ET_REL` x86-64 object needs). Public so tests and tools can build
/// or pick apart images without magic numbers.
pub mod consts {
    /// `\x7fELF`.
    pub const ELFMAG: [u8; 4] = [0x7f, b'E', b'L', b'F'];
    /// `EI_CLASS`: 64-bit objects.
    pub const ELFCLASS64: u8 = 2;
    /// `EI_DATA`: little-endian.
    pub const ELFDATA2LSB: u8 = 1;
    /// `EI_VERSION` / `e_version`: the only defined ELF version.
    pub const EV_CURRENT: u8 = 1;
    /// `e_type`: relocatable file.
    pub const ET_REL: u16 = 1;
    /// `e_machine`: AMD x86-64.
    pub const EM_X86_64: u16 = 62;
    /// Size of the ELF64 file header.
    pub const EHDR_SIZE: usize = 64;
    /// Size of one ELF64 section header.
    pub const SHDR_SIZE: usize = 64;
    /// Size of one ELF64 symbol-table entry.
    pub const SYM_SIZE: usize = 24;
    /// Size of one ELF64 RELA entry.
    pub const RELA_SIZE: usize = 24;

    /// `sh_type`: inactive header.
    pub const SHT_NULL: u32 = 0;
    /// `sh_type`: program-defined contents.
    pub const SHT_PROGBITS: u32 = 1;
    /// `sh_type`: symbol table.
    pub const SHT_SYMTAB: u32 = 2;
    /// `sh_type`: string table.
    pub const SHT_STRTAB: u32 = 3;
    /// `sh_type`: relocations with explicit addends.
    pub const SHT_RELA: u32 = 4;
    /// `sh_type`: zero-initialized (occupies no file space).
    pub const SHT_NOBITS: u32 = 8;

    /// `sh_flags`: writable at run time.
    pub const SHF_WRITE: u64 = 1;
    /// `sh_flags`: occupies memory at run time.
    pub const SHF_ALLOC: u64 = 2;
    /// `sh_flags`: executable machine instructions.
    pub const SHF_EXECINSTR: u64 = 4;

    /// `st_info` binding: local symbol.
    pub const STB_LOCAL: u8 = 0;
    /// `st_info` binding: global symbol.
    pub const STB_GLOBAL: u8 = 1;
    /// `st_info` type: unspecified.
    pub const STT_NOTYPE: u8 = 0;
    /// `st_info` type: data object.
    pub const STT_OBJECT: u8 = 1;
    /// `st_info` type: function.
    pub const STT_FUNC: u8 = 2;
    /// `st_info` type: the section itself.
    pub const STT_SECTION: u8 = 3;
    /// `st_info` type: source-file name.
    pub const STT_FILE: u8 = 4;
    /// `st_shndx`: undefined symbol.
    pub const SHN_UNDEF: u16 = 0;

    /// `R_X86_64_64`.
    pub const R_X86_64_64: u32 = 1;
    /// `R_X86_64_PC32`.
    pub const R_X86_64_PC32: u32 = 2;
    /// `R_X86_64_PLT32`.
    pub const R_X86_64_PLT32: u32 = 4;
    /// `R_X86_64_GOTPCREL`.
    pub const R_X86_64_GOTPCREL: u32 = 9;
    /// `R_X86_64_32S`.
    pub const R_X86_64_32S: u32 = 11;

    /// The metadata section carrying `key=value\0` module info.
    pub const MODINFO_SECTION: &str = ".adelie.modinfo";
}

/// Typed parse failure. [`parse`] returns these for every malformed
/// input — it never panics and never wraps arithmetic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ElfError {
    /// The buffer is smaller than the structure being read. `what`
    /// names the structure; `need`/`have` are byte counts.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes required.
        need: u64,
        /// Bytes available.
        have: u64,
    },
    /// Not an ELF file at all (bad magic), or not ELF64/little-endian/
    /// version-1.
    BadIdent(String),
    /// The file header is well-formed ELF but not an x86-64 `ET_REL`
    /// object this crate can ingest.
    BadHeader(String),
    /// A section header is inconsistent (offset/size outside the file,
    /// arithmetic would overflow, bad `sh_link`/`sh_info`, …).
    BadSection(String),
    /// Two sections classify to the same [`SectionKind`]; merging would
    /// scramble relocation offsets, so the object is rejected.
    DuplicateSection(&'static str),
    /// An `SHF_ALLOC` section fits none of the five [`SectionKind`]s.
    Unclassifiable(String),
    /// A string-table reference is out of range, unterminated, or not
    /// UTF-8.
    BadString(String),
    /// A symbol-table entry is malformed (bad binding, bad section
    /// index, value outside its section, duplicate name).
    BadSymbol(String),
    /// A relocation record is malformed (unknown type, bogus symbol
    /// index, field outside its section).
    BadReloc(String),
    /// The `.adelie.modinfo` payload is malformed.
    BadModinfo(String),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            ElfError::BadIdent(s) => write!(f, "bad ELF identification: {s}"),
            ElfError::BadHeader(s) => write!(f, "unsupported ELF header: {s}"),
            ElfError::BadSection(s) => write!(f, "bad section header: {s}"),
            ElfError::DuplicateSection(k) => {
                write!(f, "two sections classify as {k}")
            }
            ElfError::Unclassifiable(s) => {
                write!(f, "allocatable section fits no SectionKind: {s}")
            }
            ElfError::BadString(s) => write!(f, "bad string reference: {s}"),
            ElfError::BadSymbol(s) => write!(f, "bad symbol: {s}"),
            ElfError::BadReloc(s) => write!(f, "bad relocation: {s}"),
            ElfError::BadModinfo(s) => write!(f, "bad .adelie.modinfo: {s}"),
        }
    }
}

impl std::error::Error for ElfError {}

/// The `r_type` for a [`RelocKind`] (the exact x86-64 psABI numbers).
pub fn reloc_type(kind: RelocKind) -> u32 {
    match kind {
        RelocKind::Abs64 => consts::R_X86_64_64,
        RelocKind::Pc32 => consts::R_X86_64_PC32,
        RelocKind::Plt32 => consts::R_X86_64_PLT32,
        RelocKind::GotPcRel => consts::R_X86_64_GOTPCREL,
        RelocKind::Abs32S => consts::R_X86_64_32S,
    }
}

/// The [`RelocKind`] for an `r_type`, or `None` for any relocation this
/// pipeline does not model.
pub fn reloc_kind(r_type: u32) -> Option<RelocKind> {
    match r_type {
        consts::R_X86_64_64 => Some(RelocKind::Abs64),
        consts::R_X86_64_PC32 => Some(RelocKind::Pc32),
        consts::R_X86_64_PLT32 => Some(RelocKind::Plt32),
        consts::R_X86_64_GOTPCREL => Some(RelocKind::GotPcRel),
        consts::R_X86_64_32S => Some(RelocKind::Abs32S),
        _ => None,
    }
}

/// Classify an `SHF_ALLOC` section into one of the five
/// [`SectionKind`]s — `.fixed.text` is recognized by *name* (its flags
/// are identical to `.text`; the split is an Adelie concept, paper
/// Fig. 2b), everything else by type and flags. Returns `None` when
/// the section fits no kind.
pub fn classify_section(name: &str, sh_type: u32, flags: u64) -> Option<SectionKind> {
    if flags & consts::SHF_ALLOC == 0 {
        return None;
    }
    if name == ".fixed.text" || name.starts_with(".fixed.text.") {
        return Some(SectionKind::FixedText);
    }
    if sh_type == consts::SHT_NOBITS {
        return Some(SectionKind::Bss);
    }
    if sh_type != consts::SHT_PROGBITS {
        return None;
    }
    if flags & consts::SHF_EXECINSTR != 0 {
        Some(SectionKind::Text)
    } else if flags & consts::SHF_WRITE != 0 {
        Some(SectionKind::Data)
    } else {
        Some(SectionKind::Rodata)
    }
}

/// The conventional (`sh_flags`, `sh_type`) pair for a [`SectionKind`],
/// as the emitter writes it.
pub fn section_encoding(kind: SectionKind) -> (u64, u32) {
    use consts::*;
    match kind {
        SectionKind::Text | SectionKind::FixedText => (SHF_ALLOC | SHF_EXECINSTR, SHT_PROGBITS),
        SectionKind::Data => (SHF_ALLOC | SHF_WRITE, SHT_PROGBITS),
        SectionKind::Rodata => (SHF_ALLOC, SHT_PROGBITS),
        SectionKind::Bss => (SHF_ALLOC | SHF_WRITE, SHT_NOBITS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reloc_mapping_is_a_bijection_over_supported_kinds() {
        for kind in [
            RelocKind::Abs64,
            RelocKind::Pc32,
            RelocKind::Plt32,
            RelocKind::GotPcRel,
            RelocKind::Abs32S,
        ] {
            assert_eq!(reloc_kind(reloc_type(kind)), Some(kind));
        }
        // Unsupported psABI types stay unsupported, not misclassified.
        for t in [0, 3, 5, 6, 7, 8, 10, 12, 24, 26, 42] {
            assert_eq!(reloc_kind(t), None, "type {t}");
        }
    }

    #[test]
    fn classification_matches_emission() {
        for kind in SectionKind::ALL {
            let (flags, sh_type) = section_encoding(kind);
            assert_eq!(
                classify_section(kind.name(), sh_type, flags),
                Some(kind),
                "{kind} round-trip"
            );
        }
    }

    #[test]
    fn classification_edge_cases() {
        use consts::*;
        // Non-alloc sections are skipped, whatever their name.
        assert_eq!(classify_section(".text", SHT_PROGBITS, 0), None);
        assert_eq!(classify_section(".comment", SHT_PROGBITS, 0), None);
        // `.fixed.text` wins over the exec flag (same flags as .text).
        assert_eq!(
            classify_section(".fixed.text", SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR),
            Some(SectionKind::FixedText)
        );
        // Sub-sections keep the kind.
        assert_eq!(
            classify_section(
                ".fixed.text.unlikely",
                SHT_PROGBITS,
                SHF_ALLOC | SHF_EXECINSTR
            ),
            Some(SectionKind::FixedText)
        );
        // An executable section not named .fixed.text is movable text,
        // whatever it is called.
        assert_eq!(
            classify_section(".text.hot", SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR),
            Some(SectionKind::Text)
        );
        // Alloc + writable + progbits is data; read-only is rodata.
        assert_eq!(
            classify_section(".data.local", SHT_PROGBITS, SHF_ALLOC | SHF_WRITE),
            Some(SectionKind::Data)
        );
        assert_eq!(
            classify_section(".rodata.str1", SHT_PROGBITS, SHF_ALLOC),
            Some(SectionKind::Rodata)
        );
        // NOBITS is bss even under a different name.
        assert_eq!(
            classify_section(".dynbss", SHT_NOBITS, SHF_ALLOC | SHF_WRITE),
            Some(SectionKind::Bss)
        );
        // An alloc section of an unmodeled type fits nothing.
        assert_eq!(classify_section(".note", 7, SHF_ALLOC), None);
    }
}
