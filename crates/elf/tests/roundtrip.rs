//! Emit → parse round-trip: the parsed [`ObjectFile`] must carry
//! exactly the sections, symbols, relocations, and metadata the builder
//! produced, and re-emission must be byte-stable.

use adelie_elf::{consts, emit, parse};
use adelie_isa::{Asm, Reg};
use adelie_obj::{Binding, ObjectBuilder, ObjectFile, SectionKind};

fn simple_fn() -> Asm {
    let mut a = Asm::new();
    a.mov_imm32(Reg::Rax, 7);
    a.ret();
    a
}

/// A fixture exercising all five section kinds, all five relocation
/// kinds, local and global bindings, imports, and every metadata field.
fn rich_object() -> ObjectFile {
    let mut b = ObjectBuilder::new("rt-demo");
    let mut f = Asm::new();
    f.call_plt("rt_helper"); // PLT32, local target
    f.call_got("kmalloc"); // GOTPCREL, import
    f.call_pc32("printk"); // PC32, import
    f.lea_sym(Reg::Rdi, "rt_msg"); // PC32, rodata target
    f.movabs_sym(Reg::Rsi, "rt_table"); // ABS64
    f.mov_imm_sym32(Reg::Rdx, "rt_state"); // ABS32S
    f.ret();
    b.add_function("rt_init", &f, SectionKind::Text, Binding::Global)
        .unwrap();
    b.add_function("rt_helper", &simple_fn(), SectionKind::Text, Binding::Local)
        .unwrap();
    b.add_function(
        "rt_exit",
        &simple_fn(),
        SectionKind::FixedText,
        Binding::Global,
    )
    .unwrap();
    let mut tbl = Asm::new();
    tbl.quad_sym("rt_init");
    tbl.quad_sym("rt_helper");
    b.add_data_asm("rt_table", &tbl, SectionKind::Data, Binding::Global)
        .unwrap();
    b.add_data("rt_msg", b"hello\0", SectionKind::Rodata, Binding::Local)
        .unwrap();
    b.add_bss("rt_state", 256, Binding::Local).unwrap();
    b.export("rt_init");
    b.export("rt_exit");
    b.set_init("rt_init");
    b.set_exit("rt_exit");
    b.set_update_pointers("rt_init");
    b.finish()
}

fn sorted_symbols(obj: &ObjectFile) -> Vec<adelie_obj::Symbol> {
    let mut v = obj.symbols.clone();
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v
}

#[test]
fn emitted_object_is_elf() {
    let bytes = emit(&rich_object());
    assert_eq!(&bytes[..4], &consts::ELFMAG);
    assert_eq!(bytes[4], consts::ELFCLASS64);
    assert_eq!(bytes[5], consts::ELFDATA2LSB);
    assert_eq!(
        u16::from_le_bytes([bytes[16], bytes[17]]),
        consts::ET_REL,
        "e_type"
    );
    assert_eq!(
        u16::from_le_bytes([bytes[18], bytes[19]]),
        consts::EM_X86_64,
        "e_machine"
    );
}

#[test]
fn parse_reconstructs_the_object_losslessly() {
    let obj = rich_object();
    let back = parse(&emit(&obj)).expect("own emission must parse");
    assert_eq!(back.name, obj.name);
    assert_eq!(back.init, obj.init);
    assert_eq!(back.exit, obj.exit);
    assert_eq!(back.update_pointers, obj.update_pointers);
    assert_eq!(back.exports, obj.exports);
    // Sections: identical kinds, bytes, sizes, and relocation streams
    // (same order, offsets, kinds, symbols, addends).
    assert_eq!(
        back.sections.keys().collect::<Vec<_>>(),
        obj.sections.keys().collect::<Vec<_>>()
    );
    for (kind, sec) in &obj.sections {
        let b = &back.sections[kind];
        assert_eq!(b.bytes, sec.bytes, "{kind} bytes");
        assert_eq!(b.size, sec.size, "{kind} size");
        assert_eq!(b.relocs, sec.relocs, "{kind} relocs");
    }
    // Symbols: the same set (ELF reorders locals before globals).
    assert_eq!(sorted_symbols(&back), sorted_symbols(&obj));
    // And the reloc histogram covers every supported kind.
    let h = back.reloc_histogram();
    for kind in [
        adelie_obj::RelocKind::Abs64,
        adelie_obj::RelocKind::Pc32,
        adelie_obj::RelocKind::Plt32,
        adelie_obj::RelocKind::GotPcRel,
        adelie_obj::RelocKind::Abs32S,
    ] {
        assert!(
            h.get(&kind).copied().unwrap_or(0) >= 1,
            "{kind:?} exercised"
        );
    }
}

#[test]
fn reemission_is_byte_stable() {
    let first = emit(&rich_object());
    let second = emit(&parse(&first).unwrap());
    assert_eq!(first, second, "emit ∘ parse must be the identity on images");
}

#[test]
fn minimal_object_round_trips() {
    let mut b = ObjectBuilder::new("tiny");
    b.add_function("t", &simple_fn(), SectionKind::Text, Binding::Global)
        .unwrap();
    let obj = b.finish();
    let back = parse(&emit(&obj)).unwrap();
    assert_eq!(back.name, "tiny");
    assert_eq!(back.init, None);
    assert_eq!(back.exports, Vec::<String>::new());
    assert_eq!(
        back.sections[&SectionKind::Text].bytes,
        obj.sections[&SectionKind::Text].bytes
    );
    assert_eq!(sorted_symbols(&back), sorted_symbols(&obj));
}

#[test]
fn bss_occupies_no_file_space() {
    let mut b = ObjectBuilder::new("bssy");
    b.add_bss("big", 1 << 20, Binding::Local).unwrap();
    let obj = b.finish();
    let bytes = emit(&obj);
    assert!(
        bytes.len() < 4096,
        "1 MiB of .bss must not be serialized ({} bytes)",
        bytes.len()
    );
    let back = parse(&bytes).unwrap();
    let bss = &back.sections[&SectionKind::Bss];
    assert_eq!(bss.size, 1 << 20);
    assert!(bss.bytes.is_empty());
}
