//! Malformed-ELF property suite: truncated headers, out-of-range
//! section offsets, bogus relocation symbols, and random byte
//! corruption must all surface as a typed [`ElfError`] — never a panic,
//! never an out-of-bounds read.

use adelie_elf::{consts, emit, parse, ElfError};
use adelie_isa::{Asm, Reg};
use adelie_obj::{Binding, ObjectBuilder, SectionKind};
use proptest::prelude::*;

/// A valid fixture to mutate (relocations, imports, every section).
fn fixture() -> Vec<u8> {
    let mut b = ObjectBuilder::new("mut");
    let mut f = Asm::new();
    f.call_plt("mut_helper");
    f.call_got("kmalloc");
    f.lea_sym(Reg::Rdi, "mut_msg");
    f.ret();
    b.add_function("mut_init", &f, SectionKind::Text, Binding::Global)
        .unwrap();
    let mut h = Asm::new();
    h.mov_imm32(Reg::Rax, 1);
    h.ret();
    b.add_function("mut_helper", &h, SectionKind::Text, Binding::Local)
        .unwrap();
    b.add_data("mut_msg", b"m\0", SectionKind::Rodata, Binding::Local)
        .unwrap();
    b.add_bss("mut_buf", 64, Binding::Local).unwrap();
    b.export("mut_init");
    b.set_init("mut_init");
    emit(&b.finish())
}

fn put_u64(bytes: &mut [u8], off: usize, v: u64) {
    bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn shoff(bytes: &[u8]) -> usize {
    u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize
}

fn shnum(bytes: &[u8]) -> usize {
    u16::from_le_bytes(bytes[60..62].try_into().unwrap()) as usize
}

/// Whether section `i` occupies file space (`SHT_NOBITS` does not, so
/// its offset/size never touch the file and corrupting them is
/// legitimately ignored — the loader's overflow audit guards sizes).
fn has_file_data(bytes: &[u8], i: usize) -> bool {
    let h = shoff(bytes) + i * consts::SHDR_SIZE;
    u32::from_le_bytes(bytes[h + 4..h + 8].try_into().unwrap()) != consts::SHT_NOBITS
}

#[test]
fn truncated_file_header_is_truncated_error() {
    let full = fixture();
    for len in 0..consts::EHDR_SIZE {
        match parse(&full[..len]) {
            Err(ElfError::Truncated { .. }) => {}
            other => panic!("prefix of {len} bytes must be Truncated, got {other:?}"),
        }
    }
}

#[test]
fn section_offset_beyond_file_is_rejected() {
    let full = fixture();
    let base = shoff(&full);
    for i in (1..shnum(&full)).filter(|&i| has_file_data(&full, i)) {
        let mut bytes = full.clone();
        // sh_offset lives at +24 within the 64-byte header.
        put_u64(&mut bytes, base + i * consts::SHDR_SIZE + 24, u64::MAX - 7);
        assert!(
            parse(&bytes).is_err(),
            "section {i} offset near u64::MAX must not parse"
        );
    }
}

#[test]
fn section_size_overflowing_the_offset_is_rejected() {
    let full = fixture();
    let base = shoff(&full);
    for i in (1..shnum(&full)).filter(|&i| has_file_data(&full, i)) {
        let mut bytes = full.clone();
        put_u64(&mut bytes, base + i * consts::SHDR_SIZE + 32, u64::MAX);
        assert!(
            parse(&bytes).is_err(),
            "section {i} size u64::MAX must not parse"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any truncation of a valid image either still parses (trailing
    /// padding) or fails with a typed error — it never panics.
    #[test]
    fn truncation_never_panics(frac in 0usize..4096) {
        let full = fixture();
        let len = frac % full.len();
        let _ = parse(&full[..len]);
    }

    /// Single-byte corruption anywhere in the image never panics, and
    /// corrupting the magic always fails cleanly.
    #[test]
    fn byte_corruption_never_panics(pos in 0usize..4096, val in any::<u8>()) {
        let mut bytes = fixture();
        let pos = pos % bytes.len();
        bytes[pos] = val;
        let _ = parse(&bytes);
    }

    /// Relocations with bogus symbol indices are rejected, whatever the
    /// index.
    #[test]
    fn bogus_reloc_symbol_is_rejected(idx in 64u64..u32::MAX as u64) {
        let full = fixture();
        let base = shoff(&full);
        // Find a RELA section and stamp a huge symbol index into its
        // first record's r_info (keeping a supported type).
        let mut found = false;
        for i in 1..shnum(&full) {
            let h = base + i * consts::SHDR_SIZE;
            let sh_type = u32::from_le_bytes(full[h + 4..h + 8].try_into().unwrap());
            if sh_type != 4 {
                continue;
            }
            let off = u64::from_le_bytes(full[h + 24..h + 32].try_into().unwrap()) as usize;
            let mut bytes = full.clone();
            put_u64(
                &mut bytes,
                off + 8,
                (idx << 32) | u64::from(consts::R_X86_64_PLT32),
            );
            match parse(&bytes) {
                Err(ElfError::BadReloc(_)) => found = true,
                other => return Err(TestCaseError::Fail(format!(
                    "bogus symbol index {idx} must be BadReloc, got {other:?}"
                ))),
            }
        }
        prop_assert!(found, "fixture must contain a RELA section");
    }

    /// Unsupported relocation types are rejected as BadReloc.
    #[test]
    fn unsupported_reloc_type_is_rejected(t in 12u32..200) {
        let full = fixture();
        let base = shoff(&full);
        for i in 1..shnum(&full) {
            let h = base + i * consts::SHDR_SIZE;
            let sh_type = u32::from_le_bytes(full[h + 4..h + 8].try_into().unwrap());
            if sh_type != 4 {
                continue;
            }
            let off = u64::from_le_bytes(full[h + 24..h + 32].try_into().unwrap()) as usize;
            let mut bytes = full.clone();
            // Keep the valid symbol index, replace the type.
            let info = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            put_u64(&mut bytes, off + 8, (info & !0xffff_ffff) | u64::from(t));
            match parse(&bytes) {
                Err(ElfError::BadReloc(_)) => {}
                other => return Err(TestCaseError::Fail(format!(
                    "unsupported type {t} must be BadReloc, got {other:?}"
                ))),
            }
        }
    }
}
