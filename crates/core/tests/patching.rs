//! Loader patch verification: read back the *loaded* text bytes and
//! check the Fig. 4 rewrites and PLT/GOT machinery at the byte level —
//! the same inspection an auditor would do with objdump on a live
//! system.

use adelie_core::ModuleRegistry;
use adelie_isa::{decode_all, Insn, Mem, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_vmem::PAGE_SIZE;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn spec_with_local_call() -> ModuleSpec {
    let mut spec = ModuleSpec::new("patchdemo");
    spec.funcs.push(FuncSpec::exported(
        "entry",
        vec![
            MOp::CallLocal("helper".into()),
            MOp::CallKernel("kmalloc".into()),
            MOp::LoadLocalSym(Reg::Rdi, "entry".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::local(
        "helper",
        vec![MOp::Insn(Insn::MovImm32(Reg::Rax, 1)), MOp::Ret],
    ));
    spec
}

fn loaded_text(kernel: &Arc<Kernel>, module: &adelie_core::LoadedModule) -> Vec<u8> {
    let base = module.movable_base.load(Ordering::Relaxed);
    let pages = module.movable.groups[0].pages;
    let mut text = vec![0u8; pages * PAGE_SIZE];
    kernel
        .space
        .read_bytes(&kernel.phys, base, &mut text)
        .unwrap();
    text
}

#[test]
fn fig4_call_patch_bytes() {
    // PIC without retpoline: the compiler emitted `FF 15` (call *GOT);
    // the loader must have rewritten local calls to `E8 rel32; 90`.
    let opts = TransformOptions::pic(false);
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let obj = transform(&spec_with_local_call(), &opts).unwrap();
    // Pre-link: the object byte stream holds the indirect form.
    let pre = &obj.section(adelie_obj::SectionKind::Text).unwrap().bytes;
    assert!(
        pre.windows(2).any(|w| w == [0xFF, 0x15]),
        "object should contain call *GOTPCREL sites"
    );
    let module = registry.load(&obj, &opts).unwrap();
    assert_eq!(module.stats.patched_calls, 1, "{:?}", module.stats);
    assert_eq!(module.stats.patched_movs, 1);
    let text = loaded_text(&kernel, &module);
    let entry_off = module.immovable_syms["entry"] - module.movable_base.load(Ordering::Relaxed);
    // Disassemble the entry function: first insn must now be a direct
    // call followed by the Fig. 4 nop pad.
    let stream = decode_all(&text[entry_off as usize..entry_off as usize + 6]).unwrap();
    assert!(
        matches!(stream[0].1, Insn::CallRel(_)),
        "local call patched to direct: {:?}",
        stream[0].1
    );
    assert_eq!(stream[1].1, Insn::Nop, "nop pad after patched call");
    // The kernel call stays indirect through the GOT (64-bit target).
    let rest = &text[entry_off as usize + 6..entry_off as usize + 12];
    assert_eq!(&rest[..2], &[0xFF, 0x15], "kernel import stays via GOT");
}

#[test]
fn fig4_mov_to_lea_patch() {
    let opts = TransformOptions::pic(false);
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let obj = transform(&spec_with_local_call(), &opts).unwrap();
    let module = registry.load(&obj, &opts).unwrap();
    let text = loaded_text(&kernel, &module);
    let entry_off =
        (module.immovable_syms["entry"] - module.movable_base.load(Ordering::Relaxed)) as usize;
    // Layout: call(5)+nop(1) + FF15(6) + [patched lea (7)] + ret.
    let lea_bytes = &text[entry_off + 12..entry_off + 19];
    let (insn, _) = adelie_isa::decode(lea_bytes).unwrap();
    match insn {
        Insn::Lea {
            dst: Reg::Rdi,
            addr: Mem::RipRel(_),
        } => {}
        other => panic!("LoadLocalSym should relax to lea, got {other}"),
    }
}

#[test]
fn retpoline_plt_stub_shape() {
    // With retpoline, kernel calls go through a stub: mov rax,[GOT];
    // jmp thunk — and the thunk ends in mov [rsp],rax; ret.
    let opts = TransformOptions::pic(true);
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let obj = transform(&spec_with_local_call(), &opts).unwrap();
    let module = registry.load(&obj, &opts).unwrap();
    assert!(module.stats.plt_stubs >= 1);
    let text = loaded_text(&kernel, &module);
    let plt_off = module.movable.plt_off as usize;
    let (first, len) = adelie_isa::decode(&text[plt_off..]).unwrap();
    assert!(
        matches!(
            first,
            Insn::MovLoad {
                dst: Reg::Rax,
                src: Mem::RipRel(_)
            }
        ),
        "stub loads the GOT slot into rax: {first}"
    );
    let (second, _) = adelie_isa::decode(&text[plt_off + len..]).unwrap();
    assert!(matches!(second, Insn::JmpRel(_)), "stub jumps to the thunk");
}

#[test]
fn patched_code_still_correct_after_rerand() {
    // The relaxed (rip-relative) forms must stay correct when the whole
    // part moves — that is the point of patching only same-part refs.
    let opts = TransformOptions::rerandomizable(false);
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let mut spec = spec_with_local_call();
    spec.init = None;
    let obj = transform(&spec, &opts).unwrap();
    let module = registry.load(&obj, &opts).unwrap();
    let entry = module.export("entry").unwrap();
    let mut vm = kernel.vm();
    // entry: helper() then kmalloc(rdi) — returns a fresh heap pointer.
    let heap_base = adelie_kernel::layout::HEAP_BASE;
    assert!(vm.call(entry, &[64]).unwrap() >= heap_base);
    for _ in 0..4 {
        adelie_core::rerandomize_module(&kernel, &registry, &module).unwrap();
        assert!(vm.call(entry, &[64]).unwrap() >= heap_base);
    }
}

#[test]
fn got_slot_contents_point_at_kernel_symbols() {
    let opts = TransformOptions::pic(false);
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let obj = transform(&spec_with_local_call(), &opts).unwrap();
    let module = registry.load(&obj, &opts).unwrap();
    let base = module.movable_base.load(Ordering::Relaxed);
    let kmalloc = kernel.symbols.lookup("kmalloc").unwrap();
    let mut found = false;
    for i in 0..module.movable.fgot_slots {
        let slot = base + module.movable.fgot_off + (i * 8) as u64;
        if kernel.space.read_u64(&kernel.phys, slot).unwrap() == kmalloc {
            found = true;
        }
    }
    assert!(found, "fixed GOT must hold the kmalloc kernel address");
}
