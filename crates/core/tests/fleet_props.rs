//! Property suite for fleet placement and migration: arbitrary
//! install / migrate / unload / re-randomize interleavings must never
//! produce cross-shard VA overlap, a dangling fixed-GOT entry, or a
//! module unreachable from its owning shard's symbol table.

use adelie_core::{ColdTierConfig, Fleet, LoadWeighted, Pinned, RoundRobin, ShardPlacement};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{layout, FleetConfig, ShardedKernel};
use adelie_plugin::{transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec, TransformOptions};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// A small, fast driver: `{name}_calc(x) = x + 9` plus a pointer table
/// (adjust slots) and a kernel import (fixed-GOT entry to audit).
fn spec(name: &str) -> ModuleSpec {
    let mut s = ModuleSpec::new(name);
    s.funcs.push(FuncSpec::exported(
        &format!("{name}_calc"),
        vec![
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            MOp::Insn(Insn::AluImm {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 9,
            }),
            MOp::Ret,
        ],
    ));
    s.funcs.push(FuncSpec::exported(
        &format!("{name}_touch"),
        vec![
            MOp::Insn(Insn::MovImm32(Reg::Rdi, 32)),
            MOp::CallKernel("kmalloc".into()),
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rax,
            }),
            MOp::CallKernel("kfree".into()),
            MOp::Ret,
        ],
    ));
    s.data.push(DataSpec {
        name: format!("{name}_ops"),
        readonly: false,
        init: DataInit::PtrTable(vec![format!("{name}_calc")]),
    });
    s
}

/// Check every fleet invariant. Returns a violation description or
/// `None`.
fn check_invariants(fleet: &Fleet, installed: &[String]) -> Option<String> {
    // (1) Window confinement + pairwise disjointness of all live spans
    // (the shared `Fleet::verify_layout` checker: cross-shard AND
    // within-shard).
    if let Some(v) = fleet.verify_layout().into_iter().next() {
        return Some(v);
    }
    // (2) Fixed GOTs + export publication in the owning shard.
    let integrity = fleet.verify_symbol_integrity();
    if let Some(v) = integrity.first() {
        return Some(v.clone());
    }
    // (3) Every installed module is reachable from exactly its owning
    // shard — and actually executes there.
    for name in installed {
        let Some(owner) = fleet.shard_of(name) else {
            return Some(format!("{name} vanished from the catalog"));
        };
        let export = format!("{name}_calc");
        for shard in 0..fleet.len() {
            let visible = fleet.kernel(shard).symbols.lookup(&export).is_some();
            if shard == owner && !visible {
                return Some(format!(
                    "{name} unreachable from owning shard {owner}'s symbol table"
                ));
            }
            if shard != owner && visible {
                return Some(format!(
                    "{name} leaked into shard {shard}'s symbol table (owner {owner})"
                ));
            }
        }
        let module = fleet.registry(owner).get(name).expect("registry entry");
        let entry = module.export(&export).expect("export");
        let kernel = fleet.kernel(owner).clone();
        let mut vm = kernel.vm();
        match vm.call(entry, &[33]) {
            Ok(42) => {}
            other => {
                return Some(format!(
                    "{name} misbehaves in owning shard {owner}: {other:?}"
                ))
            }
        }
    }
    None
}

/// The invariants of a fleet with the cold tier enabled, where a
/// catalog entry may legitimately be non-resident. Resident modules
/// get the full treatment (visibility confined to the owner, GOT
/// audit via `verify_symbol_integrity`, real execution); cold modules
/// must be *gone* — resident nowhere, visible in no shard's symbol
/// table — while staying in the catalog. No module may be resident in
/// two registries at once (lost/duplicated check).
fn check_cold_invariants(fleet: &Fleet, names: &[String]) -> Option<String> {
    if let Some(v) = fleet.verify_layout().into_iter().next() {
        return Some(v);
    }
    if let Some(v) = fleet.verify_symbol_integrity().first() {
        return Some(v.clone());
    }
    for name in names {
        let Some(owner) = fleet.shard_of(name) else {
            return Some(format!("{name} vanished from the catalog"));
        };
        let export = format!("{name}_calc");
        let resident_in: Vec<usize> = (0..fleet.len())
            .filter(|&s| fleet.registry(s).get(name).is_some())
            .collect();
        if resident_in.len() > 1 {
            return Some(format!("{name} duplicated across shards {resident_in:?}"));
        }
        if resident_in.first() == Some(&owner) {
            for shard in 0..fleet.len() {
                let visible = fleet.kernel(shard).symbols.lookup(&export).is_some();
                if shard == owner && !visible {
                    return Some(format!(
                        "{name} unreachable from owning shard {owner}'s symbol table"
                    ));
                }
                if shard != owner && visible {
                    return Some(format!(
                        "{name} leaked into shard {shard}'s symbol table (owner {owner})"
                    ));
                }
            }
            let module = fleet.registry(owner).get(name).expect("resident entry");
            let entry = module.export(&export).expect("export");
            let kernel = fleet.kernel(owner).clone();
            let mut vm = kernel.vm();
            match vm.call(entry, &[33]) {
                Ok(42) => {}
                other => {
                    return Some(format!(
                        "{name} misbehaves in owning shard {owner}: {other:?}"
                    ))
                }
            }
        } else {
            if let Some(s) = resident_in.first() {
                return Some(format!(
                    "{name} resident in shard {s} but the catalog owner is {owner}"
                ));
            }
            for shard in 0..fleet.len() {
                if fleet.kernel(shard).symbols.lookup(&export).is_some() {
                    return Some(format!(
                        "cold module {name} still visible in shard {shard}'s symbol table"
                    ));
                }
            }
        }
    }
    None
}

fn placement_for(kind: u8) -> Box<dyn ShardPlacement> {
    match kind % 3 {
        0 => Box::new(RoundRobin::new()),
        1 => Box::new(LoadWeighted::new()),
        _ => Box::new(Pinned::new(HashMap::new(), 1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The fleet contract under arbitrary op interleavings.
    #[test]
    fn fleet_ops_preserve_layout_and_symbol_invariants(
        placement_kind in 0u8..3,
        shards in 2usize..5,
        ops in proptest::collection::vec((0u8..4, 0usize..8, 0usize..8), 1..24)
    ) {
        let sharded = ShardedKernel::new(FleetConfig::seeded(shards, 0xF1EE7));
        let fleet = Fleet::new(sharded, placement_for(placement_kind));
        let opts = TransformOptions::rerandomizable(true);
        let mut installed: Vec<String> = Vec::new();
        let mut minted = 0usize;
        for (op, pick, dst) in ops {
            match op {
                // Install a fresh module wherever placement says.
                0 => {
                    let name = format!("m{minted}");
                    minted += 1;
                    let obj = transform(&spec(&name), &opts).unwrap();
                    let (shard, _) = fleet.install(&obj, &opts).unwrap();
                    prop_assert!(shard < shards);
                    installed.push(name);
                }
                // Migrate an existing module to an arbitrary shard.
                1 if !installed.is_empty() => {
                    let name = &installed[pick % installed.len()];
                    fleet.migrate(name, dst % shards).unwrap();
                }
                // Unload one.
                2 if !installed.is_empty() => {
                    let name = installed.swap_remove(pick % installed.len());
                    fleet.unload(&name).unwrap();
                }
                // Re-randomize one in place (placement churn inside the
                // owner's window while other shards stay put).
                _ if !installed.is_empty() => {
                    let name = &installed[pick % installed.len()];
                    let owner = fleet.shard_of(name).unwrap();
                    let module = fleet.registry(owner).get(name).unwrap();
                    adelie_core::rerandomize_module(
                        fleet.kernel(owner),
                        fleet.registry(owner),
                        &module,
                    )
                    .unwrap();
                }
                _ => {}
            }
            if let Some(violation) = check_invariants(&fleet, &installed) {
                prop_assert!(false, "invariant violated: {violation}");
            }
        }
        // Drain: unload everything; every shard ends empty and clean.
        for name in installed.drain(..) {
            fleet.unload(&name).unwrap();
        }
        prop_assert!(fleet.live_spans().is_empty());
        prop_assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// The cold-tier contract under arbitrary op interleavings:
    /// install / cold-register / call (demand fault-in) / evict /
    /// idle+cap ticks / rebalance (migrate resident, retarget cold —
    /// the primitives the autoscaler's split/merge batches are made
    /// of) / unload. No module is ever lost or duplicated, layout and
    /// symbol invariants hold throughout, and every faulted-in module
    /// passes the GOT audit and actually executes.
    #[test]
    fn cold_tier_ops_preserve_catalog_and_layout_invariants(
        shards in 2usize..4,
        ops in proptest::collection::vec((0u8..7, 0usize..8, 0usize..8), 1..28)
    ) {
        let sharded = ShardedKernel::new(FleetConfig::seeded(shards, 0xC01D));
        let fleet = Fleet::new(sharded, Box::new(RoundRobin::new()));
        fleet.enable_cold_tier(ColdTierConfig {
            idle_ns: 10_000,
            max_resident: 4,
        });
        let opts = TransformOptions::rerandomizable(true);
        let mut names: Vec<String> = Vec::new();
        let mut minted = 0usize;
        let mut now_ns = 0u64;
        for (op, pick, dst) in ops {
            now_ns += 5_000;
            match op {
                // Install resident, wherever placement says.
                0 => {
                    let name = format!("c{minted}");
                    minted += 1;
                    let obj = transform(&spec(&name), &opts).unwrap();
                    fleet.install(&obj, &opts).unwrap();
                    names.push(name);
                }
                // Register cold: catalog only, nothing materializes.
                1 => {
                    let name = format!("c{minted}");
                    minted += 1;
                    let obj = transform(&spec(&name), &opts).unwrap();
                    fleet.register(&obj, &opts).unwrap();
                    names.push(name);
                }
                // Call one: demand fault-in if cold, then execute.
                2 if !names.is_empty() => {
                    let name = &names[pick % names.len()];
                    let (shard, module) = fleet.ensure_resident(name).unwrap();
                    let entry = module.export(&format!("{name}_calc")).unwrap();
                    let kernel = fleet.kernel(shard).clone();
                    let mut vm = kernel.vm();
                    prop_assert_eq!(vm.call(entry, &[33]).unwrap(), 42);
                }
                // Evict one (idempotent if already cold).
                3 if !names.is_empty() => {
                    let name = &names[pick % names.len()];
                    fleet.evict(name).unwrap();
                }
                // Rebalance one: live-migrate residents, retarget cold
                // records — exactly what a split/merge batch does.
                4 if !names.is_empty() => {
                    let name = &names[pick % names.len()];
                    let owner = fleet.shard_of(name).unwrap();
                    if fleet.registry(owner).get(name).is_some() {
                        fleet.migrate(name, dst % shards).unwrap();
                    } else {
                        fleet.retarget(name, dst % shards).unwrap();
                    }
                }
                // Unload one, cold or resident.
                5 if !names.is_empty() => {
                    let name = names.swap_remove(pick % names.len());
                    fleet.unload(&name).unwrap();
                }
                // Let the idle clock bite: evict idle + over-cap
                // residents in deterministic order.
                _ => {
                    fleet.cold_tick(now_ns);
                }
            }
            if let Some(violation) = check_cold_invariants(&fleet, &names) {
                prop_assert!(false, "invariant violated: {violation}");
            }
        }
        // Accounting closes: every catalog entry is counted exactly
        // once, as resident or cold.
        let stats = fleet.cold_stats();
        prop_assert_eq!(stats.resident + stats.cold, names.len());
        // Drain: every shard ends empty and clean.
        for name in names.drain(..) {
            fleet.unload(&name).unwrap();
        }
        prop_assert!(fleet.live_spans().is_empty());
        prop_assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// Migration round-trips: A→B→A always lands back inside A's
    /// window with working code and intact GOTs, under repeated cycles.
    #[test]
    fn migration_round_trips_under_rerand_churn(
        seed in 1u64..1000,
        hops in proptest::collection::vec(0usize..3, 1..8)
    ) {
        let sharded = ShardedKernel::new(FleetConfig::seeded(3, seed));
        let fleet = Fleet::new(sharded, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&spec("hopper"), &opts).unwrap();
        fleet.install(&obj, &opts).unwrap();
        for dst in hops {
            let module = fleet.migrate("hopper", dst).unwrap();
            // Cycle it a couple of times in its new home.
            for _ in 0..2 {
                adelie_core::rerandomize_module(
                    fleet.kernel(dst),
                    fleet.registry(dst),
                    &module,
                )
                .unwrap();
            }
            let base = module.movable_base.load(Ordering::Acquire);
            let (lo, hi) = fleet.sharded().window(dst);
            prop_assert!(base >= lo && base < hi);
            prop_assert!(base < layout::MODULE_CEILING);
            if let Some(v) = check_invariants(&fleet, &["hopper".to_string()]) {
                prop_assert!(false, "after hop to {dst}: {v}");
            }
        }
    }
}
