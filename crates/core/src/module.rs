//! Loaded-module representation (paper Fig. 2b).
//!
//! A re-randomizable module has a **movable** part (`.text`, `.data`,
//! `.bss`, its PLT, and its pair of GOTs) and an **immovable** part
//! (`.fixed.text` wrappers, `.rodata`, its PLT and GOT pair). Plain PIC
//! and legacy modules collapse into a single (non-moving) part.

use adelie_kernel::Kernel;
use adelie_vmem::{Pfn, PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which half of the module an item lives in.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Part {
    /// Relocated on every re-randomization period.
    Movable,
    /// Pinned for the module's lifetime (wrappers, `.rodata`).
    Immovable,
}

/// A run of pages with uniform permissions within a part.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PageGroup {
    /// First page index within the part.
    pub page_start: usize,
    /// Number of pages.
    pub pages: usize,
    /// Mapping permissions.
    pub flags: PteFlags,
}

/// One entry of a *local* GOT — the table that must be rebuilt when the
/// movable part moves (paper §4.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LocalGotEntry {
    /// Address of a movable-part symbol: rebuilt as `new_base + offset`.
    Sym {
        /// Symbol name (diagnostics).
        name: Arc<str>,
        /// Offset from the movable base.
        offset: u64,
    },
    /// The return-address encryption key slot: refreshed with a new
    /// random key every cycle (§3.4).
    Key,
    /// A lazily-bound PLT slot: a fresh local GOT starts it at the
    /// module's binder trampoline (`binder`), and the first call through
    /// the stub traps into the binder, which resolves the target and
    /// rewrites the slot ([`LoadedModule::bind_plt_slot`]). The
    /// re-randomizer re-swings *bound* slots each cycle; rebuilt tables
    /// themselves always start unbound.
    Lazy {
        /// Index into [`LoadedModule::lazy_plt`].
        lazy_idx: usize,
        /// The binder trampoline's native-region address.
        binder: u64,
    },
}

/// An 8-byte data slot holding an absolute pointer into the movable
/// part — adjusted by the re-randomizer (paper §6: "pointers are also
/// adjusted when re-randomizing by adding an offset").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdjustSlot {
    /// Which part the slot itself lives in.
    pub part: Part,
    /// Byte offset of the slot from its part's base.
    pub slot_off: u64,
    /// Offset of the pointed-to symbol from the movable base.
    pub target_off: u64,
}

/// The placed image of one module part.
#[derive(Debug)]
pub struct PartImage {
    /// Base virtual address at load time (for the movable part, the
    /// *current* base lives in [`LoadedModule::movable_base`]).
    pub base: u64,
    /// Total pages.
    pub total_pages: usize,
    /// Backing frames in page order (shared across aliases; only local
    /// GOT frames are replaced over time).
    pub frames: Vec<Pfn>,
    /// Permission groups covering all pages.
    pub groups: Vec<PageGroup>,
    /// Byte offset of the local GOT (page-aligned).
    pub lgot_off: u64,
    /// Local GOT slot count.
    pub lgot_slots: usize,
    /// Byte offset of the fixed GOT (page-aligned).
    pub fgot_off: u64,
    /// Fixed GOT slot count.
    pub fgot_slots: usize,
    /// Symbol name behind each fixed-GOT slot, in slot order. Eager
    /// slots are resolved at load time and never rewritten, so this is
    /// the audit trail fleet migration and the placement proptests use
    /// to prove no GOT entry dangles: slot `i` must hold exactly the
    /// owning kernel's address for `fgot_names[i]` — unless the slot is
    /// lazily bound (see [`LoadedModule::lazy_plt`]), in which case it
    /// holds either the binder trampoline (unbound) or the same
    /// resolution an eager slot would (bound).
    pub fgot_names: Vec<Arc<str>>,
    /// Byte offset of the PLT.
    pub plt_off: u64,
    /// PLT stub count.
    pub plt_stubs: usize,
}

impl PartImage {
    /// Pages occupied by the local GOT.
    pub fn lgot_pages(&self) -> usize {
        (self.lgot_slots * 8).div_ceil(adelie_vmem::PAGE_SIZE)
    }
}

/// Per-load statistics (feeds Fig. 5a and the §4.1 patching discussion).
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct LoadStats {
    /// Section payload bytes (what a non-PIC module would map).
    pub payload_bytes: usize,
    /// Bytes added by GOTs and PLTs (the PIC overhead of Fig. 5a).
    pub got_plt_bytes: usize,
    /// Total mapped bytes (both parts).
    pub mapped_bytes: usize,
    /// `call *GOT` sites relaxed to direct `call; nop` (Fig. 4).
    pub patched_calls: usize,
    /// `mov sym@GOT` sites relaxed to `lea` (Fig. 4).
    pub patched_movs: usize,
    /// GOT entries eliminated by the relaxations above.
    pub got_entries_eliminated: usize,
    /// Local GOT entries (both parts).
    pub local_got_entries: usize,
    /// Fixed GOT entries (both parts).
    pub fixed_got_entries: usize,
    /// PLT stubs emitted (retpoline mode).
    pub plt_stubs: usize,
}

/// A module resident in the simulated kernel.
#[derive(Debug)]
pub struct LoadedModule {
    /// Module name — a shared, immutable id. Kept as `Arc<str>` so the
    /// re-randomizer's error paths, the scheduler's telemetry, and the
    /// testkit clone a pointer per cycle instead of reallocating the
    /// string on every hot-path touch.
    pub name: Arc<str>,
    /// Whether the re-randomizer may move it.
    pub rerandomizable: bool,
    /// The movable (or only) part.
    pub movable: PartImage,
    /// The immovable part (re-randomizable modules only).
    pub immovable: Option<PartImage>,
    /// Current movable base (starts at `movable.base`).
    pub movable_base: AtomicU64,
    /// Times re-randomized.
    pub generation: AtomicU64,
    /// Current encryption key (exposed for tests and attack simulations;
    /// the defence does not depend on its secrecy from *us*).
    pub current_key: AtomicU64,
    /// Movable-part symbol offsets (from the movable base).
    pub movable_syms: HashMap<Arc<str>, u64>,
    /// Immovable/absolute symbol addresses.
    pub immovable_syms: HashMap<Arc<str>, u64>,
    /// Local GOT layout of the movable part (rebuild recipe).
    pub lgot_movable: Vec<LocalGotEntry>,
    /// Local GOT layout of the immovable part.
    pub lgot_immovable: Vec<LocalGotEntry>,
    /// Current frames behind the movable part's local GOT pages.
    pub movable_lgot_frames: Mutex<Vec<Pfn>>,
    /// Current frames behind the immovable part's local GOT pages.
    pub immovable_lgot_frames: Mutex<Vec<Pfn>>,
    /// Data slots that hold movable pointers.
    pub adjust_slots: Vec<AdjustSlot>,
    /// Kernel-visible exports: `(name, address)`.
    pub exports: Vec<(String, u64)>,
    /// Entry points (wrapper addresses for re-randomizable modules).
    pub init_va: Option<u64>,
    /// Exit entry point.
    pub exit_va: Option<u64>,
    /// Pointer-refresh callback (called after each move).
    pub update_pointers_va: Option<u64>,
    /// Cycles whose `update_pointers` callback failed *after* the move
    /// committed and the old range was retired: the module runs at its
    /// new base, but run-time pointers it manages may still reference
    /// the retired layout. Previously this was silently dropped; now it
    /// is counted here and surfaced through the scheduler's stats so
    /// the testkit oracle can assert on it.
    pub pointer_refresh_failures: AtomicU64,
    /// Lazily-bound PLT slots, in registration order (empty unless the
    /// module was loaded with `lazy_plt`).
    pub lazy_plt: Vec<LazyPltSlot>,
    /// Serializes slot binding against the re-randomizer's re-swing.
    ///
    /// Deliberately *not* [`LoadedModule::move_lock`]: `update_pointers`
    /// runs under the move lock and may itself call through a
    /// not-yet-bound stub, so the binder taking the move lock would
    /// self-deadlock mid-cycle.
    pub plt_bind_lock: Mutex<()>,
    /// First-call bindings performed (telemetry; feeds the bench).
    pub plt_binds: AtomicU64,
    /// Bound slots re-swung across re-randomization cycles.
    pub plt_reswings: AtomicU64,
    /// Load-time statistics.
    pub stats: LoadStats,
    /// Serializes re-randomization against unload.
    pub move_lock: Mutex<()>,
}

/// One lazily-bound PLT slot (MARDU-style): the GOT slot starts out
/// pointing at a per-slot binder trampoline in the kernel's native
/// dispatch region; the first call through the PLT stub lands in the
/// binder, which resolves the real target, rewrites the slot, and
/// forwards the call. Because a bound slot holds an *absolute* address,
/// it is exactly the kind of pointer a re-randomization cycle must
/// re-swing — [`LoadedModule::reswing_bound_plt`] runs inside every
/// cycle, and the testkit oracle asserts no bound slot survives pointing
/// into a retired range.
#[derive(Debug)]
pub struct LazyPltSlot {
    /// Imported (or cross-part) symbol this slot resolves.
    pub symbol: Arc<str>,
    /// Which part's GOT holds the slot.
    pub part: Part,
    /// `true` → local GOT (slot moves with the rebuilt table every
    /// cycle); `false` → fixed GOT (static frames).
    pub local: bool,
    /// Slot index within that GOT.
    pub idx: usize,
    /// The binder trampoline's address (what an unbound slot holds).
    pub binder_va: u64,
    /// kallsyms name the binder was registered under (unregistered at
    /// unload).
    pub binder_name: String,
    /// `Some(offset)` when the target lives in the movable part — the
    /// binding is `movable_base + offset` and must track the base across
    /// cycles. `None` → resolve through the kernel symbol table.
    pub target_off: Option<u64>,
    /// Currently bound target address, `0` while unbound.
    pub bound: AtomicU64,
}

impl LoadedModule {
    /// Resolve an exported entry point by name.
    pub fn export(&self, name: &str) -> Option<u64> {
        self.exports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, va)| *va)
    }

    /// The current virtual address of a module symbol (moves with the
    /// module if the symbol is movable).
    pub fn symbol_va(&self, name: &str) -> Option<u64> {
        if let Some(&off) = self.movable_syms.get(name) {
            return Some(self.movable_base.load(Ordering::Acquire) + off);
        }
        self.immovable_syms.get(name).copied()
    }

    /// Total mapped footprint in bytes.
    pub fn mapped_bytes(&self) -> usize {
        let mut pages = self.movable.total_pages;
        if let Some(imm) = &self.immovable {
            pages += imm.total_pages;
        }
        pages * adelie_vmem::PAGE_SIZE
    }

    /// Times this module has been re-randomized.
    pub fn times_randomized(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The current virtual address of a lazy slot's GOT cell.
    pub fn lazy_slot_va(&self, slot: &LazyPltSlot) -> u64 {
        let img = match slot.part {
            Part::Movable => &self.movable,
            Part::Immovable => self.immovable.as_ref().expect("lazy slot in missing part"),
        };
        let part_base = if slot.part == Part::Movable {
            self.movable_base.load(Ordering::Acquire)
        } else {
            img.base
        };
        let got_off = if slot.local {
            img.lgot_off
        } else {
            img.fgot_off
        };
        part_base + got_off + (slot.idx * 8) as u64
    }

    /// Rewrite a lazy slot's GOT cell to `value`.
    ///
    /// GOT pages are sealed read-only in the page tables (§4.1), so the
    /// write goes straight to the backing frame — the same channel the
    /// re-randomizer uses for `adjust_slots`. Local-GOT frames are
    /// *replaced* every cycle; the current list lives behind a mutex and
    /// is read here per write, so a binder racing a cycle always lands
    /// on the frames that are (or are about to be) published.
    fn write_lazy_slot(&self, kernel: &Kernel, slot: &LazyPltSlot, value: u64) {
        let img = match slot.part {
            Part::Movable => &self.movable,
            Part::Immovable => self.immovable.as_ref().expect("lazy slot in missing part"),
        };
        let byte = slot.idx * 8;
        if slot.local {
            let frames = if slot.part == Part::Movable {
                self.movable_lgot_frames.lock()
            } else {
                self.immovable_lgot_frames.lock()
            };
            kernel
                .phys
                .write_u64(frames[byte / PAGE_SIZE], byte % PAGE_SIZE, value);
        } else {
            let abs = img.fgot_off as usize + byte;
            kernel
                .phys
                .write_u64(img.frames[abs / PAGE_SIZE], abs % PAGE_SIZE, value);
        }
    }

    /// First-call (or self-healing re-)bind of lazy slot `lazy_idx`:
    /// resolve the target, rewrite the GOT cell, record the binding, and
    /// return the target so the binder can forward the call.
    ///
    /// Runs under [`LoadedModule::plt_bind_lock`] so a bind racing the
    /// re-randomizer's re-swing cannot resurrect a stale target: whoever
    /// runs second re-resolves against the *published* base.
    ///
    /// # Errors
    ///
    /// A human-readable message when the symbol no longer resolves.
    pub fn bind_plt_slot(&self, kernel: &Kernel, lazy_idx: usize) -> Result<u64, String> {
        let slot = &self.lazy_plt[lazy_idx];
        let _g = self.plt_bind_lock.lock();
        let target = match slot.target_off {
            Some(off) => self.movable_base.load(Ordering::Acquire) + off,
            None => self
                .immovable_syms
                .get(&*slot.symbol)
                .copied()
                .or_else(|| kernel.symbols.lookup(&slot.symbol))
                .ok_or_else(|| format!("lazy PLT bind: unresolved symbol `{}`", slot.symbol))?,
        };
        if slot.bound.load(Ordering::Acquire) != target {
            self.write_lazy_slot(kernel, slot, target);
            slot.bound.store(target, Ordering::Release);
            self.plt_binds.fetch_add(1, Ordering::Relaxed);
        }
        Ok(target)
    }

    /// Re-swing every *bound* lazy slot against the current layout — the
    /// re-randomizer calls this after publishing a cycle's new movable
    /// base (and new local-GOT frames), before `update_pointers` runs.
    /// Unbound slots are untouched (a rebuilt table already starts them
    /// at the binder). A slot whose symbol no longer resolves is
    /// *unbound* — reset to the binder — so a stale target is never
    /// callable after the cycle commits. Returns the number of slots
    /// re-swung.
    pub fn reswing_bound_plt(&self, kernel: &Kernel) -> usize {
        let _g = self.plt_bind_lock.lock();
        let mut n = 0;
        for slot in &self.lazy_plt {
            if slot.bound.load(Ordering::Acquire) == 0 {
                continue;
            }
            let target = match slot.target_off {
                Some(off) => Some(self.movable_base.load(Ordering::Acquire) + off),
                None => self
                    .immovable_syms
                    .get(&*slot.symbol)
                    .copied()
                    .or_else(|| kernel.symbols.lookup(&slot.symbol)),
            };
            match target {
                Some(t) => {
                    self.write_lazy_slot(kernel, slot, t);
                    slot.bound.store(t, Ordering::Release);
                }
                None => {
                    self.write_lazy_slot(kernel, slot, slot.binder_va);
                    slot.bound.store(0, Ordering::Release);
                }
            }
            n += 1;
        }
        if n > 0 {
            self.plt_reswings.fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }
}
