//! Per-CPU pools of re-randomized kernel stacks (paper §3.4, Fig. 3b).
//!
//! Wrappers switch to a stack drawn from the calling CPU's LIFO pool;
//! stacks are allocated at *random* virtual addresses, and the
//! re-randomizer periodically swaps every CPU's pool for a fresh one,
//! retiring the old stacks through the SMR domain so they are unmapped
//! only after in-flight calls drain.
//!
//! The paper uses per-CPU lock-free LIFO lists; contention here is a
//! single CPU's wrapper push/pop racing the rotate swap, so this
//! implementation uses a short per-CPU mutex around a `Vec` — the same
//! LIFO semantics with negligible contention (documented simplification,
//! DESIGN.md §3).

use crate::va::VaAllocator;
use adelie_kernel::{Kernel, Vm, VmError};
use adelie_vmem::{Batch, Pfn, PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pages per randomized stack.
const STACK_PAGES: usize = 8;

/// Counters mirrored in the artifact's dmesg output
/// (`Stack Alloc` / `Stack Free` / `Stack Delta`).
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct StackStats {
    /// Stacks allocated on demand.
    pub allocated: u64,
    /// Stacks torn down by rotation.
    pub freed: u64,
}

impl StackStats {
    /// Live stacks. Saturating: the two counters are sampled with
    /// independent relaxed loads, so a reclaim-thread `freed` increment
    /// can land between them and make `freed` momentarily exceed the
    /// sampled `allocated` — that transient must read as 0 live stacks,
    /// not wrap (or panic in debug builds).
    pub fn delta(&self) -> u64 {
        self.allocated.saturating_sub(self.freed)
    }
}

/// The per-CPU stack pools.
pub struct StackPool {
    pools: Vec<Mutex<Vec<u64>>>,
    /// Backing frames per stack top (moved into the retire closure on
    /// rotation).
    frames: Mutex<HashMap<u64, Vec<Pfn>>>,
    /// Shared placement state: stacks draw from the same reservation-
    /// based allocator as module loads and re-randomization cycles, so a
    /// stack can never land inside a range another placement has picked
    /// but not yet mapped.
    va: Arc<VaAllocator>,
    allocated: AtomicU64,
    /// Shared with rotation closures living in the SMR domain, which may
    /// outlive the pool.
    freed: Arc<AtomicU64>,
}

impl StackPool {
    /// Pools for `cpus` CPUs, placing stacks via `va`. At least one
    /// pool is always created so the per-CPU indexing below is total.
    pub(crate) fn new(cpus: usize, va: Arc<VaAllocator>) -> Arc<StackPool> {
        Arc::new(StackPool {
            pools: (0..cpus.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            frames: Mutex::new(HashMap::new()),
            va,
            allocated: AtomicU64::new(0),
            freed: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Register the wrapper-support natives (`pop_stack_this_cpu`,
    /// `push_stack_this_cpu`, `alloc_stack`).
    pub fn register_natives(self: &Arc<Self>, kernel: &Arc<Kernel>) {
        let pool = self.clone();
        kernel
            .symbols
            .register_native("pop_stack_this_cpu", move |vm| Ok(pool.pop(vm.cpu())));
        let pool = self.clone();
        kernel
            .symbols
            .register_native("push_stack_this_cpu", move |vm| {
                pool.push(vm.cpu(), vm.arg(0));
                Ok(0)
            });
        let pool = self.clone();
        kernel.symbols.register_native("alloc_stack", move |vm| {
            pool.alloc(vm.kernel).map_err(VmError::Native)
        });
    }

    /// The pool serving `cpu`. `Vm::cpu` can exceed the pool count when
    /// a kernel is booted with more CPUs than the registry that built
    /// this pool (or when sticky thread→CPU ids outgrow a smaller
    /// testbed); folding the index keeps pop/push total instead of
    /// panicking on an out-of-bounds CPU id.
    fn pool(&self, cpu: usize) -> &Mutex<Vec<u64>> {
        &self.pools[cpu % self.pools.len()]
    }

    /// Pop a stack top for `cpu` (0 when the pool is empty — the wrapper
    /// then calls `alloc_stack`).
    pub fn pop(&self, cpu: usize) -> u64 {
        self.pool(cpu).lock().pop().unwrap_or(0)
    }

    /// Return a stack to `cpu`'s pool.
    pub fn push(&self, cpu: usize, top: u64) {
        self.pool(cpu).lock().push(top);
    }

    /// Allocate a stack at a random virtual address; returns its top.
    ///
    /// # Errors
    ///
    /// A textual error when no free range is found (propagated as a
    /// native-handler failure).
    pub fn alloc(&self, kernel: &Kernel) -> Result<u64, String> {
        let span = (STACK_PAGES * PAGE_SIZE) as u64;
        let reservation = self
            .va
            .reserve(kernel, STACK_PAGES)
            .ok_or_else(|| "alloc_stack: no free range".to_string())?;
        let base = reservation.base();
        let pfns = kernel.phys.alloc_n(STACK_PAGES);
        kernel
            .space
            .map_range(base, &pfns, PteFlags::DATA)
            .expect("reserved stack range collided");
        let top = base + span;
        self.frames.lock().insert(top, pfns);
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Ok(top)
    }

    /// Swap every CPU's pool for a fresh empty one; old stacks are
    /// retired and unmapped once pending calls drain (the rotation step
    /// of each re-randomization cycle).
    pub fn rotate(&self, kernel: &Arc<Kernel>) {
        self.rotate_epoch(kernel, None);
    }

    /// [`StackPool::rotate`], tagging the retirement's unmap batch with
    /// a shared shootdown `epoch` (see `adelie_vmem::Batch::epoch`).
    /// All retired stacks are unmapped in **one** batch — a single TLB
    /// shootdown for the whole rotation, where the pre-batching code
    /// paid one per stack.
    pub fn rotate_epoch(&self, kernel: &Arc<Kernel>, epoch: Option<u64>) {
        let mut old_tops = Vec::new();
        for pool in &self.pools {
            old_tops.append(&mut *pool.lock());
        }
        if old_tops.is_empty() {
            return;
        }
        let mut frames = self.frames.lock();
        let doomed: Vec<(u64, Vec<Pfn>)> = old_tops
            .into_iter()
            .filter_map(|top| frames.remove(&top).map(|f| (top, f)))
            .collect();
        drop(frames);
        let n = doomed.len() as u64;
        let kernel2 = kernel.clone();
        let freed = self.freed.clone();
        kernel.reclaim.retire(Box::new(move || {
            let mut batch = Batch::with_epoch(epoch);
            for (top, _) in &doomed {
                let base = top - (STACK_PAGES * PAGE_SIZE) as u64;
                // Sparse: a stack range that somehow lost pages must
                // not abort the teardown of every other stack.
                batch.unmap_sparse(base, STACK_PAGES);
            }
            let _ = kernel2.space.apply(batch);
            for (_, pfns) in doomed {
                for pfn in pfns {
                    kernel2.phys.free(pfn);
                }
            }
            freed.fetch_add(n, Ordering::Relaxed);
        }));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StackStats {
        StackStats {
            allocated: self.allocated.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
        }
    }

    /// Run one wrapper-style pop/alloc-push round on the calling CPU
    /// (test helper exercising the same paths as wrapper code).
    pub fn checkout(&self, vm: &mut Vm<'_>) -> Result<u64, String> {
        let cpu = vm.cpu();
        let top = match self.pop(cpu) {
            0 => self.alloc(vm.kernel)?,
            t => t,
        };
        Ok(top)
    }
}

impl std::fmt::Debug for StackPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackPool")
            .field("cpus", &self.pools.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_kernel::layout;

    /// Regression: `allocated - freed` panicked in debug builds when a
    /// reclaim-thread `freed` increment landed between the two relaxed
    /// loads of a stats snapshot.
    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let racing_snapshot = StackStats {
            allocated: 3,
            freed: 5,
        };
        assert_eq!(racing_snapshot.delta(), 0);
        let normal = StackStats {
            allocated: 5,
            freed: 3,
        };
        assert_eq!(normal.delta(), 2);
    }

    /// Fleet-style many-kernel churn: pools of *differently sized*
    /// kernels driven from one thread whose sticky CPU id was minted
    /// elsewhere. Folding must keep pop/push/alloc/rotate total, LIFO
    /// round-trips must stay intact per pool, and the alloc/free
    /// counters must converge to zero after rotation drains — with no
    /// stack ever crossing between the pools.
    #[test]
    fn many_kernel_churn_keeps_pools_consistent() {
        use adelie_kernel::{Kernel, KernelConfig};
        // Fleet shape: differently-sized shard kernels over disjoint VA
        // windows (identical seeds would otherwise legitimately draw
        // identical stack addresses in their separate spaces).
        let windows = layout::shard_windows(2);
        let big = Kernel::new(KernelConfig {
            cpus: 8,
            module_window: windows[0],
            ..KernelConfig::default()
        });
        let small = Kernel::new(KernelConfig {
            cpus: 2,
            module_window: windows[1],
            ..KernelConfig::default()
        });
        let pool_big = StackPool::new(8, VaAllocator::new(layout::LEGACY_MODULE_BASE, windows[0]));
        let pool_small =
            StackPool::new(2, VaAllocator::new(layout::LEGACY_MODULE_BASE, windows[1]));
        let mut seen_big = std::collections::HashSet::new();
        let mut seen_small = std::collections::HashSet::new();
        // Interleave checkouts across both kernels with raw CPU ids far
        // beyond the small pool's size (what a fleet thread entering
        // shard after shard produces).
        for round in 0..6u64 {
            for cpu in [0usize, 3, 7, 19] {
                let a = match pool_big.pop(cpu) {
                    0 => pool_big.alloc(&big).unwrap(),
                    t => t,
                };
                let b = match pool_small.pop(cpu) {
                    0 => pool_small.alloc(&small).unwrap(),
                    t => t,
                };
                assert_ne!(a, 0);
                assert_ne!(b, 0);
                seen_big.insert(a);
                seen_small.insert(b);
                pool_big.push(cpu, a);
                pool_small.push(cpu, b);
            }
            if round % 2 == 1 {
                pool_big.rotate(&big);
                pool_small.rotate(&small);
                big.reclaim.flush();
                small.reclaim.flush();
            }
        }
        // No stack ever served both pools, and every stack stayed
        // inside its shard's window (tops are exclusive upper bounds).
        assert!(
            seen_big.is_disjoint(&seen_small),
            "a stack crossed between shard windows"
        );
        for &top in &seen_big {
            assert!(top > windows[0].0 && top <= windows[0].1, "{top:#x}");
        }
        for &top in &seen_small {
            assert!(top > windows[1].0 && top <= windows[1].1, "{top:#x}");
        }
        pool_big.rotate(&big);
        pool_small.rotate(&small);
        big.reclaim.flush();
        small.reclaim.flush();
        let (sb, ss) = (pool_big.stats(), pool_small.stats());
        assert_eq!(sb.delta(), 0, "big pool leaked: {sb:?}");
        assert_eq!(ss.delta(), 0, "small pool leaked: {ss:?}");
        assert!(sb.allocated > 0 && ss.allocated > 0);
    }

    /// Regression: a `Vm::cpu` id at or past the pool count indexed out
    /// of bounds in `pop`/`push`.
    #[test]
    fn pop_push_tolerate_out_of_range_cpu_ids() {
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
        let pool = StackPool::new(2, va);
        // Far past the 2 pools that exist — must fold, not panic.
        assert_eq!(pool.pop(7), 0);
        pool.push(7, 0xAB00_0000);
        assert_eq!(pool.pop(7), 0xAB00_0000);
        // Zero CPUs still yields one pool.
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
        let pool = StackPool::new(0, va);
        assert_eq!(pool.pop(0), 0);
    }
}
