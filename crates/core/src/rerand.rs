//! One re-randomization cycle: the core move operation of paper §4.2.
//!
//! For the module being cycled:
//!
//! 1. pick a fresh random base for the movable part (a contention-safe
//!    [`VaAllocator`](crate::va) reservation, so independent modules can
//!    cycle concurrently under `adelie-sched`'s worker pool),
//! 2. alias every movable page (same frames) at the new base —
//!    *zero-copy* movement (Fig. 2a),
//! 3. build **new local GOTs** for both parts with entries rebased to
//!    the new addresses and a fresh encryption key; the new mapping's
//!    local-GOT pages point at the new frames, and the immovable part's
//!    local-GOT page is atomically swapped onto its new frame,
//! 4. adjust absolute data slots that point into the movable part,
//! 5. invoke the module's `update_pointers` callback if it has one,
//! 6. `mr_retire` the old range: it is unmapped (and the old local-GOT
//!    frames freed) as soon as the last pending call drains,
//! 7. rotate the per-CPU stack pools.
//!
//! Pending calls keep executing at the old addresses with the old GOTs
//! and the old key until they return — consistency by construction.
//!
//! Every page-table mutation above is issued as an `adelie_vmem::Batch`:
//! the alias map, the GOT maps, the immovable GOT swing, the retire
//! unmap, and the stack rotation each apply under one page-table lock
//! acquisition and publish at most one range-tagged shootdown, so TLBs
//! evict only the affected spans instead of flushing wholesale (§4.3).
//! [`rerandomize_module_epoch`] additionally tags the cycle's batches
//! with the scheduler's shared shootdown epoch.
//!
//! The background thread that used to live here (the artifact's
//! `randmod` kthread) is superseded by `adelie-sched`: a multi-worker
//! scheduler with per-module policies and a CPU budget. Its
//! single-worker compatibility shim (`adelie_sched::Rerandomizer`)
//! preserves the old `spawn`/`stop` API.

use crate::hooks::{CycleCommit, CycleStage};
use crate::module::{LoadedModule, LocalGotEntry, Part};
use crate::stacks::StackPool;
use crate::ModuleRegistry;
use adelie_kernel::{Kernel, VmError};
use adelie_vmem::{Batch, Fault, Pfn, PteFlags, PAGE_SIZE};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Why one re-randomization cycle could not complete.
///
/// Cycle failures are *recoverable* from the scheduler's point of view:
/// the module keeps running at its current base, and the failed cycle is
/// counted and retried at the next deadline rather than killing the
/// randomizer thread (the old stringly-typed path treated every error as
/// fatal).
#[derive(Debug)]
pub enum RerandError {
    /// The module was not built with `TransformOptions::rerandomizable`.
    NotRerandomizable {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
    },
    /// No free virtual range of the required size could be found.
    NoSpace {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
        /// Pages requested.
        pages: usize,
    },
    /// Mapping or swapping pages at the new base failed.
    Remap {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
        /// Which remap step failed (alias, local GOT, immovable GOT).
        what: &'static str,
        /// The underlying page-table fault.
        fault: Fault,
    },
    /// The module's `update_pointers` callback raised an error. Unlike
    /// the other variants, the move itself *has* committed: the module
    /// runs correctly at its new base and the old range was retired —
    /// only the callback's own refresh work is in doubt.
    UpdatePointers {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
        /// The interpreter error.
        source: VmError,
    },
}

impl fmt::Display for RerandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RerandError::NotRerandomizable { module } => {
                write!(f, "module {module} is not re-randomizable")
            }
            RerandError::NoSpace { module, pages } => {
                write!(f, "no free {pages}-page range to move {module} into")
            }
            RerandError::Remap {
                module,
                what,
                fault,
            } => write!(f, "{module}: {what} remap failed: {fault}"),
            RerandError::UpdatePointers { module, source } => {
                write!(f, "{module}: update_pointers failed: {source}")
            }
        }
    }
}

impl std::error::Error for RerandError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RerandError::Remap { fault, .. } => Some(fault),
            RerandError::UpdatePointers { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Re-randomize `module` once. Returns the new movable base.
///
/// Safe to call concurrently for *different* modules: placement is
/// reservation-based and each module's `move_lock` serializes cycles of
/// the same module.
///
/// # Errors
///
/// [`RerandError`] — the module is left fully functional on any error
/// and callers may simply retry later. Placement and mapping errors
/// roll the cycle back completely (the module has not moved, nothing
/// is leaked); a failing `update_pointers` callback is reported after
/// the move has committed and the old range been retired (see
/// [`RerandError::UpdatePointers`]).
pub fn rerandomize_module(
    kernel: &Arc<Kernel>,
    registry: &ModuleRegistry,
    module: &LoadedModule,
) -> Result<u64, RerandError> {
    rerandomize_module_epoch(kernel, registry, module, None)
}

/// [`rerandomize_module`] with an explicit shared shootdown-`epoch`
/// tag: every invalidating page-table batch the cycle issues (the GOT
/// swing, the retire unmap, the stack-pool rotation) carries the tag,
/// so same-deadline cycles of independent modules — which the
/// scheduler hands the same epoch — coalesce their invalidation sets
/// into one merged log slot and a lagging TLB pays a single partial
/// invalidation pass for the whole epoch.
///
/// # Errors
///
/// See [`rerandomize_module`].
pub fn rerandomize_module_epoch(
    kernel: &Arc<Kernel>,
    registry: &ModuleRegistry,
    module: &LoadedModule,
    epoch: Option<u64>,
) -> Result<u64, RerandError> {
    if !module.rerandomizable {
        return Err(RerandError::NotRerandomizable {
            module: module.name.clone(),
        });
    }
    let _move_guard = module.move_lock.lock();
    let pages = module.movable.total_pages;
    let old_base = module.movable_base.load(Ordering::Acquire);

    // Hook snapshot: one read per cycle; `None` (production) makes every
    // `allowed` check a constant.
    let hooks = registry.hooks();
    let allowed = |stage: CycleStage| hooks.as_ref().is_none_or(|h| h.allow(&module.name, stage));

    // (1) Fresh base + key. The reservation keeps concurrent cycles and
    // loads out of this range until the pages are actually mapped.
    if !allowed(CycleStage::Reserve) {
        return Err(RerandError::NoSpace {
            module: module.name.clone(),
            pages,
        });
    }
    let reservation = registry
        .reserve_va(pages)
        .ok_or_else(|| RerandError::NoSpace {
            module: module.name.clone(),
            pages,
        })?;
    let new_base = reservation.base();
    let new_key = kernel.rng_u64();
    // Error constructor: the module id is a pre-built `Arc<str>`, so
    // even the fault paths cost a refcount bump, never a string copy.
    let remap = |what: &'static str, fault: Fault| RerandError::Remap {
        module: module.name.clone(),
        what,
        fault,
    };
    // Pre-publish rollback: unmap whatever earlier *batches* already
    // applied at the new base and free frames allocated this cycle that
    // the module never took ownership of. Individual batches are atomic
    // (a failed batch leaves nothing behind), so only previously
    // *successful* batches need tearing down. The reservation is still
    // held while this runs, so no other placement can race into the
    // half-torn-down range. After it, the module is genuinely untouched
    // and the cycle can simply be retried.
    let rollback = |fresh: &[Pfn], unmap_new: bool| {
        if unmap_new {
            let mut batch = Batch::with_epoch(epoch);
            batch.unmap_sparse(new_base, pages);
            let _ = kernel.space.apply(batch);
        }
        for &pfn in fresh {
            kernel.phys.free(pfn);
        }
    };

    // (2) Zero-copy alias of every movable page group, except the local
    // GOT pages which get fresh frames. One batch: a single page-table
    // lock acquisition instead of one per page (and being map-only, it
    // publishes no shootdown at all).
    if !allowed(CycleStage::AliasMap) {
        return Err(remap("alias", Fault::Injected { va: new_base }));
    }
    let lgot_page_start = (module.movable.lgot_off / PAGE_SIZE as u64) as usize;
    let lgot_pages = module.movable.lgot_pages();
    let mut alias_batch = Batch::with_epoch(epoch);
    for g in &module.movable.groups {
        for i in 0..g.pages {
            let page = g.page_start + i;
            if lgot_pages > 0 && page >= lgot_page_start && page < lgot_page_start + lgot_pages {
                continue; // handled in step (3)
            }
            let va = new_base + (page * PAGE_SIZE) as u64;
            alias_batch.map_page(va, module.movable.frames[page], g.flags);
        }
    }
    if let Err(fault) = kernel.space.apply(alias_batch) {
        return Err(remap("alias", fault));
    }

    // (3) New local GOTs.
    let build_lgot = |entries: &[LocalGotEntry]| -> Vec<u8> {
        let mut bytes = vec![
            0u8;
            (entries.len() * 8)
                .next_multiple_of(PAGE_SIZE)
                .max(PAGE_SIZE)
        ];
        for (i, e) in entries.iter().enumerate() {
            let v = match e {
                LocalGotEntry::Sym { offset, .. } => new_base + offset,
                LocalGotEntry::Key => new_key,
                // A rebuilt table starts lazy slots unbound (at the
                // binder); bound slots are re-swung after publication.
                LocalGotEntry::Lazy { binder, .. } => *binder,
            };
            bytes[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        bytes
    };
    // All fallible mapping work happens before the module takes
    // ownership of any fresh frame, so every error path above and below
    // can restore the exact pre-cycle state.
    let mut new_mov_lgot: Vec<Pfn> = Vec::new();
    if lgot_pages > 0 {
        if !allowed(CycleStage::MovableGot) {
            rollback(&[], true);
            return Err(remap(
                "local GOT",
                Fault::Injected {
                    va: new_base + module.movable.lgot_off,
                },
            ));
        }
        let img = build_lgot(&module.lgot_movable);
        new_mov_lgot = kernel.phys.alloc_n(lgot_pages);
        for (i, &pfn) in new_mov_lgot.iter().enumerate() {
            kernel
                .phys
                .write(pfn, 0, &img[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
        }
        let mut lgot_batch = Batch::with_epoch(epoch);
        lgot_batch.map_range(
            new_base + module.movable.lgot_off,
            &new_mov_lgot,
            PteFlags::RO_DATA, // sealed from birth
        );
        if let Err(fault) = kernel.space.apply(lgot_batch) {
            rollback(&new_mov_lgot, true);
            return Err(remap("local GOT", fault));
        }
    }
    let mut new_imm_lgot: Vec<Pfn> = Vec::new();
    if let Some(imm) = &module.immovable {
        let imm_lgot_pages = imm.lgot_pages();
        if imm_lgot_pages > 0 {
            if !allowed(CycleStage::ImmovableGotSwap) {
                rollback(&new_mov_lgot, true);
                return Err(remap(
                    "immovable GOT swap",
                    Fault::Injected {
                        va: imm.base + imm.lgot_off,
                    },
                ));
            }
            let img = build_lgot(&module.lgot_immovable);
            new_imm_lgot = kernel.phys.alloc_n(imm_lgot_pages);
            for (i, &pfn) in new_imm_lgot.iter().enumerate() {
                kernel
                    .phys
                    .write(pfn, 0, &img[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
            }
            // Atomic PTE swing, one batch: pending calls read either the
            // old or the new table, never a hole (§4.2 "GOT pages in the
            // new address space are remapped to point to the new GOTs").
            // The batch is all-or-nothing — a mid-batch failure swaps
            // every completed page straight back inside vmem — and it
            // publishes ONE shootdown where the old code paid one per
            // GOT page.
            let mut swap_batch = Batch::with_epoch(epoch);
            for (i, &pfn) in new_imm_lgot.iter().enumerate() {
                let va = imm.base + imm.lgot_off + (i * PAGE_SIZE) as u64;
                swap_batch.swap_frame(va, pfn, PteFlags::RO_DATA);
            }
            if let Err(fault) = kernel.space.apply(swap_batch) {
                let fresh: Vec<Pfn> = new_mov_lgot.iter().chain(&new_imm_lgot).copied().collect();
                rollback(&fresh, true);
                return Err(remap("immovable GOT swap", fault));
            }
        }
    }
    // Last pre-commit stage gate: a denied AdjustSlots stage rolls back
    // everything above, including swapping the immovable local-GOT PTEs
    // back onto their old frames in one batch (the data slots
    // themselves have not been touched yet).
    if !allowed(CycleStage::AdjustSlots) {
        if let Some(imm) = &module.immovable {
            let cur = module.immovable_lgot_frames.lock();
            let mut unswap = Batch::with_epoch(epoch);
            for (j, &old) in cur.iter().enumerate() {
                let va_j = imm.base + imm.lgot_off + (j * PAGE_SIZE) as u64;
                unswap.swap_frame(va_j, old, PteFlags::RO_DATA);
            }
            if !unswap.is_empty() {
                let _ = kernel.space.apply(unswap);
            }
        }
        let fresh: Vec<Pfn> = new_mov_lgot.iter().chain(&new_imm_lgot).copied().collect();
        rollback(&fresh, true);
        return Err(remap("adjust-slots", Fault::Injected { va: new_base }));
    }

    // Nothing can fail before publication now: hand the fresh GOT
    // frames to the module and collect the ones they replace.
    let mut doomed_frames = Vec::new();
    if !new_mov_lgot.is_empty() {
        let mut cur = module.movable_lgot_frames.lock();
        doomed_frames.append(&mut std::mem::replace(&mut *cur, new_mov_lgot));
    }
    if !new_imm_lgot.is_empty() {
        let mut cur = module.immovable_lgot_frames.lock();
        doomed_frames.append(&mut std::mem::replace(&mut *cur, new_imm_lgot));
    }
    // The new range is fully mapped: the page tables now exclude it from
    // other placements, so the reservation can go. Debug builds prove
    // "fully mapped" with one batched walk (a single epoch pin and
    // snapshot-root load for the whole span) before releasing it.
    #[cfg(debug_assertions)]
    {
        let vas: Vec<u64> = (0..pages)
            .map(|i| new_base + (i * PAGE_SIZE) as u64)
            .collect();
        assert!(
            kernel
                .space
                .translate_batch(&vas, adelie_vmem::Access::Read)
                .iter()
                .all(|r| r.is_ok()),
            "rerand published a hole in {}'s new range at {new_base:#x}",
            module.name
        );
    }
    drop(reservation);

    // (4) Adjust movable pointers in data (paper §6: "pointers are also
    // adjusted when re-randomizing"). Direct frame writes: the slots may
    // live on sealed (read-only-mapped) pages.
    for slot in &module.adjust_slots {
        let frames = match slot.part {
            Part::Movable => &module.movable.frames,
            Part::Immovable => &module.immovable.as_ref().unwrap().frames,
        };
        let page = (slot.slot_off / PAGE_SIZE as u64) as usize;
        let off = (slot.slot_off % PAGE_SIZE as u64) as usize;
        kernel
            .phys
            .write_u64(frames[page], off, new_base + slot.target_off);
    }

    // (5) Publish, then let the module refresh any run-time pointers.
    module.movable_base.store(new_base, Ordering::Release);
    module.current_key.store(new_key, Ordering::Release);
    module.generation.fetch_add(1, Ordering::Relaxed);
    // Re-swing bound lazy PLT slots against the published layout (the
    // MARDU hazard: a bound slot holds an absolute address, so leaving
    // it would let a first-call binding outlive the range it points
    // into). Runs before `update_pointers` so the callback itself calls
    // through correctly-bound stubs; a binder racing this re-resolves
    // under the same lock and reaches the same answer.
    module.reswing_bound_plt(kernel);
    let update_result = match module.update_pointers_va {
        Some(_) if !allowed(CycleStage::UpdatePointers) => Err(RerandError::UpdatePointers {
            module: module.name.clone(),
            source: VmError::Native("injected fault: update_pointers".into()),
        }),
        Some(up) => {
            let mut vm = kernel.vm();
            vm.call(up, &[new_base])
                .map(|_| ())
                .map_err(|source| RerandError::UpdatePointers {
                    module: module.name.clone(),
                    source,
                })
        }
        None => Ok(()),
    };
    if update_result.is_err() {
        // The move has committed and the old range is about to be
        // retired, but the module's own pointer refresh did not run to
        // completion: record it (the old silent-drop path) so the
        // scheduler's stats — and the testkit oracle — can see exactly
        // which modules may still hold references into retired layouts.
        module
            .pointer_refresh_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    // (6) Retire the old range — unmapped when pending calls drain.
    // This runs even when the update_pointers callback failed: the move
    // is already published at this point, and skipping retirement would
    // leak the old mapping and the replaced GOT frames on every retried
    // cycle.
    if allowed(CycleStage::Retire) {
        let kernel2 = kernel.clone();
        let total_pages = pages;
        kernel.reclaim.retire(Box::new(move || {
            // Batched unmap: one TLB shootdown for the whole stale
            // range, tagged with the cycle's shared epoch so retires of
            // same-deadline cycles coalesce their invalidation sets.
            let mut batch = Batch::with_epoch(epoch);
            batch.unmap_sparse(old_base, total_pages);
            let _ = kernel2.space.apply(batch);
            for pfn in doomed_frames {
                kernel2.phys.free(pfn);
            }
        }));
    } else {
        // Injected retirement drop: the old range stays mapped and the
        // replaced GOT frames leak — deliberately, so the testkit can
        // prove its layout oracle detects exactly this class of bug.
        kernel.printk.log(format!(
            "rerand: {} retire suppressed by injected fault (old range {old_base:#x} leaked)",
            module.name
        ));
    }

    // (7) Rotate the per-CPU randomized stack pools so stack addresses
    // go stale on the same cadence as code addresses (§3.4). The
    // rotation retires every pooled stack in one batch under the same
    // shared epoch.
    if allowed(CycleStage::StackRotate) {
        registry.stacks.rotate_epoch(kernel, epoch);
    }
    if let Some(h) = &hooks {
        h.committed(&CycleCommit {
            module: &module.name,
            old_base,
            new_base,
            span: (pages * PAGE_SIZE) as u64,
            generation: module.generation.load(Ordering::Relaxed),
        });
    }
    update_result.map(|()| new_base)
}

/// Print the artifact-style statistics block to the kernel log:
///
/// ```text
/// Randomized 53 times
/// SMR Retire: 106 / SMR Free: 106 / SMR Delta: 0
/// Stack Alloc: 530 / Stack Free: 530 / Stack Delta: 0
/// ```
pub fn log_stats(kernel: &Kernel, cycles: u64, stacks: &StackPool) {
    let smr = kernel.reclaim.stats();
    let st = stacks.stats();
    kernel.printk.log("-----".to_string());
    kernel.printk.log(format!("Randomized {cycles} times"));
    kernel.printk.log(format!("SMR Retire: {}", smr.retired));
    kernel.printk.log(format!("SMR Free: {}", smr.freed));
    kernel.printk.log(format!("SMR Delta: {}", smr.delta()));
    kernel.printk.log(format!("Stack Alloc: {}", st.allocated));
    kernel.printk.log(format!("Stack Free: {}", st.freed));
    kernel.printk.log(format!("Stack Delta: {}", st.delta()));
}
