//! The re-randomizer: the "randomizer kernel thread" of paper §4.2.
//!
//! Every period, for every re-randomizable module:
//!
//! 1. pick a fresh random base for the movable part,
//! 2. alias every movable page (same frames) at the new base —
//!    *zero-copy* movement (Fig. 2a),
//! 3. build **new local GOTs** for both parts with entries rebased to
//!    the new addresses and a fresh encryption key; the new mapping's
//!    local-GOT pages point at the new frames, and the immovable part's
//!    local-GOT page is atomically swapped onto its new frame,
//! 4. adjust absolute data slots that point into the movable part,
//! 5. invoke the module's `update_pointers` callback if it has one,
//! 6. `mr_retire` the old range: it is unmapped (and the old local-GOT
//!    frames freed) as soon as the last pending call drains,
//! 7. rotate the per-CPU stack pools.
//!
//! Pending calls keep executing at the old addresses with the old GOTs
//! and the old key until they return — consistency by construction.

use crate::module::{LoadedModule, LocalGotEntry, Part};
use crate::stacks::StackPool;
use crate::ModuleRegistry;
use adelie_kernel::Kernel;
use adelie_vmem::{PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cycle counters (the dmesg block of the artifact appendix).
#[derive(Copy, Clone, Default, Debug)]
pub struct RerandStats {
    /// Completed re-randomization cycles (sum over modules).
    pub randomized: u64,
    /// Cumulative wall time spent inside cycles.
    pub busy: Duration,
}

/// Re-randomize `module` once. Returns the new movable base.
///
/// # Errors
///
/// A textual error if no free address range can be found or a remap
/// fails; callers treat this as a fatal kernel bug.
pub fn rerandomize_module(
    kernel: &Arc<Kernel>,
    registry: &ModuleRegistry,
    module: &LoadedModule,
) -> Result<u64, String> {
    if !module.rerandomizable {
        return Err(format!("module {} is not re-randomizable", module.name));
    }
    let _move_guard = module.move_lock.lock();
    let pages = module.movable.total_pages;
    let old_base = module.movable_base.load(Ordering::Acquire);

    // (1) Fresh base + key.
    let (new_base, _va_guard) = registry.pick_base_locked(pages)?;
    let new_key = kernel.rng_u64();

    // (2) Zero-copy alias of every movable page group, except the local
    // GOT pages which get fresh frames.
    let lgot_page_start = (module.movable.lgot_off / PAGE_SIZE as u64) as usize;
    let lgot_pages = module.movable.lgot_pages();
    for g in &module.movable.groups {
        for i in 0..g.pages {
            let page = g.page_start + i;
            if lgot_pages > 0 && page >= lgot_page_start && page < lgot_page_start + lgot_pages {
                continue; // handled in step (3)
            }
            let va = new_base + (page * PAGE_SIZE) as u64;
            kernel
                .space
                .map(va, module.movable.frames[page], g.flags)
                .map_err(|e| format!("rerand alias failed: {e}"))?;
        }
    }

    // (3) New local GOTs.
    let build_lgot = |entries: &[LocalGotEntry]| -> Vec<u8> {
        let mut bytes = vec![0u8; (entries.len() * 8).next_multiple_of(PAGE_SIZE).max(PAGE_SIZE)];
        for (i, e) in entries.iter().enumerate() {
            let v = match e {
                LocalGotEntry::Sym { offset, .. } => new_base + offset,
                LocalGotEntry::Key => new_key,
            };
            bytes[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        bytes
    };
    let mut doomed_frames = Vec::new();
    if lgot_pages > 0 {
        let img = build_lgot(&module.lgot_movable);
        let new_frames = kernel.phys.alloc_n(lgot_pages);
        for (i, &pfn) in new_frames.iter().enumerate() {
            kernel
                .phys
                .write(pfn, 0, &img[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
        }
        kernel
            .space
            .map_range(
                new_base + module.movable.lgot_off,
                &new_frames,
                PteFlags::RO_DATA, // sealed from birth
            )
            .map_err(|e| format!("rerand lgot map failed: {e}"))?;
        let mut cur = module.movable_lgot_frames.lock();
        doomed_frames.append(&mut std::mem::replace(&mut *cur, new_frames));
    }
    if let Some(imm) = &module.immovable {
        let imm_lgot_pages = imm.lgot_pages();
        if imm_lgot_pages > 0 {
            let img = build_lgot(&module.lgot_immovable);
            let new_frames = kernel.phys.alloc_n(imm_lgot_pages);
            for (i, &pfn) in new_frames.iter().enumerate() {
                kernel
                    .phys
                    .write(pfn, 0, &img[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
            }
            // Atomic PTE swap: pending calls read either the old or the
            // new table, never a hole (§4.2 "GOT pages in the new address
            // space are remapped to point to the new GOTs").
            for (i, &pfn) in new_frames.iter().enumerate() {
                kernel
                    .space
                    .replace(
                        imm.base + imm.lgot_off + (i * PAGE_SIZE) as u64,
                        pfn,
                        PteFlags::RO_DATA,
                    )
                    .map_err(|e| format!("rerand imm lgot swap failed: {e}"))?;
            }
            let mut cur = module.immovable_lgot_frames.lock();
            doomed_frames.append(&mut std::mem::replace(&mut *cur, new_frames));
        }
    }
    drop(_va_guard);

    // (4) Adjust movable pointers in data (paper §6: "pointers are also
    // adjusted when re-randomizing"). Direct frame writes: the slots may
    // live on sealed (read-only-mapped) pages.
    for slot in &module.adjust_slots {
        let frames = match slot.part {
            Part::Movable => &module.movable.frames,
            Part::Immovable => &module.immovable.as_ref().unwrap().frames,
        };
        let page = (slot.slot_off / PAGE_SIZE as u64) as usize;
        let off = (slot.slot_off % PAGE_SIZE as u64) as usize;
        kernel
            .phys
            .write_u64(frames[page], off, new_base + slot.target_off);
    }

    // (5) Publish, then let the module refresh any run-time pointers.
    module.movable_base.store(new_base, Ordering::Release);
    module.current_key.store(new_key, Ordering::Release);
    module.generation.fetch_add(1, Ordering::Relaxed);
    if let Some(up) = module.update_pointers_va {
        let mut vm = kernel.vm();
        vm.call(up, &[new_base])
            .map_err(|e| format!("update_pointers failed: {e}"))?;
    }

    // (6) Retire the old range — unmapped when pending calls drain.
    let kernel2 = kernel.clone();
    let total_pages = pages;
    kernel.reclaim.retire(Box::new(move || {
        // Batched unmap: one TLB shootdown for the whole stale range.
        kernel2.space.unmap_sparse(old_base, total_pages);
        for pfn in doomed_frames {
            kernel2.phys.free(pfn);
        }
    }));

    // (7) Rotate the per-CPU randomized stack pools so stack addresses
    // go stale on the same cadence as code addresses (§3.4).
    registry.stacks.rotate(kernel);
    Ok(new_base)
}

/// The background randomizer thread driving a set of modules — the
/// `randmod` kernel module of the artifact
/// (`modprobe randmod module_names=e1000,nvme rand_period=20`).
pub struct Rerandomizer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    cycles: Arc<AtomicU64>,
    busy_ns: Arc<AtomicU64>,
}

impl Rerandomizer {
    /// Start re-randomizing `module_names` every `period`.
    ///
    /// # Panics
    ///
    /// Panics if any named module is missing or not re-randomizable.
    pub fn spawn(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        module_names: &[&str],
        period: Duration,
    ) -> Rerandomizer {
        let modules: Vec<Arc<LoadedModule>> = module_names
            .iter()
            .map(|n| {
                let m = registry
                    .get(n)
                    .unwrap_or_else(|| panic!("randmod: no module `{n}`"));
                assert!(m.rerandomizable, "randmod: `{n}` is not re-randomizable");
                m
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let busy_ns = Arc::new(AtomicU64::new(0));
        kernel.printk.log("Randomize: kthread started");
        let handle = {
            let stop = stop.clone();
            let cycles = cycles.clone();
            let busy_ns = busy_ns.clone();
            std::thread::Builder::new()
                .name("randomizer".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        for m in &modules {
                            if let Err(e) = rerandomize_module(&kernel, &registry, m) {
                                kernel.printk.log(format!("Randomize: ERROR {e}"));
                                return;
                            }
                            cycles.fetch_add(1, Ordering::Relaxed);
                        }
                        let spent = t0.elapsed();
                        busy_ns.fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
                        // Account the randomizer thread's CPU use on the
                        // modeled machine (it occupies one core).
                        kernel.percpu.account(0, spent);
                        if spent < period {
                            std::thread::sleep(period - spent);
                        }
                    }
                })
                .expect("spawn randomizer")
        };
        Rerandomizer {
            stop,
            handle: Some(handle),
            cycles,
            busy_ns,
        }
    }

    /// Completed module-cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RerandStats {
        RerandStats {
            randomized: self.cycles(),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
        }
    }

    /// Stop the thread and wait for it.
    pub fn stop(mut self) -> RerandStats {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.stats()
    }
}

impl Drop for Rerandomizer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Rerandomizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rerandomizer")
            .field("cycles", &self.cycles())
            .finish()
    }
}

/// Print the artifact-style statistics block to the kernel log:
///
/// ```text
/// Randomized 53 times
/// SMR Retire: 106 / SMR Free: 106 / SMR Delta: 0
/// Stack Alloc: 530 / Stack Free: 530 / Stack Delta: 0
/// ```
pub fn log_stats(kernel: &Kernel, cycles: u64, stacks: &StackPool) {
    let smr = kernel.reclaim.stats();
    let st = stacks.stats();
    kernel.printk.log("-----".to_string());
    kernel.printk.log(format!("Randomized {cycles} times"));
    kernel.printk.log(format!("SMR Retire: {}", smr.retired));
    kernel.printk.log(format!("SMR Free: {}", smr.freed));
    kernel.printk.log(format!("SMR Delta: {}", smr.delta()));
    kernel.printk.log(format!("Stack Alloc: {}", st.allocated));
    kernel.printk.log(format!("Stack Free: {}", st.freed));
    kernel.printk.log(format!("Stack Delta: {}", st.delta()));
}

/// Guard against stats types drifting from the dmesg format.
#[allow(dead_code)]
fn _stats_shape(s: &RerandStats) -> (u64, Duration) {
    (s.randomized, s.busy)
}

/// Mutex re-exported for doc purposes.
#[allow(unused)]
type _M = Mutex<()>;
