//! Cycle-stage hooks: the observation/injection seam the verification
//! harness (`adelie-testkit`) drives.
//!
//! A re-randomization cycle is a sequence of fallible stages
//! ([`CycleStage`]). Production runs have no hooks installed and pay
//! one uncontended read-lock snapshot per cycle. With hooks installed
//! (via
//! [`ModuleRegistry::set_cycle_hooks`](crate::ModuleRegistry::set_cycle_hooks)),
//! every stage first asks [`CycleHooks::allow`]; a `false` answer makes
//! the cycle fail *at that stage* through the exact same typed-error and
//! rollback paths a real fault would take — which is how the testkit's
//! `FaultPlan` proves the rollback invariants hold at every step. After
//! a successful cycle, [`CycleHooks::committed`] reports the move, which
//! is how the testkit's layout oracle learns the ground-truth timeline
//! of old/new ranges without racing the scheduler.

/// One fallible (or observable) stage of a re-randomization cycle, in
/// execution order. See `rerand.rs` for the paper-§4.2 mapping.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CycleStage {
    /// Picking and reserving the fresh random base (step 1).
    Reserve,
    /// Zero-copy aliasing of the movable pages at the new base (step 2).
    AliasMap,
    /// Building + mapping the movable part's new local GOT (step 3).
    MovableGot,
    /// Atomic PTE swap of the immovable part's local GOT (step 3).
    ImmovableGotSwap,
    /// Adjusting absolute data slots pointing into the movable part
    /// (step 4).
    AdjustSlots,
    /// The module's `update_pointers` callback (step 5) — fails *after*
    /// the move has committed.
    UpdatePointers,
    /// SMR retirement of the old range (step 6). Denying this stage
    /// *leaks* the old mapping — used to prove the oracle detects leaks.
    Retire,
    /// Per-CPU stack-pool rotation (step 7).
    StackRotate,
}

impl CycleStage {
    /// Short label (printk, error text, reports).
    pub fn name(&self) -> &'static str {
        match self {
            CycleStage::Reserve => "reserve",
            CycleStage::AliasMap => "alias",
            CycleStage::MovableGot => "movable-got",
            CycleStage::ImmovableGotSwap => "immovable-got-swap",
            CycleStage::AdjustSlots => "adjust-slots",
            CycleStage::UpdatePointers => "update-pointers",
            CycleStage::Retire => "retire",
            CycleStage::StackRotate => "stack-rotate",
        }
    }
}

impl std::fmt::Display for CycleStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A committed move, reported to [`CycleHooks::committed`].
#[derive(Copy, Clone, Debug)]
pub struct CycleCommit<'a> {
    /// Module that moved.
    pub module: &'a str,
    /// Movable base before the cycle.
    pub old_base: u64,
    /// Movable base after the cycle.
    pub new_base: u64,
    /// Movable-part span in bytes (same before and after).
    pub span: u64,
    /// Module generation after the move (`times_randomized`).
    pub generation: u64,
}

/// Observation + fault-injection callbacks around each cycle stage.
///
/// Implementations must be cheap and non-blocking: `allow` runs inside
/// the cycle with the module's `move_lock` held.
pub trait CycleHooks: Send + Sync {
    /// Called before each stage. Return `false` to make the cycle fail
    /// at this stage (through the normal typed-error/rollback path).
    fn allow(&self, _module: &str, _stage: CycleStage) -> bool {
        true
    }

    /// Called once per successful cycle, after publication (new base
    /// visible, old range retired), still under `move_lock`.
    fn committed(&self, _commit: &CycleCommit<'_>) {}
}
