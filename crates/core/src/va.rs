//! Contention-safe virtual-address allocation for module placement.
//!
//! Historically the registry held one big `va_lock` across *pick base →
//! build image → map pages*, which serialized every load and every
//! re-randomization cycle — a single randomizer thread was the only
//! thing that could work under it. The scheduler's multi-worker pool
//! overlaps cycles of independent modules, so placement is now
//! *reservation*-based:
//!
//! 1. a candidate base is drawn from the kernel RNG,
//! 2. under a short lock, the candidate is checked against both the
//!    currently **reserved** ranges and the already **mapped** pages,
//! 3. on success the range is recorded and a [`VaReservation`] guard is
//!    returned; the caller maps at leisure and drops the guard once the
//!    pages are live (at which point the page tables themselves exclude
//!    the range from future picks).
//!
//! Any two in-flight placements — loads, re-randomization cycles, and
//! randomized stack allocations, which all draw from this allocator —
//! are therefore disjoint by construction, with no lock held during the
//! expensive build/map phase.

use adelie_kernel::{layout, Kernel};
use adelie_vmem::{Access, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The registry's shared placement state.
pub(crate) struct VaAllocator {
    /// In-flight `(base, end)` ranges: picked but not fully mapped yet.
    reserved: Mutex<Vec<(u64, u64)>>,
    /// Bump cursor for the legacy 2 GiB window.
    legacy_cursor: AtomicU64,
    /// `[lo, hi)` randomization window candidates are drawn from — the
    /// whole arena for a standalone kernel, one disjoint
    /// `layout::shard_windows` slice for a fleet shard.
    window: (u64, u64),
}

impl VaAllocator {
    /// An allocator whose legacy window starts at `legacy_start` and
    /// whose randomized placements are confined to `window`.
    pub(crate) fn new(legacy_start: u64, window: (u64, u64)) -> Arc<VaAllocator> {
        Arc::new(VaAllocator {
            reserved: Mutex::new(Vec::new()),
            legacy_cursor: AtomicU64::new(legacy_start),
            window,
        })
    }

    /// Claim `size` bytes of the legacy window (vanilla Linux module
    /// placement); returns the base of the claimed span.
    pub(crate) fn legacy_bump(&self, size: u64) -> u64 {
        self.legacy_cursor.fetch_add(size, Ordering::Relaxed)
    }

    /// Reserve a random, free, page-aligned range of `pages` inside the
    /// allocator's window (the whole 57-bit arena for a standalone
    /// kernel — 64-bit KASLR placement). Returns `None` when no free
    /// range is found after bounded retries.
    pub(crate) fn reserve(
        self: &Arc<Self>,
        kernel: &Kernel,
        pages: usize,
    ) -> Option<VaReservation> {
        let span = (pages * PAGE_SIZE) as u64;
        let (lo, hi) = self.window;
        let limit = hi.min(layout::MODULE_CEILING).checked_sub(span)?;
        // Candidate bases are page slots in `[first, last_excl)`. The
        // topmost slot is deliberately excluded, mirroring the old
        // whole-arena arithmetic: a span within a page or two of the
        // window top has no (or exactly one) candidate, and retrying a
        // 256-draw loop over one near-window-sized free-range scan is
        // pathological — report exhaustion instead. (Page slot 0 is
        // never a candidate either: base 0 is not a valid placement.)
        let first = lo.div_ceil(PAGE_SIZE as u64).max(1);
        let last_excl = limit / PAGE_SIZE as u64;
        let slots = last_excl.checked_sub(first).filter(|&s| s > 0)?;
        for _ in 0..256 {
            // Draw outside the lock: the kernel RNG has its own.
            let base = (first + kernel.rng_below(slots)) * PAGE_SIZE as u64;
            let mut reserved = self.reserved.lock();
            let clashes = reserved.iter().any(|&(b, e)| base < e && b < base + span);
            if clashes || !range_is_free(kernel, base, pages) {
                continue;
            }
            reserved.push((base, base + span));
            return Some(VaReservation {
                va: self.clone(),
                base,
                span,
            });
        }
        None
    }
}

fn range_is_free(kernel: &Kernel, base: u64, pages: usize) -> bool {
    // One epoch pin and one snapshot-root load for the whole candidate
    // range instead of a pin per page — this probe runs up to 256 times
    // per allocation under VA pressure.
    let vas: Vec<u64> = (0..pages).map(|i| base + (i * PAGE_SIZE) as u64).collect();
    kernel
        .space
        .translate_batch(&vas, Access::Read)
        .iter()
        .all(|r| r.is_err())
}

/// A claimed-but-not-yet-mapped address range. Hold it while mapping;
/// drop it once the pages are live (the page tables then keep the range
/// excluded from future picks).
pub(crate) struct VaReservation {
    va: Arc<VaAllocator>,
    base: u64,
    span: u64,
}

impl VaReservation {
    /// Base address of the reserved range.
    pub(crate) fn base(&self) -> u64 {
        self.base
    }
}

impl Drop for VaReservation {
    fn drop(&mut self) {
        let mut reserved = self.va.reserved.lock();
        if let Some(pos) = reserved
            .iter()
            .position(|&(b, e)| b == self.base && e == self.base + self.span)
        {
            reserved.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_kernel::KernelConfig;

    #[test]
    fn reservations_never_overlap() {
        let kernel = Kernel::new(KernelConfig::default());
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
        let held: Vec<VaReservation> = (0..64)
            .map(|_| va.reserve(&kernel, 8).expect("arena is huge"))
            .collect();
        for (i, a) in held.iter().enumerate() {
            for b in held.iter().skip(i + 1) {
                let (ab, ae) = (a.base, a.base + a.span);
                let (bb, be) = (b.base, b.base + b.span);
                assert!(
                    ae <= bb || be <= ab,
                    "overlap: {ab:#x}..{ae:#x} vs {bb:#x}..{be:#x}"
                );
            }
        }
    }

    /// Regression: a span within a page or two of `MODULE_CEILING` made
    /// `limit / PAGE_SIZE - 1` wrap, turning `rng_below` into a
    /// near-2^64 draw (and the retry loop into a 2^45-page scan). Such
    /// requests must fail fast with `None` instead.
    #[test]
    fn reserve_near_the_ceiling_returns_none() {
        let kernel = Kernel::new(KernelConfig::default());
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
        let ceiling_pages = (layout::MODULE_CEILING / PAGE_SIZE as u64) as usize;
        // Exactly at and one page under the ceiling: neither leaves a
        // single valid (non-zero) base slot.
        for pages in [ceiling_pages, ceiling_pages - 1] {
            assert!(
                va.reserve(&kernel, pages).is_none(),
                "{pages}-page reservation must report exhaustion"
            );
        }
        // And over the ceiling as well (checked_sub path).
        assert!(va.reserve(&kernel, ceiling_pages + 1).is_none());
        // Sanity: ordinary requests still succeed.
        assert!(va.reserve(&kernel, 8).is_some());
    }

    /// Fleet shards confine placement to a `[lo, hi)` window: every
    /// draw lands inside it, and a request bigger than the window
    /// reports exhaustion instead of spilling into a neighbor shard.
    #[test]
    fn windowed_reservations_stay_inside_the_window() {
        let kernel = Kernel::new(KernelConfig::default());
        let windows = layout::shard_windows(4);
        for &(lo, hi) in &windows {
            let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (lo, hi));
            for _ in 0..32 {
                let r = va.reserve(&kernel, 8).expect("shard window is huge");
                assert!(r.base() >= lo, "{:#x} below window {lo:#x}", r.base());
                assert!(
                    r.base() + (8 * PAGE_SIZE) as u64 <= hi,
                    "{:#x} spills past window end {hi:#x}",
                    r.base()
                );
            }
        }
        // A span wider than the window cannot be placed.
        let (lo, hi) = windows[1];
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (lo, hi));
        let too_big = ((hi - lo) / PAGE_SIZE as u64 + 1) as usize;
        assert!(va.reserve(&kernel, too_big).is_none());
    }

    #[test]
    fn dropping_a_reservation_frees_the_range() {
        let kernel = Kernel::new(KernelConfig::default());
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
        let r = va.reserve(&kernel, 4).unwrap();
        assert_eq!(va.reserved.lock().len(), 1);
        drop(r);
        assert!(va.reserved.lock().is_empty());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use adelie_kernel::KernelConfig;
    use adelie_vmem::PteFlags;
    use proptest::prelude::*;

    fn overlaps(ab: u64, ae: u64, bb: u64, be: u64) -> bool {
        ab < be && bb < ae
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The allocator's whole contract, under arbitrary interleavings
        /// of reserve / commit-and-map / free: every reservation it
        /// hands out is page-aligned, non-empty, disjoint from every
        /// other outstanding reservation, and disjoint from everything
        /// already mapped — exactly the invariant concurrent loads,
        /// cycles, and stack allocations lean on.
        #[test]
        fn interleaved_placements_stay_aligned_and_disjoint(
            ops in proptest::collection::vec((0u8..3, 1usize..17, 0usize..64), 1..40)
        ) {
            let kernel = Kernel::new(KernelConfig::default());
            let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
            let mut held: Vec<VaReservation> = Vec::new();
            let mut mapped: Vec<(u64, u64)> = Vec::new();
            for (op, pages, pick) in ops {
                match op {
                    // Reserve: must be aligned and disjoint from both
                    // the outstanding reservations and the mapped set.
                    0 => {
                        let r = va.reserve(&kernel, pages).expect("arena is huge");
                        let (rb, re) = (r.base, r.base + r.span);
                        prop_assert_eq!(rb % PAGE_SIZE as u64, 0, "unaligned base {:#x}", rb);
                        prop_assert_eq!(r.span, (pages * PAGE_SIZE) as u64);
                        for h in &held {
                            prop_assert!(
                                !overlaps(rb, re, h.base, h.base + h.span),
                                "reservation overlaps a held reservation"
                            );
                        }
                        for &(mb, me) in &mapped {
                            prop_assert!(
                                !overlaps(rb, re, mb, me),
                                "reservation overlaps a mapped range"
                            );
                        }
                        held.push(r);
                    }
                    // Commit: map the pages for real (what a finished
                    // load/cycle does), then release the guard — from
                    // here the page tables must keep the range excluded.
                    1 if !held.is_empty() => {
                        let r = held.swap_remove(pick % held.len());
                        let n = (r.span / PAGE_SIZE as u64) as usize;
                        kernel
                            .space
                            .map_range(r.base, &kernel.phys.alloc_n(n), PteFlags::DATA)
                            .expect("reserved range must be mappable");
                        mapped.push((r.base, r.base + r.span));
                    }
                    // Abandon: drop the guard without mapping — the
                    // range is reusable and nothing may leak.
                    _ if !held.is_empty() => {
                        held.swap_remove(pick % held.len());
                    }
                    _ => {}
                }
            }
            // Whatever remains reserved is still pairwise disjoint.
            for (i, a) in held.iter().enumerate() {
                for b in held.iter().skip(i + 1) {
                    prop_assert!(!overlaps(a.base, a.base + a.span, b.base, b.base + b.span));
                }
            }
            drop(held);
            prop_assert!(va.reserved.lock().is_empty(), "guards must drain the table");
        }

        /// The legacy bump window never hands out overlapping spans and
        /// stays inside the 2 GiB window for boot-realistic loads.
        #[test]
        fn legacy_bump_spans_never_overlap(
            sizes in proptest::collection::vec(1u64..64, 1..32)
        ) {
            let va = VaAllocator::new(layout::LEGACY_MODULE_BASE, (0, layout::MODULE_CEILING));
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for s in sizes {
                let bytes = s * PAGE_SIZE as u64;
                let base = va.legacy_bump(bytes);
                for &(b, e) in &spans {
                    prop_assert!(!overlaps(base, base + bytes, b, e));
                }
                prop_assert!(base >= layout::LEGACY_MODULE_BASE);
                prop_assert!(
                    base + bytes <= layout::LEGACY_MODULE_BASE + layout::LEGACY_MODULE_SIZE,
                    "boot-realistic load spilled out of the 2 GiB window"
                );
                spans.push((base, base + bytes));
            }
        }
    }
}
