//! Contention-safe virtual-address allocation for module placement.
//!
//! Historically the registry held one big `va_lock` across *pick base →
//! build image → map pages*, which serialized every load and every
//! re-randomization cycle — a single randomizer thread was the only
//! thing that could work under it. The scheduler's multi-worker pool
//! overlaps cycles of independent modules, so placement is now
//! *reservation*-based:
//!
//! 1. a candidate base is drawn from the kernel RNG,
//! 2. under a short lock, the candidate is checked against both the
//!    currently **reserved** ranges and the already **mapped** pages,
//! 3. on success the range is recorded and a [`VaReservation`] guard is
//!    returned; the caller maps at leisure and drops the guard once the
//!    pages are live (at which point the page tables themselves exclude
//!    the range from future picks).
//!
//! Any two in-flight placements — loads, re-randomization cycles, and
//! randomized stack allocations, which all draw from this allocator —
//! are therefore disjoint by construction, with no lock held during the
//! expensive build/map phase.

use adelie_kernel::{layout, Kernel};
use adelie_vmem::{Access, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The registry's shared placement state.
pub(crate) struct VaAllocator {
    /// In-flight `(base, end)` ranges: picked but not fully mapped yet.
    reserved: Mutex<Vec<(u64, u64)>>,
    /// Bump cursor for the legacy 2 GiB window.
    legacy_cursor: AtomicU64,
}

impl VaAllocator {
    /// An allocator whose legacy window starts at `legacy_start`.
    pub(crate) fn new(legacy_start: u64) -> Arc<VaAllocator> {
        Arc::new(VaAllocator {
            reserved: Mutex::new(Vec::new()),
            legacy_cursor: AtomicU64::new(legacy_start),
        })
    }

    /// Claim `size` bytes of the legacy window (vanilla Linux module
    /// placement); returns the base of the claimed span.
    pub(crate) fn legacy_bump(&self, size: u64) -> u64 {
        self.legacy_cursor.fetch_add(size, Ordering::Relaxed)
    }

    /// Reserve a random, free, page-aligned range of `pages` anywhere in
    /// the 57-bit arena (64-bit KASLR placement). Returns `None` when no
    /// free range is found after bounded retries.
    pub(crate) fn reserve(
        self: &Arc<Self>,
        kernel: &Kernel,
        pages: usize,
    ) -> Option<VaReservation> {
        let span = (pages * PAGE_SIZE) as u64;
        let limit = layout::MODULE_CEILING.checked_sub(span)?;
        for _ in 0..256 {
            // Draw outside the lock: the kernel RNG has its own.
            let base = (kernel.rng_below(limit / PAGE_SIZE as u64 - 1) + 1) * PAGE_SIZE as u64;
            let mut reserved = self.reserved.lock();
            let clashes = reserved.iter().any(|&(b, e)| base < e && b < base + span);
            if clashes || !range_is_free(kernel, base, pages) {
                continue;
            }
            reserved.push((base, base + span));
            return Some(VaReservation {
                va: self.clone(),
                base,
                span,
            });
        }
        None
    }
}

fn range_is_free(kernel: &Kernel, base: u64, pages: usize) -> bool {
    (0..pages).all(|i| {
        kernel
            .space
            .translate(base + (i * PAGE_SIZE) as u64, Access::Read)
            .is_err()
    })
}

/// A claimed-but-not-yet-mapped address range. Hold it while mapping;
/// drop it once the pages are live (the page tables then keep the range
/// excluded from future picks).
pub(crate) struct VaReservation {
    va: Arc<VaAllocator>,
    base: u64,
    span: u64,
}

impl VaReservation {
    /// Base address of the reserved range.
    pub(crate) fn base(&self) -> u64 {
        self.base
    }
}

impl Drop for VaReservation {
    fn drop(&mut self) {
        let mut reserved = self.va.reserved.lock();
        if let Some(pos) = reserved
            .iter()
            .position(|&(b, e)| b == self.base && e == self.base + self.span)
        {
            reserved.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_kernel::KernelConfig;

    #[test]
    fn reservations_never_overlap() {
        let kernel = Kernel::new(KernelConfig::default());
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE);
        let held: Vec<VaReservation> = (0..64)
            .map(|_| va.reserve(&kernel, 8).expect("arena is huge"))
            .collect();
        for (i, a) in held.iter().enumerate() {
            for b in held.iter().skip(i + 1) {
                let (ab, ae) = (a.base, a.base + a.span);
                let (bb, be) = (b.base, b.base + b.span);
                assert!(
                    ae <= bb || be <= ab,
                    "overlap: {ab:#x}..{ae:#x} vs {bb:#x}..{be:#x}"
                );
            }
        }
    }

    #[test]
    fn dropping_a_reservation_frees_the_range() {
        let kernel = Kernel::new(KernelConfig::default());
        let va = VaAllocator::new(layout::LEGACY_MODULE_BASE);
        let r = va.reserve(&kernel, 4).unwrap();
        assert_eq!(va.reserved.lock().len(), 1);
        drop(r);
        assert!(va.reserved.lock().is_empty());
    }
}
