//! The PIC module loader.
//!
//! Keeps the relocatable format and finalizes everything at load time
//! (paper §4.1): builds the four GOTs (movable/immovable × local/fixed),
//! emits retpoline-safe PLT stubs when the mitigation is on, applies the
//! Fig. 4 run-time patches (`call *foo@GOTPCREL(%rip)` → `call foo; nop`
//! and `mov foo@GOTPCREL(%rip),%r` → `lea foo(%rip),%r` for same-part
//! symbols), seals GOT pages read-only, and registers exports with the
//! kernel symbol table. The legacy (non-PIC) mode reproduces vanilla
//! Linux: absolute relocations, single region in the 2 GiB window.

use crate::module::{
    AdjustSlot, LazyPltSlot, LoadStats, LoadedModule, LocalGotEntry, PageGroup, Part, PartImage,
};
use crate::va::{VaAllocator, VaReservation};
use adelie_isa::{Asm, Reg};
use adelie_kernel::{layout, Kernel, VmError};
use adelie_obj::{ObjectFile, Reloc, RelocKind, SectionKind, SymbolDef};
use adelie_plugin::{CodeModel, TransformOptions, KEY_SYMBOL};
use adelie_vmem::{Batch, PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock, Weak};

/// Errors surfaced while loading a module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoadError {
    /// A referenced symbol is neither module-defined nor in kallsyms.
    Unresolved(String),
    /// A PC32 relocation crosses the movable/immovable boundary — the
    /// parts can be any distance apart, so this cannot link.
    CrossPartPcRel(String),
    /// A relocation kind that the chosen code model forbids.
    UnexpectedReloc(String),
    /// A 32-bit field cannot hold the computed value.
    FieldOverflow(String),
    /// No free virtual range found for the module.
    NoSpace,
    /// The declared init/exit entry point is not exported.
    MissingEntry(String),
    /// Section sizes/alignments overflow the layout arithmetic or the
    /// module arena — adversarial `sh_size` values land here instead of
    /// wrapping (same bug class as the `VaAllocator::reserve` fix).
    TooLarge(String),
    /// The object failed transformation or ELF ingestion before it
    /// reached the loader proper.
    Ingest(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Unresolved(s) => write!(f, "unresolved symbol `{s}`"),
            LoadError::CrossPartPcRel(s) => write!(f, "PC32 across parts for `{s}`"),
            LoadError::UnexpectedReloc(s) => write!(f, "unexpected relocation: {s}"),
            LoadError::FieldOverflow(s) => write!(f, "relocation overflow for `{s}`"),
            LoadError::NoSpace => write!(f, "no free virtual address range"),
            LoadError::MissingEntry(s) => write!(f, "entry point `{s}` not defined"),
            LoadError::TooLarge(s) => write!(f, "module layout overflow: {s}"),
            LoadError::Ingest(s) => write!(f, "object ingestion failed: {s}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Which GOT a slot lives in.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct GotRef {
    local: bool,
    idx: usize,
}

#[derive(Clone, Debug)]
enum Action {
    /// `S + A - P` into the 32-bit field.
    PcRelDirect,
    /// `FF 15 d32` → `E8 rel32 ; 90`.
    PatchCallDirect,
    /// `FF 25 d32` → `E9 rel32 ; 90`.
    PatchJmpDirect,
    /// opcode `8B` → `8D`, then `S + A - P`.
    PatchMovLea,
    /// RIP-relative reference to a GOT slot.
    Got(GotRef),
    /// `call rel32` to a PLT stub.
    Plt(usize),
    /// 64-bit absolute.
    Abs64,
    /// 32-bit sign-extended absolute (legacy only).
    Abs32,
}

#[derive(Clone, Debug)]
struct Decision {
    section: SectionKind,
    reloc: Reloc,
    action: Action,
}

/// A lazily-bound PLT slot this part contributes (resolved into a
/// [`LazyPltSlot`] once symbol offsets and binder addresses are known).
struct LazySlotPlan {
    symbol: Arc<str>,
    got: GotRef,
    movable_target: bool,
}

/// Everything needed to lay out and materialize one part.
struct PartPlan {
    part: Part,
    code_secs: Vec<SectionKind>,
    data_groups: Vec<(Vec<SectionKind>, PteFlags)>,
    sec_off: HashMap<SectionKind, u64>,
    plt_off: u64,
    thunk_off: u64,
    /// Stub order and the GOT slot each one jumps through.
    plt: Vec<(Arc<str>, GotRef)>,
    plt_index: HashMap<Arc<str>, usize>,
    lgot: Vec<LocalGotEntry>,
    lgot_index: HashMap<Arc<str>, usize>,
    fgot: Vec<Arc<str>>,
    fgot_index: HashMap<Arc<str>, usize>,
    /// Lazy slots (keyed `plt$name` in the GOT indices so an eager
    /// GOTPCREL data reference to the same symbol keeps its own slot).
    lazy: Vec<LazySlotPlan>,
    lgot_off: u64,
    fgot_off: u64,
    groups: Vec<PageGroup>,
    total_pages: usize,
    decisions: Vec<Decision>,
}

/// Bytes per PLT stub slot (12 used, padded for alignment).
const PLT_STUB_SIZE: u64 = 16;

/// Checked `next_multiple_of` — adversarial sizes near `u64::MAX` must
/// surface as [`LoadError::TooLarge`], never wrap.
fn align_up(v: u64, a: u64) -> Result<u64, LoadError> {
    v.checked_next_multiple_of(a)
        .ok_or_else(|| LoadError::TooLarge(format!("align_up({v:#x}, {a}) overflows")))
}

/// Checked add with the same contract as [`align_up`].
fn add_sz(a: u64, b: u64) -> Result<u64, LoadError> {
    a.checked_add(b)
        .ok_or_else(|| LoadError::TooLarge(format!("{a:#x} + {b:#x} overflows")))
}

fn is_rex(b: u8) -> bool {
    (0x40..=0x4F).contains(&b)
}

/// What kind of site precedes a GOTPCREL field (Fig. 4 patch detection —
/// the same opcode-byte inspection real linker relaxation performs).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum SiteKind {
    IndirectCall,
    IndirectJmp,
    GotLoad,
    Other,
}

fn site_kind(bytes: &[u8], field_off: usize) -> SiteKind {
    if field_off >= 2 {
        let (op, modrm) = (bytes[field_off - 2], bytes[field_off - 1]);
        if op == 0xFF && modrm == 0x15 {
            return SiteKind::IndirectCall;
        }
        if op == 0xFF && modrm == 0x25 {
            return SiteKind::IndirectJmp;
        }
        if op == 0x8B && (modrm & 0xC7) == 0x05 && field_off >= 3 && is_rex(bytes[field_off - 3]) {
            return SiteKind::GotLoad;
        }
    }
    SiteKind::Other
}

impl PartPlan {
    fn new(part: Part, rerandomize: bool, single_part: bool) -> PartPlan {
        let (code_secs, data_groups): (Vec<SectionKind>, Vec<(Vec<SectionKind>, PteFlags)>) =
            if single_part {
                (
                    vec![SectionKind::Text, SectionKind::FixedText],
                    vec![
                        (vec![SectionKind::Data, SectionKind::Bss], PteFlags::DATA),
                        (vec![SectionKind::Rodata], PteFlags::RO_DATA),
                    ],
                )
            } else if part == Part::Movable {
                (
                    vec![SectionKind::Text],
                    vec![(vec![SectionKind::Data, SectionKind::Bss], PteFlags::DATA)],
                )
            } else {
                (
                    vec![SectionKind::FixedText],
                    vec![(vec![SectionKind::Rodata], PteFlags::RO_DATA)],
                )
            };
        let _ = rerandomize;
        PartPlan {
            part,
            code_secs,
            data_groups,
            sec_off: HashMap::new(),
            plt_off: 0,
            thunk_off: 0,
            plt: Vec::new(),
            plt_index: HashMap::new(),
            lgot: Vec::new(),
            lgot_index: HashMap::new(),
            fgot: Vec::new(),
            fgot_index: HashMap::new(),
            lazy: Vec::new(),
            lgot_off: 0,
            fgot_off: 0,
            groups: Vec::new(),
            total_pages: 0,
            decisions: Vec::new(),
        }
    }

    fn contains(&self, sec: SectionKind) -> bool {
        self.code_secs.contains(&sec) || self.data_groups.iter().any(|(s, _)| s.contains(&sec))
    }

    fn lgot_slot(&mut self, key: &str, entry: LocalGotEntry) -> GotRef {
        if let Some(&idx) = self.lgot_index.get(key) {
            return GotRef { local: true, idx };
        }
        let idx = self.lgot.len();
        self.lgot.push(entry);
        self.lgot_index.insert(Arc::from(key), idx);
        GotRef { local: true, idx }
    }

    fn fgot_slot(&mut self, name: &Arc<str>) -> GotRef {
        if let Some(&idx) = self.fgot_index.get(&**name) {
            return GotRef { local: false, idx };
        }
        let idx = self.fgot.len();
        self.fgot.push(name.clone());
        self.fgot_index.insert(name.clone(), idx);
        GotRef { local: false, idx }
    }

    /// A lazily-bound slot for `symbol`, keyed `plt$symbol` so an eager
    /// GOTPCREL reference to the same name stays a separate, eagerly
    /// resolved slot. `movable_target` picks local vs fixed GOT.
    fn lazy_slot(&mut self, symbol: &Arc<str>, movable_target: bool) -> GotRef {
        let key = format!("plt${symbol}");
        let got = if movable_target {
            if let Some(&idx) = self.lgot_index.get(key.as_str()) {
                return GotRef { local: true, idx };
            }
            // Placeholder: the binder address and lazy index are patched
            // in once binders are registered.
            self.lgot_slot(
                &key,
                LocalGotEntry::Lazy {
                    lazy_idx: usize::MAX,
                    binder: 0,
                },
            )
        } else {
            if let Some(&idx) = self.fgot_index.get(key.as_str()) {
                return GotRef { local: false, idx };
            }
            let idx = self.fgot.len();
            self.fgot.push(symbol.clone());
            self.fgot_index.insert(Arc::from(key.as_str()), idx);
            GotRef { local: false, idx }
        };
        self.lazy.push(LazySlotPlan {
            symbol: symbol.clone(),
            got,
            movable_target,
        });
        got
    }

    fn plt_slot(&mut self, name: &Arc<str>, got: GotRef) -> usize {
        if let Some(&idx) = self.plt_index.get(&**name) {
            return idx;
        }
        let idx = self.plt.len();
        self.plt.push((name.clone(), got));
        self.plt_index.insert(name.clone(), idx);
        idx
    }

    fn slot_off(&self, got: GotRef) -> u64 {
        let base = if got.local {
            self.lgot_off
        } else {
            self.fgot_off
        };
        base + (got.idx * 8) as u64
    }
}

/// Where a module-defined symbol landed.
#[derive(Copy, Clone, Debug)]
struct SymPlace {
    part: Part,
    off: u64,
}

/// Unregisters freshly-registered lazy-PLT binder natives if the load
/// fails partway (a later resolution error must not leak native-region
/// registrations, or re-loading the module would trip the
/// duplicate-name assertion).
struct BinderGuard<'a> {
    kernel: &'a Arc<Kernel>,
    names: Vec<String>,
    armed: bool,
}

impl Drop for BinderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            for n in &self.names {
                self.kernel.symbols.unregister_native(n);
            }
        }
    }
}

/// Loads object files into the simulated kernel.
pub struct Loader<'k> {
    kernel: &'k Arc<Kernel>,
    va: &'k Arc<VaAllocator>,
}

impl<'k> Loader<'k> {
    /// A loader bound to the kernel plus the registry's allocation state.
    pub(crate) fn new(kernel: &'k Arc<Kernel>, va: &'k Arc<VaAllocator>) -> Loader<'k> {
        Loader { kernel, va }
    }

    /// Load `obj` under the given options (the same options that drove
    /// the plugin transformation).
    ///
    /// # Errors
    ///
    /// See [`LoadError`].
    pub fn load(
        &self,
        obj: &ObjectFile,
        opts: &TransformOptions,
    ) -> Result<Arc<LoadedModule>, LoadError> {
        let rerand = opts.rerandomize;
        let single_part = !rerand;
        let mut movable = PartPlan::new(Part::Movable, rerand, single_part);
        let mut immovable = rerand.then(|| PartPlan::new(Part::Immovable, rerand, false));

        // ---- symbol partition --------------------------------------
        // Pre-place code sections (needed for patch-site inspection and
        // symbol offsets); data placed later. All layout arithmetic is
        // checked: an ELF-ingested object controls `sh_size`, so sizes
        // near `u64::MAX` must become `TooLarge`, not a wrap.
        let mut sym_place: HashMap<Arc<str>, SymPlace> = HashMap::new();
        let place_code = |plan: &mut PartPlan, obj: &ObjectFile| -> Result<u64, LoadError> {
            let mut off = 0u64;
            for &sec in &plan.code_secs.clone() {
                if let Some(s) = obj.section(sec) {
                    off = align_up(off, 16)?;
                    plan.sec_off.insert(sec, off);
                    off = add_sz(off, s.size as u64)?;
                }
            }
            Ok(off)
        };
        let mov_code_end = place_code(&mut movable, obj)?;
        let imm_code_end = match immovable.as_mut() {
            Some(p) => place_code(p, obj)?,
            None => 0,
        };

        // Data section placement happens after the PLT, whose size we
        // don't know yet — compute data offsets relative to a
        // placeholder and fix up after the reloc scan. To keep it
        // simple, scan relocs first (they only need *code* bytes for
        // patch detection and symbol *identity*, not final offsets).

        // Which part is each symbol in?
        let part_of_sec = |sec: SectionKind| -> Part {
            if single_part || sec.is_movable() {
                Part::Movable
            } else {
                Part::Immovable
            }
        };
        for sym in &obj.symbols {
            if let SymbolDef::Defined { section, .. } = sym.def {
                sym_place.insert(
                    sym.name.clone(),
                    SymPlace {
                        part: part_of_sec(section),
                        off: 0, // final offset filled after full layout
                    },
                );
            }
        }

        // ---- relocation scan ----------------------------------------
        let scan = |plan: &mut PartPlan,
                    obj: &ObjectFile,
                    sym_place: &HashMap<Arc<str>, SymPlace>|
         -> Result<(), LoadError> {
            for &sec in &[
                plan.code_secs.clone(),
                plan.data_groups
                    .iter()
                    .flat_map(|(s, _)| s.clone())
                    .collect(),
            ]
            .concat()
            {
                let Some(s) = obj.section(sec) else { continue };
                for r in &s.relocs {
                    let target_part = sym_place.get(&*r.symbol).map(|p| p.part);
                    let same_part = target_part == Some(plan.part);
                    let action = match r.kind {
                        RelocKind::Pc32 => {
                            if opts.model == CodeModel::Legacy || same_part {
                                Action::PcRelDirect
                            } else if target_part.is_some() {
                                return Err(LoadError::CrossPartPcRel(r.symbol.to_string()));
                            } else {
                                // PC32 to a kernel symbol is only legal
                                // in the legacy (±2 GiB) model.
                                return Err(LoadError::UnexpectedReloc(format!(
                                    "PC32 to kernel symbol `{}` in PIC code",
                                    r.symbol
                                )));
                            }
                        }
                        RelocKind::Plt32 if opts.model == CodeModel::Legacy => {
                            return Err(LoadError::UnexpectedReloc(format!(
                                "PLT32 for `{}` in non-PIC module",
                                r.symbol
                            )));
                        }
                        RelocKind::Plt32 => {
                            if same_part {
                                // Fig. 4: "call/jmp foo@PLT → call/jmp
                                // foo" for local calls — no stub.
                                Action::PcRelDirect
                            } else {
                                let movable_target = target_part == Some(Part::Movable);
                                let got = if opts.lazy_plt {
                                    // ELF `.ko` semantics: the slot
                                    // starts at the binder and resolves
                                    // on first call.
                                    plan.lazy_slot(&r.symbol, movable_target)
                                } else if movable_target {
                                    plan.lgot_slot(
                                        &r.symbol,
                                        LocalGotEntry::Sym {
                                            name: r.symbol.clone(),
                                            offset: 0,
                                        },
                                    )
                                } else {
                                    plan.fgot_slot(&r.symbol)
                                };
                                Action::Plt(plan.plt_slot(&r.symbol, got))
                            }
                        }
                        RelocKind::GotPcRel if opts.model == CodeModel::Legacy => {
                            return Err(LoadError::UnexpectedReloc(format!(
                                "GOTPCREL for `{}` in non-PIC module",
                                r.symbol
                            )));
                        }
                        RelocKind::GotPcRel => {
                            if &*r.symbol == KEY_SYMBOL {
                                Action::Got(plan.lgot_slot(KEY_SYMBOL, LocalGotEntry::Key))
                            } else if same_part {
                                match site_kind(&s.bytes, r.offset) {
                                    SiteKind::IndirectCall => Action::PatchCallDirect,
                                    SiteKind::IndirectJmp => Action::PatchJmpDirect,
                                    SiteKind::GotLoad => Action::PatchMovLea,
                                    SiteKind::Other => {
                                        let got = plan.lgot_slot(
                                            &r.symbol,
                                            LocalGotEntry::Sym {
                                                name: r.symbol.clone(),
                                                offset: 0,
                                            },
                                        );
                                        Action::Got(got)
                                    }
                                }
                            } else if target_part == Some(Part::Movable) {
                                // Immovable code referencing the movable
                                // part — the slot the re-randomizer
                                // rewrites every period.
                                let got = plan.lgot_slot(
                                    &r.symbol,
                                    LocalGotEntry::Sym {
                                        name: r.symbol.clone(),
                                        offset: 0,
                                    },
                                );
                                Action::Got(got)
                            } else {
                                // Kernel import or immovable target.
                                Action::Got(plan.fgot_slot(&r.symbol))
                            }
                        }
                        RelocKind::Abs64 => Action::Abs64,
                        RelocKind::Abs32S => {
                            if opts.model == CodeModel::Legacy {
                                Action::Abs32
                            } else {
                                return Err(LoadError::UnexpectedReloc(
                                    "ABS32S in PIC code".into(),
                                ));
                            }
                        }
                    };
                    plan.decisions.push(Decision {
                        section: sec,
                        reloc: r.clone(),
                        action,
                    });
                }
            }
            Ok(())
        };
        scan(&mut movable, obj, &sym_place)?;
        if let Some(imm) = immovable.as_mut() {
            scan(imm, obj, &sym_place)?;
        }

        // ---- final layout -------------------------------------------
        let finalize = |plan: &mut PartPlan,
                        code_end: u64,
                        obj: &ObjectFile,
                        retpoline: bool|
         -> Result<(), LoadError> {
            let mut off = align_up(code_end, 16)?;
            plan.plt_off = off;
            off = add_sz(off, plan.plt.len() as u64 * PLT_STUB_SIZE)?;
            if !plan.plt.is_empty() && retpoline {
                plan.thunk_off = off;
                off = add_sz(off, 32)?;
            }
            let code_pages = (align_up(off, PAGE_SIZE as u64)? / PAGE_SIZE as u64) as usize;
            plan.groups.push(PageGroup {
                page_start: 0,
                pages: code_pages,
                flags: PteFlags::TEXT,
            });
            let mut page_cursor = code_pages;
            let mut byte_cursor = (code_pages as u64) * PAGE_SIZE as u64;
            for (secs, flags) in plan.data_groups.clone() {
                let start_byte = byte_cursor;
                for sec in secs {
                    if let Some(s) = obj.section(sec) {
                        byte_cursor = align_up(byte_cursor, 16)?;
                        plan.sec_off.insert(sec, byte_cursor);
                        byte_cursor = add_sz(byte_cursor, s.size as u64)?;
                    }
                }
                let pages = (align_up(byte_cursor - start_byte, PAGE_SIZE as u64)?
                    / PAGE_SIZE as u64) as usize;
                if pages > 0 {
                    plan.groups.push(PageGroup {
                        page_start: page_cursor,
                        pages,
                        flags,
                    });
                }
                page_cursor += pages;
                byte_cursor = (page_cursor as u64) * PAGE_SIZE as u64;
            }
            // Local GOT pages, then fixed GOT pages (page-granular so the
            // re-randomizer can swap/seal them independently).
            plan.lgot_off = byte_cursor;
            let lgot_pages = (plan.lgot.len() * 8).div_ceil(PAGE_SIZE);
            if lgot_pages > 0 {
                plan.groups.push(PageGroup {
                    page_start: page_cursor,
                    pages: lgot_pages,
                    flags: PteFlags::RO_DATA, // sealed (§4.1)
                });
            }
            page_cursor += lgot_pages;
            byte_cursor = (page_cursor as u64) * PAGE_SIZE as u64;
            plan.fgot_off = byte_cursor;
            let fgot_pages = (plan.fgot.len() * 8).div_ceil(PAGE_SIZE);
            if fgot_pages > 0 {
                plan.groups.push(PageGroup {
                    page_start: page_cursor,
                    pages: fgot_pages,
                    flags: PteFlags::RO_DATA,
                });
            }
            page_cursor += fgot_pages;
            plan.total_pages = page_cursor.max(1);
            // The part must fit inside the randomization arena — a
            // reservation could never succeed past this anyway, but an
            // adversarial size has to fail *before* image allocation.
            let part_bytes = (plan.total_pages as u64)
                .checked_mul(PAGE_SIZE as u64)
                .filter(|&b| b < layout::MODULE_CEILING)
                .ok_or_else(|| {
                    LoadError::TooLarge(format!(
                        "part needs {} pages, beyond the module arena",
                        plan.total_pages
                    ))
                })?;
            let _ = part_bytes;
            Ok(())
        };
        finalize(&mut movable, mov_code_end, obj, opts.retpoline)?;
        if let Some(imm) = immovable.as_mut() {
            finalize(imm, imm_code_end, obj, opts.retpoline)?;
        }

        // Final symbol offsets.
        for sym in &obj.symbols {
            if let SymbolDef::Defined { section, offset } = sym.def {
                let plan = if movable.contains(section) {
                    &movable
                } else {
                    immovable.as_ref().expect("section must belong to a part")
                };
                let off = add_sz(plan.sec_off[&section], offset as u64)?;
                sym_place.insert(
                    sym.name.clone(),
                    SymPlace {
                        part: plan.part,
                        off,
                    },
                );
            }
        }
        // Local GOT entries now learn their target offsets.
        let fill_lgot = |plan: &mut PartPlan, sym_place: &HashMap<Arc<str>, SymPlace>| {
            for entry in plan.lgot.iter_mut() {
                if let LocalGotEntry::Sym { name, offset } = entry {
                    *offset = sym_place[&**name].off;
                }
            }
        };
        fill_lgot(&mut movable, &sym_place);
        if let Some(imm) = immovable.as_mut() {
            fill_lgot(imm, &sym_place);
        }

        // ---- lazy PLT binders ---------------------------------------
        // Each lazy slot gets a per-slot binder trampoline in the native
        // dispatch region. The binder holds a Weak to the module (filled
        // in after construction): on the first call through the stub it
        // binds the slot, then forwards the call with the caller's
        // argument registers intact. Registered *before* image build so
        // the GOT contents can start at the binder address; torn down by
        // the guard if a later load step fails, and at unload.
        let module_cell: Arc<OnceLock<Weak<LoadedModule>>> = Arc::new(OnceLock::new());
        let mut lazy_slots: Vec<LazyPltSlot> = Vec::new();
        {
            let mut collect = |plan: &PartPlan| -> Result<(), LoadError> {
                for ls in &plan.lazy {
                    let target_off = if ls.movable_target {
                        Some(
                            sym_place
                                .get(&*ls.symbol)
                                .expect("movable lazy target must be placed")
                                .off,
                        )
                    } else {
                        None
                    };
                    lazy_slots.push(LazyPltSlot {
                        symbol: ls.symbol.clone(),
                        part: plan.part,
                        local: ls.got.local,
                        idx: ls.got.idx,
                        binder_va: 0,
                        binder_name: String::new(),
                        target_off,
                        bound: AtomicU64::new(0),
                    });
                }
                Ok(())
            };
            collect(&movable)?;
            if let Some(imm) = immovable.as_ref() {
                collect(imm)?;
            }
        }
        let mut binder_guard = BinderGuard {
            kernel: self.kernel,
            names: Vec::new(),
            armed: true,
        };
        for (i, slot) in lazy_slots.iter_mut().enumerate() {
            let binder_name = format!("__plt_bind__{}__{}__{}", obj.name, i, slot.symbol);
            let cell = module_cell.clone();
            let va = self
                .kernel
                .symbols
                .register_native(&binder_name, move |vm| {
                    let m = cell.get().and_then(Weak::upgrade).ok_or_else(|| {
                        VmError::Native("lazy PLT binder called on unloaded module".into())
                    })?;
                    let target = m.bind_plt_slot(vm.kernel, i).map_err(VmError::Native)?;
                    vm.forward_call(target)
                });
            slot.binder_va = va;
            slot.binder_name = binder_name.clone();
            binder_guard.names.push(binder_name);
        }
        // Patch the placeholder local-GOT entries with binder addresses.
        for (i, slot) in lazy_slots.iter().enumerate() {
            if slot.local {
                let plan = match slot.part {
                    Part::Movable => &mut movable,
                    Part::Immovable => immovable.as_mut().expect("lazy slot in missing part"),
                };
                plan.lgot[slot.idx] = LocalGotEntry::Lazy {
                    lazy_idx: i,
                    binder: slot.binder_va,
                };
            }
        }
        // Fixed-GOT lazy slots, for the image builder.
        let lazy_fgot: HashMap<(Part, usize), u64> = lazy_slots
            .iter()
            .filter(|s| !s.local)
            .map(|s| ((s.part, s.idx), s.binder_va))
            .collect();

        // ---- base selection -----------------------------------------
        // Reservations (not a held lock) keep other placements out of
        // the chosen ranges while the images are built and mapped, so
        // loads and re-randomization cycles can proceed concurrently.
        let mut _mov_reservation: Option<VaReservation> = None;
        let movable_base = match opts.model {
            CodeModel::Pic => {
                let r = self.reserve(movable.total_pages)?;
                let base = r.base();
                _mov_reservation = Some(r);
                base
            }
            CodeModel::Legacy => {
                let size = (movable.total_pages * PAGE_SIZE) as u64;
                let base = self.va.legacy_bump(size);
                // The top of the window is kernel text; the window is
                // full when the cursor reaches it.
                if base + size > layout::NATIVE_BASE {
                    return Err(LoadError::NoSpace);
                }
                base
            }
        };
        // The movable reservation is already recorded, so the immovable
        // pick is disjoint from it by construction.
        let _imm_reservation = match immovable.as_ref() {
            Some(imm) => Some(self.reserve(imm.total_pages)?),
            None => None,
        };
        let immovable_base = _imm_reservation.as_ref().map(VaReservation::base);

        // ---- materialize --------------------------------------------
        let key = self.kernel.rng_u64();
        let resolve = |name: &str| -> Result<u64, LoadError> {
            if let Some(p) = sym_place.get(name) {
                let base = match p.part {
                    Part::Movable => movable_base,
                    Part::Immovable => immovable_base.expect("immovable symbol without part"),
                };
                return Ok(base + p.off);
            }
            self.kernel
                .symbols
                .lookup(name)
                .ok_or_else(|| LoadError::Unresolved(name.to_string()))
        };

        let mut adjust_slots: Vec<AdjustSlot> = Vec::new();
        let mut stats = LoadStats {
            payload_bytes: obj.payload_size(),
            ..LoadStats::default()
        };

        let build_image = |plan: &PartPlan,
                           base: u64,
                           stats: &mut LoadStats,
                           adjust: &mut Vec<AdjustSlot>|
         -> Result<Vec<u8>, LoadError> {
            let mut img = vec![0u8; plan.total_pages * PAGE_SIZE];
            // Section payloads.
            for (&sec, &off) in &plan.sec_off {
                if let Some(s) = obj.section(sec) {
                    img[off as usize..off as usize + s.bytes.len()].copy_from_slice(&s.bytes);
                }
            }
            // PLT stubs + thunk.
            if !plan.plt.is_empty() {
                for (i, (_sym, got)) in plan.plt.iter().enumerate() {
                    let stub_off = plan.plt_off + i as u64 * PLT_STUB_SIZE;
                    let slot_off = plan.slot_off(*got);
                    if opts.retpoline {
                        // mov rax, [rip+slot] ; jmp thunk
                        let mut b = Vec::with_capacity(12);
                        adelie_isa::encode_into(
                            &adelie_isa::Insn::MovLoad {
                                dst: Reg::Rax,
                                src: adelie_isa::Mem::RipRel(
                                    (slot_off as i64 - (stub_off as i64 + 7)) as i32,
                                ),
                            },
                            &mut b,
                        );
                        adelie_isa::encode_into(
                            &adelie_isa::Insn::JmpRel(
                                (plan.thunk_off as i64 - (stub_off as i64 + 12)) as i32,
                            ),
                            &mut b,
                        );
                        img[stub_off as usize..stub_off as usize + b.len()].copy_from_slice(&b);
                    } else {
                        // jmp *[rip+slot]
                        let mut b = Vec::with_capacity(6);
                        adelie_isa::encode_into(
                            &adelie_isa::Insn::JmpMem(adelie_isa::Mem::RipRel(
                                (slot_off as i64 - (stub_off as i64 + 6)) as i32,
                            )),
                            &mut b,
                        );
                        img[stub_off as usize..stub_off as usize + b.len()].copy_from_slice(&b);
                    }
                }
                if opts.retpoline {
                    // The retpoline thunk (JMP_NOSPEC %rax, §2.5): the
                    // architectural path overwrites the return address
                    // with %rax and returns — the speculation trap spins.
                    let mut t = Asm::new();
                    t.call_label("do");
                    t.label("trap");
                    t.insn(adelie_isa::Insn::Pause);
                    t.insn(adelie_isa::Insn::Lfence);
                    t.jmp_label("trap");
                    t.label("do");
                    t.mov_store(adelie_isa::Mem::base(Reg::Rsp), Reg::Rax);
                    t.ret();
                    let out = t.assemble().expect("thunk labels");
                    img[plan.thunk_off as usize..plan.thunk_off as usize + out.bytes.len()]
                        .copy_from_slice(&out.bytes);
                }
                stats.plt_stubs += plan.plt.len();
            }
            // GOT contents. Lazy slots start at their binder trampoline;
            // everything else resolves eagerly at load time.
            for (i, e) in plan.lgot.iter().enumerate() {
                let v = match e {
                    LocalGotEntry::Sym { offset, .. } => movable_base + offset,
                    LocalGotEntry::Key => key,
                    LocalGotEntry::Lazy { binder, .. } => *binder,
                };
                let off = plan.lgot_off as usize + i * 8;
                img[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            for (i, name) in plan.fgot.iter().enumerate() {
                let v = match lazy_fgot.get(&(plan.part, i)) {
                    Some(&binder) => binder,
                    None => resolve(name)?,
                };
                let off = plan.fgot_off as usize + i * 8;
                img[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            stats.local_got_entries += plan.lgot.len();
            stats.fixed_got_entries += plan.fgot.len();
            // Apply relocations.
            for d in &plan.decisions {
                let sec_off = plan.sec_off[&d.section];
                let p = (sec_off + d.reloc.offset as u64) as usize;
                let pva = base + p as u64;
                let field_i32 = |v: i64| -> Result<i32, LoadError> {
                    i32::try_from(v)
                        .map_err(|_| LoadError::FieldOverflow(d.reloc.symbol.to_string()))
                };
                match &d.action {
                    Action::PcRelDirect => {
                        let s = resolve(&d.reloc.symbol)?;
                        let v = field_i32(s as i64 + d.reloc.addend - pva as i64)?;
                        img[p..p + 4].copy_from_slice(&v.to_le_bytes());
                    }
                    Action::PatchCallDirect | Action::PatchJmpDirect => {
                        let s = resolve(&d.reloc.symbol)?;
                        img[p - 2] = if matches!(d.action, Action::PatchCallDirect) {
                            0xE8
                        } else {
                            0xE9
                        };
                        // rel32 measured from the end of the 5-byte insn.
                        let v = field_i32(s as i64 - (pva as i64 + 3))?;
                        img[p - 1..p + 3].copy_from_slice(&v.to_le_bytes());
                        img[p + 3] = 0x90; // pad with nop (Fig. 4)
                        stats.patched_calls += 1;
                        stats.got_entries_eliminated += 1;
                    }
                    Action::PatchMovLea => {
                        let s = resolve(&d.reloc.symbol)?;
                        img[p - 2] = 0x8D; // mov → lea
                        let v = field_i32(s as i64 + d.reloc.addend - pva as i64)?;
                        img[p..p + 4].copy_from_slice(&v.to_le_bytes());
                        stats.patched_movs += 1;
                        stats.got_entries_eliminated += 1;
                    }
                    Action::Got(got) => {
                        let slot_va = base + plan.slot_off(*got);
                        let v = field_i32(slot_va as i64 + d.reloc.addend - pva as i64)?;
                        img[p..p + 4].copy_from_slice(&v.to_le_bytes());
                    }
                    Action::Plt(idx) => {
                        let stub_va = base + plan.plt_off + *idx as u64 * PLT_STUB_SIZE;
                        let v = field_i32(stub_va as i64 + d.reloc.addend - pva as i64)?;
                        img[p..p + 4].copy_from_slice(&v.to_le_bytes());
                    }
                    Action::Abs64 => {
                        let s = resolve(&d.reloc.symbol)?;
                        let v = (s as i64 + d.reloc.addend) as u64;
                        img[p..p + 8].copy_from_slice(&v.to_le_bytes());
                        if let Some(place) = sym_place.get(&*d.reloc.symbol) {
                            if place.part == Part::Movable && rerand {
                                adjust.push(AdjustSlot {
                                    part: plan.part,
                                    slot_off: p as u64,
                                    target_off: place.off,
                                });
                            }
                        }
                    }
                    Action::Abs32 => {
                        let s = resolve(&d.reloc.symbol)?;
                        let v = field_i32(s as i64 + d.reloc.addend)?;
                        img[p..p + 4].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Ok(img)
        };

        let mov_img = build_image(&movable, movable_base, &mut stats, &mut adjust_slots)?;
        let imm_img = match immovable.as_ref() {
            Some(imm) => Some(build_image(
                imm,
                immovable_base.unwrap(),
                &mut stats,
                &mut adjust_slots,
            )?),
            None => None,
        };

        // ---- map into the address space ------------------------------
        // Both parts install as ONE vmem batch: a single page-table
        // lock acquisition and (being map-only) no shootdown at all —
        // the shape fleet migration relies on to make an incoming
        // module appear in the destination shard atomically.
        let mut install = Batch::new();
        let stage_part = |plan: &PartPlan, base: u64, img: &[u8], install: &mut Batch| {
            let frames = self.kernel.phys.alloc_n(plan.total_pages);
            for (i, &pfn) in frames.iter().enumerate() {
                self.kernel
                    .phys
                    .write(pfn, 0, &img[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]);
            }
            for g in &plan.groups {
                install.map_range(
                    base + (g.page_start * PAGE_SIZE) as u64,
                    &frames[g.page_start..g.page_start + g.pages],
                    g.flags,
                );
            }
            // Any pages not covered by a group (alignment tail) stay
            // unmapped — they contain nothing.
            PartImage {
                base,
                total_pages: plan.total_pages,
                frames,
                groups: plan.groups.clone(),
                lgot_off: plan.lgot_off,
                lgot_slots: plan.lgot.len(),
                fgot_off: plan.fgot_off,
                fgot_slots: plan.fgot.len(),
                fgot_names: plan.fgot.clone(),
                plt_off: plan.plt_off,
                plt_stubs: plan.plt.len(),
            }
        };
        let movable_img = stage_part(&movable, movable_base, &mov_img, &mut install);
        let immovable_img = immovable.as_ref().map(|imm| {
            stage_part(
                imm,
                immovable_base.unwrap(),
                imm_img.as_ref().unwrap(),
                &mut install,
            )
        });
        self.kernel
            .space
            .apply(install)
            .expect("module range collision");
        // Both parts are mapped: the page tables exclude the ranges from
        // future picks, so the reservations can be released.
        drop(_mov_reservation);
        drop(_imm_reservation);

        stats.mapped_bytes = (movable_img.total_pages
            + immovable_img.as_ref().map(|i| i.total_pages).unwrap_or(0))
            * PAGE_SIZE;
        stats.got_plt_bytes = (stats.local_got_entries + stats.fixed_got_entries) * 8
            + stats.plt_stubs * PLT_STUB_SIZE as usize;

        // ---- bookkeeping ---------------------------------------------
        let mut movable_syms = HashMap::new();
        let mut immovable_syms = HashMap::new();
        for (name, place) in &sym_place {
            match place.part {
                Part::Movable if rerand => {
                    movable_syms.insert(name.clone(), place.off);
                }
                Part::Movable => {
                    // Non-re-randomizable: module never moves; treat all
                    // symbols as absolute.
                    immovable_syms.insert(name.clone(), movable_base + place.off);
                }
                Part::Immovable => {
                    immovable_syms.insert(name.clone(), immovable_base.unwrap() + place.off);
                }
            }
        }
        let resolve_export = |name: &str| -> Result<u64, LoadError> {
            immovable_syms
                .get(name)
                .copied()
                .or_else(|| movable_syms.get(name).map(|off| movable_base + off))
                .ok_or_else(|| LoadError::MissingEntry(name.to_string()))
        };
        let mut exports = Vec::new();
        for e in &obj.exports {
            let va = resolve_export(e)?;
            exports.push((e.clone(), va));
        }
        let entry = |name: &Option<String>| -> Result<Option<u64>, LoadError> {
            name.as_ref().map(|n| resolve_export(n)).transpose()
        };
        let init_va = entry(&obj.init)?;
        let exit_va = entry(&obj.exit)?;
        let update_pointers_va = entry(&obj.update_pointers)?;

        let movable_lgot_frames: Vec<_> = {
            let pages = movable_img.lgot_pages();
            let start = (movable_img.lgot_off / PAGE_SIZE as u64) as usize;
            movable_img.frames[start..start + pages].to_vec()
        };
        let immovable_lgot_frames: Vec<_> = immovable_img
            .as_ref()
            .map(|img| {
                let pages = img.lgot_pages();
                let start = (img.lgot_off / PAGE_SIZE as u64) as usize;
                img.frames[start..start + pages].to_vec()
            })
            .unwrap_or_default();

        let module = Arc::new(LoadedModule {
            name: obj.name.as_str().into(),
            rerandomizable: rerand,
            movable_base: AtomicU64::new(movable_base),
            generation: AtomicU64::new(0),
            current_key: AtomicU64::new(key),
            movable: movable_img,
            immovable: immovable_img,
            movable_syms,
            immovable_syms,
            lgot_movable: movable.lgot,
            lgot_immovable: immovable.map(|p| p.lgot).unwrap_or_default(),
            movable_lgot_frames: Mutex::new(movable_lgot_frames),
            immovable_lgot_frames: Mutex::new(immovable_lgot_frames),
            adjust_slots,
            init_va,
            exit_va,
            update_pointers_va,
            pointer_refresh_failures: AtomicU64::new(0),
            lazy_plt: lazy_slots,
            plt_bind_lock: Mutex::new(()),
            plt_binds: AtomicU64::new(0),
            plt_reswings: AtomicU64::new(0),
            exports,
            stats,
            move_lock: Mutex::new(()),
        });
        // Arm the binders: they can now upgrade to the live module. The
        // load can no longer fail, so the cleanup guard stands down (the
        // binders are unregistered at unload instead).
        let _ = module_cell.set(Arc::downgrade(&module));
        binder_guard.armed = false;
        // Publish exports in kallsyms so other modules can import them.
        for (name, va) in &module.exports {
            self.kernel.symbols.define(name, *va);
        }
        self.kernel.printk.log(format!(
            "module {}: loaded ({} bytes mapped, {} local / {} fixed GOT entries, {} PLT stubs, {} patches)",
            module.name,
            module.stats.mapped_bytes,
            module.stats.local_got_entries,
            module.stats.fixed_got_entries,
            module.stats.plt_stubs,
            module.stats.patched_calls + module.stats.patched_movs,
        ));
        Ok(module)
    }

    /// Reserve a random, free, page-aligned range anywhere in the 57-bit
    /// arena — the 64-bit KASLR placement.
    fn reserve(&self, pages: usize) -> Result<VaReservation, LoadError> {
        self.va
            .reserve(self.kernel, pages)
            .ok_or(LoadError::NoSpace)
    }
}
