//! # adelie-core — Adelie itself
//!
//! The paper's contribution, implemented over the simulated substrate:
//!
//! * [`Loader`] — loads PIC relocatable modules anywhere in the 57-bit
//!   address space (64-bit KASLR), builds the four GOTs of Fig. 2b,
//!   emits retpoline PLT stubs, applies the Fig. 4 run-time patches, and
//!   seals GOT pages; also provides the non-PIC legacy mode (vanilla
//!   Linux baseline, 2 GiB window),
//! * [`rerandomize_module`] — one zero-copy re-randomization cycle with
//!   local-GOT rebuilds, key rotation, pointer adjustment, and
//!   SMR-delayed unmapping (§4.2); driven continuously by the
//!   `adelie-sched` scheduler (worker pool, per-module policies, CPU
//!   budget — see DESIGN.md §6),
//! * [`StackPool`] — per-CPU pools of randomly-placed kernel stacks
//!   (§3.4),
//! * [`ModuleRegistry`] — insmod/rmmod: load, init, unload.
//!
//! # Example
//!
//! ```
//! use adelie_core::ModuleRegistry;
//! use adelie_kernel::{Kernel, KernelConfig};
//! use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
//!
//! let kernel = Kernel::new(KernelConfig::default());
//! let registry = ModuleRegistry::new(&kernel);
//!
//! // A one-function driver, transformed to a re-randomizable module.
//! let mut spec = ModuleSpec::new("noop");
//! spec.funcs.push(FuncSpec::exported("noop_run", vec![MOp::Ret]));
//! let opts = TransformOptions::rerandomizable(true);
//! let obj = transform(&spec, &opts).unwrap();
//! let module = registry.load(&obj, &opts).unwrap();
//!
//! // Call it through its kernel-facing wrapper, then move it and call
//! // again: the wrapper address never changes, the code underneath does.
//! let entry = module.export("noop_run").unwrap();
//! let mut vm = kernel.vm();
//! vm.call(entry, &[]).unwrap();
//! adelie_core::rerandomize_module(&kernel, &registry, &module).unwrap();
//! vm.call(entry, &[]).unwrap();
//! ```

pub mod fleet;
mod hooks;
mod loader;
mod module;
mod rerand;
mod stacks;
mod supervise;
mod va;

pub use fleet::{
    AdmissionConfig, ColdTierConfig, ColdTierStats, Fleet, FleetError, LoadWeighted, Pinned,
    RecoveryReport, RepairStats, RoundRobin, ShardLoad, ShardPlacement, MAX_REPAIR_BACKOFF_NS,
};
pub use hooks::{CycleCommit, CycleHooks, CycleStage};
pub use loader::{LoadError, Loader};
pub use module::{
    AdjustSlot, LazyPltSlot, LoadStats, LoadedModule, LocalGotEntry, PageGroup, Part, PartImage,
};
pub use rerand::{log_stats, rerandomize_module, rerandomize_module_epoch, RerandError};
pub use stacks::{StackPool, StackStats};
pub use supervise::ShardWatchdog;

use adelie_kernel::{layout, Kernel};
use adelie_obj::ObjectFile;
use adelie_plugin::TransformOptions;
use adelie_vmem::PAGE_SIZE;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use va::{VaAllocator, VaReservation};

/// The module registry — insmod/rmmod plus the allocation state shared
/// by the loader, the re-randomizer, and the stack pools.
pub struct ModuleRegistry {
    kernel: Arc<Kernel>,
    modules: RwLock<HashMap<Arc<str>, Arc<LoadedModule>>>,
    /// The per-CPU randomized stack pools (shared by all modules).
    pub stacks: Arc<StackPool>,
    va: Arc<VaAllocator>,
    /// Cycle-stage observation/injection hooks (testkit seam; `None` in
    /// production).
    cycle_hooks: RwLock<Option<Arc<dyn CycleHooks>>>,
}

impl ModuleRegistry {
    /// Create the registry and register the stack-pool natives. One
    /// registry per kernel (natives can only be registered once).
    pub fn new(kernel: &Arc<Kernel>) -> Arc<ModuleRegistry> {
        // Vanilla Linux randomizes the legacy module base per boot
        // inside the 2 GiB window (31-12 = 19 bits of entropy, §6).
        // Randomized placements draw from the kernel's module window —
        // the whole arena standalone, one disjoint shard slice in fleet
        // mode (see `adelie_kernel::ShardedKernel`).
        let boot_offset = kernel.rng_below(1 << 18) * PAGE_SIZE as u64;
        let va = VaAllocator::new(
            layout::LEGACY_MODULE_BASE + boot_offset,
            kernel.config.module_window,
        );
        let stacks = StackPool::new(kernel.config.cpus, va.clone());
        stacks.register_natives(kernel);
        Arc::new(ModuleRegistry {
            kernel: kernel.clone(),
            modules: RwLock::new(HashMap::new()),
            stacks,
            va,
            cycle_hooks: RwLock::new(None),
        })
    }

    /// Install cycle-stage hooks (replacing any previous set). The hooks
    /// see every re-randomization cycle of every module in this registry
    /// and may inject stage failures — see [`CycleHooks`].
    pub fn set_cycle_hooks(&self, hooks: Arc<dyn CycleHooks>) {
        *self.cycle_hooks.write() = Some(hooks);
    }

    /// Remove the cycle-stage hooks.
    pub fn clear_cycle_hooks(&self) {
        *self.cycle_hooks.write() = None;
    }

    /// Snapshot the installed hooks (one read-lock per cycle).
    pub(crate) fn hooks(&self) -> Option<Arc<dyn CycleHooks>> {
        self.cycle_hooks.read().clone()
    }

    /// The kernel this registry serves.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Load a module and run its init entry point (insmod).
    ///
    /// # Errors
    ///
    /// [`LoadError`] from the loader, or [`LoadError::MissingEntry`]
    /// wrapping an init failure.
    pub fn load(
        &self,
        obj: &ObjectFile,
        opts: &TransformOptions,
    ) -> Result<Arc<LoadedModule>, LoadError> {
        let loader = Loader::new(&self.kernel, &self.va);
        let module = loader.load(obj, opts)?;
        self.modules
            .write()
            .insert(module.name.clone(), module.clone());
        if let Some(init) = module.init_va {
            let mut vm = self.kernel.vm();
            if let Err(e) = vm.call(init, &[]) {
                self.modules.write().remove(&module.name);
                return Err(LoadError::MissingEntry(format!(
                    "{} init failed: {e}",
                    module.name
                )));
            }
        }
        Ok(module)
    }

    /// Look up a loaded module.
    pub fn get(&self, name: &str) -> Option<Arc<LoadedModule>> {
        self.modules.read().get(name).cloned()
    }

    /// Names of all loaded modules.
    pub fn list(&self) -> Vec<String> {
        self.modules.read().keys().map(|k| k.to_string()).collect()
    }

    /// Unload a module (rmmod): runs its exit entry point, unpublishes
    /// exports, unmaps both parts, and frees the frames.
    ///
    /// Stop any scheduler (or legacy `Rerandomizer` shim) driving the
    /// module first.
    ///
    /// # Errors
    ///
    /// Textual error for unknown modules or a failing exit function.
    pub fn unload(&self, name: &str) -> Result<(), String> {
        self.unload_inner(name, true)
    }

    /// Unload a module *without* running its exit entry point — the
    /// crash-recovery teardown. A module whose exit traps every time
    /// would otherwise wedge graceful [`ModuleRegistry::unload`]
    /// forever; shard rebuild and the fleet repair queue's last resort
    /// skip the exit and reclaim the mappings anyway.
    ///
    /// # Errors
    ///
    /// Textual error for unknown modules or a failed retire batch.
    pub fn force_unload(&self, name: &str) -> Result<(), String> {
        self.kernel
            .printk
            .log(format!("module {name}: force-unload (exit skipped)"));
        self.unload_inner(name, false)
    }

    fn unload_inner(&self, name: &str, run_exit: bool) -> Result<(), String> {
        // Run the exit entry *before* unpublishing anything: a failing
        // exit leaves the module fully registered and retryable, not
        // stranded mapped-but-invisible.
        let module = self
            .modules
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no module `{name}`"))?;
        if run_exit {
            if let Some(exit) = module.exit_va {
                let mut vm = self.kernel.vm();
                vm.call(exit, &[])
                    .map_err(|e| format!("exit failed: {e}"))?;
            }
        }
        if self.modules.write().remove(name).is_none() {
            return Err(format!("no module `{name}` (concurrent unload)"));
        }
        let _guard = module.move_lock.lock();
        for (sym, _) in &module.exports {
            self.kernel.symbols.undefine(sym);
        }
        // Tear down the module's lazy-PLT binder trampolines: nothing
        // can reach them once the module is gone, and a later re-load of
        // the same module name must be able to register fresh ones.
        for slot in &module.lazy_plt {
            self.kernel.symbols.unregister_native(&slot.binder_name);
        }
        // Retire the whole module — current movable mapping plus the
        // immovable part — as ONE vmem batch: one page-table lock
        // acquisition, one range-tagged shootdown covering both spans
        // (fleet migration leans on this to make the source shard's
        // copy vanish atomically). The original PartImage frame list is
        // correct except for the local GOT pages, whose *current*
        // frames live in the mutexed lists.
        let base = module
            .movable_base
            .load(std::sync::atomic::Ordering::Acquire);
        let mut retire = adelie_vmem::Batch::new();
        retire.unmap_sparse(base, module.movable.total_pages);
        if let Some(imm) = &module.immovable {
            retire.unmap_sparse(imm.base, imm.total_pages);
        }
        if let Err(fault) = self.kernel.space.apply(retire) {
            // The batch rolled back: both parts are still mapped, so
            // the frames must NOT be returned to the allocator (a
            // freed-but-mapped frame would alias the next load). Leak
            // them deliberately and report — exports are already
            // unpublished, so the module is unreachable either way.
            self.kernel.printk.log(format!(
                "module {name}: retire batch failed ({fault}); frames withheld"
            ));
            return Err(format!("{name}: retire batch failed: {fault}"));
        }
        let lgot_start = (module.movable.lgot_off / PAGE_SIZE as u64) as usize;
        let lgot_pages = module.movable.lgot_pages();
        for (i, &pfn) in module.movable.frames.iter().enumerate() {
            let is_lgot = lgot_pages > 0 && i >= lgot_start && i < lgot_start + lgot_pages;
            if !is_lgot {
                self.kernel.phys.free(pfn);
            }
        }
        for pfn in module.movable_lgot_frames.lock().drain(..) {
            self.kernel.phys.free(pfn);
        }
        if let Some(imm) = &module.immovable {
            let ilgot_start = (imm.lgot_off / PAGE_SIZE as u64) as usize;
            let ilgot_pages = imm.lgot_pages();
            for (i, &pfn) in imm.frames.iter().enumerate() {
                let is_lgot = ilgot_pages > 0 && i >= ilgot_start && i < ilgot_start + ilgot_pages;
                if !is_lgot {
                    self.kernel.phys.free(pfn);
                }
            }
            for pfn in module.immovable_lgot_frames.lock().drain(..) {
                self.kernel.phys.free(pfn);
            }
        }
        self.kernel.printk.log(format!("module {name}: unloaded"));
        Ok(())
    }

    /// Reserve a random free range of `pages`; the returned reservation
    /// keeps concurrent placements out of the range until the caller has
    /// mapped it and drops the guard (used by the re-randomizer — no
    /// global lock is held while mapping, so cycles of independent
    /// modules overlap).
    pub(crate) fn reserve_va(&self, pages: usize) -> Option<VaReservation> {
        self.va.reserve(&self.kernel, pages)
    }
}

/// Audit `module`'s fixed GOTs against the *owning* kernel: every slot
/// must hold exactly the address its recorded symbol name resolves to
/// there (an immovable module symbol or a kallsyms export). A mismatch
/// is a dangling GOT entry — the bug class fleet migration would
/// introduce if it ever copied a GOT across shards instead of
/// rebuilding it. Returns human-readable violations; empty = clean.
pub fn verify_fixed_gots(kernel: &Arc<Kernel>, module: &LoadedModule) -> Vec<String> {
    let mut violations = Vec::new();
    // Lazily-bound fixed-GOT slots are exempt from the eager-resolution
    // check: unbound they hold the binder trampoline, bound they are
    // audited (more strictly) by `verify_plt_bindings`.
    let lazy_fixed: std::collections::HashSet<(Part, usize)> = module
        .lazy_plt
        .iter()
        .filter(|s| !s.local)
        .map(|s| (s.part, s.idx))
        .collect();
    let mut check_part = |img: &PartImage, base: u64, part: Part, label: &str| {
        for (i, name) in img.fgot_names.iter().enumerate() {
            if lazy_fixed.contains(&(part, i)) {
                continue;
            }
            let slot_va = base + img.fgot_off + (i * 8) as u64;
            let held = match kernel.space.read_u64(&kernel.phys, slot_va) {
                Ok(v) => v,
                Err(e) => {
                    violations.push(format!(
                        "{}: {label} fixed-GOT slot {i} ({name}) unreadable: {e}",
                        module.name
                    ));
                    continue;
                }
            };
            let expected = module
                .immovable_syms
                .get(&**name)
                .copied()
                .or_else(|| kernel.symbols.lookup(name));
            match expected {
                Some(want) if want == held => {}
                Some(want) => violations.push(format!(
                    "{}: {label} fixed-GOT slot {i} ({name}) dangles: holds \
                     {held:#x}, kernel resolves {want:#x}",
                    module.name
                )),
                None => violations.push(format!(
                    "{}: {label} fixed-GOT slot {i} ({name}) names a symbol \
                     the owning kernel cannot resolve",
                    module.name
                )),
            }
        }
    };
    check_part(
        &module.movable,
        module
            .movable_base
            .load(std::sync::atomic::Ordering::Acquire),
        Part::Movable,
        "movable",
    );
    if let Some(imm) = &module.immovable {
        check_part(imm, imm.base, Part::Immovable, "immovable");
    }
    violations
}

/// Audit every lazy PLT slot of `module` against the current layout —
/// the bound-slot staleness invariant the testkit oracle enforces after
/// each cycle commit:
///
/// * an **unbound** slot must hold exactly its binder trampoline
///   address (anything else is a torn rebuild);
/// * a **bound** slot must hold exactly what the symbol resolves to
///   *right now* — for a movable target, `movable_base + offset` under
///   the published base; for an import, the owning kernel's current
///   kallsyms answer. A bound slot still pointing into a range the
///   module vacated fails this check by construction, because the
///   current resolution can never lie in a retired range.
///
/// Returns human-readable violations; empty = clean.
pub fn verify_plt_bindings(kernel: &Arc<Kernel>, module: &LoadedModule) -> Vec<String> {
    let mut violations = Vec::new();
    for (i, slot) in module.lazy_plt.iter().enumerate() {
        let slot_va = module.lazy_slot_va(slot);
        let held = match kernel.space.read_u64(&kernel.phys, slot_va) {
            Ok(v) => v,
            Err(e) => {
                violations.push(format!(
                    "{}: lazy PLT slot {i} (`{}`) unreadable at {slot_va:#x}: {e}",
                    module.name, slot.symbol
                ));
                continue;
            }
        };
        let bound = slot.bound.load(std::sync::atomic::Ordering::Acquire);
        if bound == 0 {
            if held != slot.binder_va {
                violations.push(format!(
                    "{}: unbound lazy PLT slot {i} (`{}`) holds {held:#x}, \
                     expected its binder {:#x}",
                    module.name, slot.symbol, slot.binder_va
                ));
            }
            continue;
        }
        let expected = match slot.target_off {
            Some(off) => Some(
                module
                    .movable_base
                    .load(std::sync::atomic::Ordering::Acquire)
                    + off,
            ),
            None => module
                .immovable_syms
                .get(&*slot.symbol)
                .copied()
                .or_else(|| kernel.symbols.lookup(&slot.symbol)),
        };
        match expected {
            Some(want) if want == bound && want == held => {}
            Some(want) => violations.push(format!(
                "{}: bound lazy PLT slot {i} (`{}`) is stale: slot holds \
                 {held:#x}, recorded binding {bound:#x}, current resolution \
                 {want:#x}",
                module.name, slot.symbol
            )),
            None => violations.push(format!(
                "{}: bound lazy PLT slot {i} (`{}`) no longer resolves but \
                 still holds {held:#x}",
                module.name, slot.symbol
            )),
        }
    }
    violations
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleRegistry")
            .field("modules", &self.list())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::{AluOp, Insn, Reg};
    use adelie_kernel::{KernelConfig, VmError};
    use adelie_plugin::{
        transform, CodeModel, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec, TransformOptions,
    };
    use std::sync::atomic::Ordering;

    /// A small arithmetic driver: `calc(x) = helper(x) * 2` where
    /// `helper(x) = x + 5`, plus a pointer table and a kmalloc touch.
    fn demo_spec() -> ModuleSpec {
        let mut spec = ModuleSpec::new("demo");
        spec.funcs.push(FuncSpec::exported(
            "demo_calc",
            vec![
                MOp::CallLocal("demo_helper".into()),
                MOp::Insn(Insn::Alu {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    src: Reg::Rax,
                }),
                MOp::Ret,
            ],
        ));
        spec.funcs.push(FuncSpec {
            name: "demo_helper".into(),
            exported: false,
            is_static: false,
            body: vec![
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rax,
                    src: Reg::Rdi,
                }),
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    imm: 5,
                }),
                MOp::Ret,
            ],
        });
        // An exported allocator exercise: rax = kmalloc(64); kfree(rax).
        spec.funcs.push(FuncSpec::exported(
            "demo_alloc",
            vec![
                MOp::Insn(Insn::MovImm32(Reg::Rdi, 64)),
                MOp::CallKernel("kmalloc".into()),
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rdi,
                    src: Reg::Rax,
                }),
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rbx,
                    src: Reg::Rax,
                }),
                MOp::CallKernel("kfree".into()),
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rax,
                    src: Reg::Rbx,
                }),
                MOp::Ret,
            ],
        ));
        spec.data.push(DataSpec {
            name: "demo_ops".into(),
            readonly: false,
            init: DataInit::PtrTable(vec!["demo_calc".into(), "demo_helper".into()]),
        });
        spec
    }

    fn setup(opts: &TransformOptions) -> (Arc<Kernel>, Arc<ModuleRegistry>, Arc<LoadedModule>) {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let obj = transform(&demo_spec(), opts).unwrap();
        let module = registry.load(&obj, opts).unwrap();
        (kernel, registry, module)
    }

    fn all_option_sets() -> Vec<TransformOptions> {
        vec![
            TransformOptions::vanilla(false),
            TransformOptions::vanilla(true),
            TransformOptions::pic(false),
            TransformOptions::pic(true),
            TransformOptions::rerandomizable(false),
            TransformOptions::rerandomizable(true),
        ]
    }

    #[test]
    fn demo_module_computes_under_every_configuration() {
        for opts in all_option_sets() {
            let (kernel, _registry, module) = setup(&opts);
            let mut vm = kernel.vm();
            let calc = module.export("demo_calc").unwrap();
            assert_eq!(
                vm.call(calc, &[16]).unwrap(),
                42,
                "wrong result under {opts:?}"
            );
            let alloc = module.export("demo_alloc").unwrap();
            let ptr = vm.call(alloc, &[]).unwrap();
            assert!(ptr >= adelie_kernel::layout::HEAP_BASE, "{opts:?}");
        }
    }

    #[test]
    fn legacy_modules_sit_in_the_2gib_window() {
        let opts = TransformOptions::vanilla(false);
        let (_kernel, _registry, module) = setup(&opts);
        let base = module.movable_base.load(Ordering::Relaxed);
        assert!(base >= layout::LEGACY_MODULE_BASE);
        assert!(base < layout::LEGACY_MODULE_BASE + layout::LEGACY_MODULE_SIZE);
    }

    #[test]
    fn pic_modules_land_in_the_full_arena() {
        let opts = TransformOptions::pic(true);
        let (_kernel, _registry, module) = setup(&opts);
        let base = module.movable_base.load(Ordering::Relaxed);
        assert!(base < layout::MODULE_CEILING);
    }

    #[test]
    fn patching_happens_for_local_references() {
        // The Fig. 4 relaxations fire for intra-part calls and loads.
        let opts = TransformOptions::pic(false);
        let (_k, _r, module) = setup(&opts);
        assert!(
            module.stats.patched_calls >= 1,
            "local call patched: {:?}",
            module.stats
        );
        // Kernel imports stay in the fixed GOT.
        assert!(module.stats.fixed_got_entries >= 2, "{:?}", module.stats);
    }

    #[test]
    fn rerandomizable_module_has_four_gots_and_wrappers() {
        let opts = TransformOptions::rerandomizable(true);
        let (_k, _r, module) = setup(&opts);
        assert!(module.immovable.is_some());
        // The immovable local GOT holds the real-function pointers that
        // get rewritten every period.
        assert!(!module.lgot_immovable.is_empty());
        // The movable local GOT holds (at least) the key slot.
        assert!(module
            .lgot_movable
            .iter()
            .any(|e| matches!(e, LocalGotEntry::Key)));
        // The pointer table produced adjustable slots.
        assert!(!module.adjust_slots.is_empty());
    }

    #[test]
    fn rerandomization_moves_code_and_keeps_it_working() {
        for retpoline in [false, true] {
            let opts = TransformOptions::rerandomizable(retpoline);
            let (kernel, registry, module) = setup(&opts);
            let calc = module.export("demo_calc").unwrap();
            let mut vm = kernel.vm();
            assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
            let base0 = module.movable_base.load(Ordering::Relaxed);
            let key0 = module.current_key.load(Ordering::Relaxed);
            for _ in 0..5 {
                rerandomize_module(&kernel, &registry, &module).unwrap();
                assert_eq!(vm.call(calc, &[16]).unwrap(), 42, "retpoline={retpoline}");
            }
            assert_ne!(module.movable_base.load(Ordering::Relaxed), base0);
            assert_ne!(module.current_key.load(Ordering::Relaxed), key0);
            assert_eq!(module.times_randomized(), 5);
        }
    }

    #[test]
    fn old_range_is_unmapped_after_drain() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry, module) = setup(&opts);
        let base0 = module.movable_base.load(Ordering::Relaxed);
        // No pending calls → retire runs immediately.
        rerandomize_module(&kernel, &registry, &module).unwrap();
        let err = kernel
            .space
            .translate(base0, adelie_vmem::Access::Read)
            .unwrap_err();
        assert!(matches!(err, adelie_vmem::Fault::Unmapped { .. }));
        assert_eq!(kernel.reclaim.stats().delta(), 0);
    }

    #[test]
    fn pending_call_delays_unmap() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry, module) = setup(&opts);
        let base0 = module.movable_base.load(Ordering::Relaxed);
        // Simulate a pending call (mr_start without mr_finish).
        kernel.reclaim.enter(3);
        rerandomize_module(&kernel, &registry, &module).unwrap();
        assert!(
            kernel
                .space
                .translate(base0, adelie_vmem::Access::Read)
                .is_ok(),
            "old range must stay mapped while a call is pending"
        );
        assert_eq!(kernel.reclaim.stats().delta(), 1);
        kernel.reclaim.leave(3);
        assert!(kernel
            .space
            .translate(base0, adelie_vmem::Access::Read)
            .is_err());
        assert_eq!(kernel.reclaim.stats().delta(), 0);
    }

    #[test]
    fn adjustable_data_slots_follow_the_module() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry, module) = setup(&opts);
        let slot = &module.adjust_slots[0];
        let read_slot = |m: &LoadedModule| {
            let frames = match slot.part {
                Part::Movable => &m.movable.frames,
                Part::Immovable => &m.immovable.as_ref().unwrap().frames,
            };
            let page = (slot.slot_off / PAGE_SIZE as u64) as usize;
            kernel
                .phys
                .read_u64(frames[page], (slot.slot_off % PAGE_SIZE as u64) as usize)
        };
        let before = read_slot(&module);
        rerandomize_module(&kernel, &registry, &module).unwrap();
        let after = read_slot(&module);
        assert_ne!(before, after);
        assert_eq!(
            after,
            module.movable_base.load(Ordering::Relaxed) + slot.target_off
        );
    }

    #[test]
    fn stale_text_address_faults_after_rerand() {
        // The JIT-ROP defence in action: a leaked code address dies with
        // the next cycle.
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry, module) = setup(&opts);
        let leaked =
            module.movable_base.load(Ordering::Relaxed) + module.movable_syms["demo_calc__real"];
        let mut vm = kernel.vm();
        // (Direct call to the real function works pre-move.)
        assert_eq!(vm.call(leaked, &[16]).unwrap(), 42);
        rerandomize_module(&kernel, &registry, &module).unwrap();
        match vm.call(leaked, &[16]) {
            Err(VmError::Fault(adelie_vmem::Fault::Unmapped { .. })) => {}
            other => panic!("stale address should fault, got {other:?}"),
        }
    }

    #[test]
    fn got_pages_are_write_protected() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, _r, module) = setup(&opts);
        let imm = module.immovable.as_ref().unwrap();
        let got_va = imm.base + imm.lgot_off;
        let err = kernel
            .space
            .write_u64(&kernel.phys, got_va, 0xdead)
            .unwrap_err();
        assert!(matches!(err, adelie_vmem::Fault::NotWritable { .. }));
    }

    #[test]
    fn return_address_encryption_uses_rotating_key() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry, module) = setup(&opts);
        let k0 = module.current_key.load(Ordering::Relaxed);
        rerandomize_module(&kernel, &registry, &module).unwrap();
        let k1 = module.current_key.load(Ordering::Relaxed);
        assert_ne!(k0, k1, "key must rotate every period");
        // The movable local GOT's key slot holds the current key.
        let key_idx = module
            .lgot_movable
            .iter()
            .position(|e| matches!(e, LocalGotEntry::Key))
            .unwrap();
        let got_va = module.movable_base.load(Ordering::Relaxed)
            + module.movable.lgot_off
            + (key_idx * 8) as u64;
        assert_eq!(kernel.space.read_u64(&kernel.phys, got_va).unwrap(), k1);
    }

    #[test]
    fn stack_rerand_round_trips_through_the_pool() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry, module) = setup(&opts);
        let calc = module.export("demo_calc").unwrap();
        let mut vm = kernel.vm();
        for _ in 0..10 {
            assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        }
        let st = registry.stacks.stats();
        assert_eq!(st.allocated, 1, "one stack allocated then pooled: {st:?}");
        // Rotation retires pooled stacks.
        registry.stacks.rotate(&kernel);
        let st = registry.stacks.stats();
        assert_eq!(st.delta(), 0, "{st:?}");
        // And the next call simply allocates a fresh one.
        assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        assert_eq!(registry.stacks.stats().allocated, 2);
    }

    #[test]
    fn unload_removes_everything() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry, module) = setup(&opts);
        let base = module.movable_base.load(Ordering::Relaxed);
        let imm_base = module.immovable.as_ref().unwrap().base;
        drop(module);
        registry.unload("demo").unwrap();
        assert!(registry.get("demo").is_none());
        assert!(kernel
            .space
            .translate(base, adelie_vmem::Access::Read)
            .is_err());
        assert!(kernel
            .space
            .translate(imm_base, adelie_vmem::Access::Read)
            .is_err());
        assert!(kernel.symbols.lookup("demo_calc").is_none());
    }

    #[test]
    fn lazy_plt_binds_on_first_call_and_survives_rerand() {
        // Lazy slots exist only where the compiler emits PLT32 relocs,
        // i.e. retpoline mode (non-retpoline PIC calls go through
        // inline GOT loads, which stay eager).
        let opts = TransformOptions::rerandomizable(true).with_lazy_plt();
        let (kernel, registry, module) = setup(&opts);
        assert!(
            !module.lazy_plt.is_empty(),
            "retpoline demo module must produce lazy PLT slots"
        );
        assert!(module
            .lazy_plt
            .iter()
            .all(|s| s.bound.load(Ordering::Acquire) == 0));
        assert_eq!(verify_plt_bindings(&kernel, &module), Vec::<String>::new());
        assert_eq!(verify_fixed_gots(&kernel, &module), Vec::<String>::new());
        let calc = module.export("demo_calc").unwrap();
        let alloc = module.export("demo_alloc").unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        let ptr = vm.call(alloc, &[]).unwrap();
        assert!(ptr >= adelie_kernel::layout::HEAP_BASE);
        assert!(
            module.plt_binds.load(Ordering::Relaxed) > 0,
            "first calls must bind through the binder"
        );
        assert_eq!(verify_plt_bindings(&kernel, &module), Vec::<String>::new());
        // Bound slots must be re-swung — and stay verifiable and
        // callable — across every cycle.
        for _ in 0..3 {
            rerandomize_module(&kernel, &registry, &module).unwrap();
            assert_eq!(verify_plt_bindings(&kernel, &module), Vec::<String>::new());
            assert_eq!(verify_fixed_gots(&kernel, &module), Vec::<String>::new());
            assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
            assert!(vm.call(alloc, &[]).unwrap() >= adelie_kernel::layout::HEAP_BASE);
        }
        assert!(
            module.plt_reswings.load(Ordering::Relaxed) > 0,
            "cycles must re-swing bound slots"
        );
    }

    #[test]
    fn lazy_plt_binders_unregister_at_unload_and_reload_starts_unbound() {
        let opts = TransformOptions::rerandomizable(true).with_lazy_plt();
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let obj = transform(&demo_spec(), &opts).unwrap();
        let module = registry.load(&obj, &opts).unwrap();
        let binder_names: Vec<String> = module
            .lazy_plt
            .iter()
            .map(|s| s.binder_name.clone())
            .collect();
        assert!(!binder_names.is_empty());
        for n in &binder_names {
            assert!(
                kernel.symbols.lookup(n).is_some(),
                "binder `{n}` registered"
            );
        }
        let calc = module.export("demo_calc").unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        drop(vm);
        drop(module);
        registry.unload("demo").unwrap();
        for n in &binder_names {
            assert!(
                kernel.symbols.lookup(n).is_none(),
                "binder `{n}` must be unregistered at unload"
            );
        }
        // A reload re-registers the same binder names (a leak would
        // panic `register_native` on the duplicate) and starts with
        // every slot unbound again.
        let module = registry.load(&obj, &opts).unwrap();
        assert!(module
            .lazy_plt
            .iter()
            .all(|s| s.bound.load(Ordering::Acquire) == 0));
        let calc = module.export("demo_calc").unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        assert!(module.plt_binds.load(Ordering::Relaxed) > 0);
        assert_eq!(verify_plt_bindings(&kernel, &module), Vec::<String>::new());
    }

    /// Hand-build an object whose only payload is a `.bss` of `size`
    /// bytes — the shape an adversarial ELF `sh_size` produces after
    /// ingestion (the parser does not bound sizes; the loader must).
    fn huge_bss_object(size: usize) -> adelie_obj::ObjectFile {
        let mut sections = std::collections::BTreeMap::new();
        sections.insert(
            adelie_obj::SectionKind::Bss,
            adelie_obj::Section {
                bytes: Vec::new(),
                size,
                relocs: Vec::new(),
            },
        );
        adelie_obj::ObjectFile {
            name: "huge".into(),
            sections,
            symbols: Vec::new(),
            exports: Vec::new(),
            init: None,
            exit: None,
            update_pointers: None,
        }
    }

    #[test]
    fn adversarial_section_sizes_are_too_large_never_wrapped() {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        for opts in [
            TransformOptions::pic(false),
            TransformOptions::rerandomizable(true),
        ] {
            for size in [
                u64::MAX as usize,
                (u64::MAX - 4095) as usize,
                (u64::MAX / 2) as usize,
                layout::MODULE_CEILING as usize,
                layout::MODULE_CEILING as usize + PAGE_SIZE,
            ] {
                match registry.load(&huge_bss_object(size), &opts) {
                    Err(LoadError::TooLarge(_)) => {}
                    Err(e) => panic!("size {size:#x} under {opts:?}: wrong error {e}"),
                    Ok(_) => panic!("size {size:#x} under {opts:?} must not load"),
                }
            }
        }
        // The allocator survives the rejections: a sane module still
        // loads and runs.
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&demo_spec(), &opts).unwrap();
        let module = registry.load(&obj, &opts).unwrap();
        let mut vm = kernel.vm();
        assert_eq!(
            vm.call(module.export("demo_calc").unwrap(), &[16]).unwrap(),
            42
        );
    }

    /// Same audit, but with the hostile size arriving the way an
    /// attacker would actually deliver it: as an ELF `sh_size` that the
    /// parser (which does not bound sizes) faithfully reports.
    #[test]
    fn elf_delivered_huge_bss_is_too_large_never_wrapped() {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let opts = TransformOptions::rerandomizable(true);
        for size in [u64::MAX as usize, layout::MODULE_CEILING as usize] {
            let bytes = adelie_elf::emit(&huge_bss_object(size));
            let obj = adelie_elf::parse(&bytes).expect("huge .bss is well-formed ELF");
            match registry.load(&obj, &opts) {
                Err(LoadError::TooLarge(_)) => {}
                Err(e) => panic!("ELF size {size:#x}: wrong error {e}"),
                Ok(_) => panic!("ELF size {size:#x} must not load"),
            }
        }
    }

    #[test]
    fn verify_plt_bindings_flags_a_stale_binding() {
        let opts = TransformOptions::rerandomizable(true).with_lazy_plt();
        let (kernel, _registry, module) = setup(&opts);
        let calc = module.export("demo_calc").unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        let slot = module
            .lazy_plt
            .iter()
            .find(|s| s.bound.load(Ordering::Acquire) != 0)
            .expect("at least one slot bound by the calls above");
        // Simulate a missed re-swing: the recorded binding drifts from
        // what the slot should hold under the current layout.
        let good = slot.bound.load(Ordering::Acquire);
        slot.bound.store(good ^ 0x10, Ordering::Release);
        let v = verify_plt_bindings(&kernel, &module);
        assert!(
            v.iter().any(|m| m.contains("stale")),
            "tampered binding must be reported: {v:?}"
        );
        slot.bound.store(good, Ordering::Release);
        assert_eq!(verify_plt_bindings(&kernel, &module), Vec::<String>::new());
    }

    /// The tentpole property at the interpreter level: across a
    /// re-randomization cycle, a warm VM TLB resynchronizes with
    /// *partial* (range-based) invalidations — it never whole-TLB
    /// flushes — while the legacy whole-TLB configuration
    /// (`tlb_inval_log: 0`) full-flushes on every one of the cycle's
    /// shootdowns.
    #[test]
    fn cycles_cost_partial_flushes_not_full_flushes() {
        let run = |inval_log: usize| {
            let kernel = Kernel::new(KernelConfig {
                tlb_inval_log: inval_log,
                ..KernelConfig::default()
            });
            let registry = ModuleRegistry::new(&kernel);
            let opts = TransformOptions::rerandomizable(false);
            let obj = transform(&demo_spec(), &opts).unwrap();
            let module = registry.load(&obj, &opts).unwrap();
            let calc = module.export("demo_calc").unwrap();
            let mut vm = kernel.vm();
            assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
            let warm = vm.tlb_stats();
            for _ in 0..5 {
                rerandomize_module(&kernel, &registry, &module).unwrap();
                assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
            }
            let s = vm.tlb_stats();
            (
                s.flushes - warm.flushes,
                s.partial_flushes - warm.partial_flushes,
            )
        };
        let (full_flushes, partials) = run(adelie_vmem::DEFAULT_INVAL_LOG);
        assert_eq!(
            full_flushes, 0,
            "range-based sync must never full-flush here"
        );
        assert!(partials > 0, "cycles must be visible as partial flushes");
        let (legacy_full, legacy_partials) = run(0);
        assert_eq!(legacy_partials, 0, "legacy regime has no partial path");
        assert!(
            legacy_full > 0,
            "legacy regime must pay whole-TLB flushes per cycle"
        );
    }

    #[test]
    fn typed_errors_name_the_module() {
        let opts = TransformOptions::pic(false);
        let (kernel, registry, module) = setup(&opts);
        match rerandomize_module(&kernel, &registry, &module) {
            Err(RerandError::NotRerandomizable { module }) => assert_eq!(&*module, "demo"),
            other => panic!("expected NotRerandomizable, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_cycles_of_independent_modules_never_overlap() {
        // Two modules re-randomized from racing threads: the
        // reservation-based allocator must keep every placement
        // disjoint, with no global lock serializing the mapping phase.
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let opts = TransformOptions::rerandomizable(false);
        let modules: Vec<_> = (0..3)
            .map(|i| {
                let mut spec = ModuleSpec::new(&format!("demo{i}"));
                spec.funcs.push(FuncSpec::exported(
                    &format!("demo{i}_calc"),
                    vec![
                        MOp::Insn(Insn::MovRR {
                            dst: Reg::Rax,
                            src: Reg::Rdi,
                        }),
                        MOp::Insn(Insn::AluImm {
                            op: AluOp::Add,
                            dst: Reg::Rax,
                            imm: 26,
                        }),
                        MOp::Ret,
                    ],
                ));
                let obj = transform(&spec, &opts).unwrap();
                registry.load(&obj, &opts).unwrap()
            })
            .collect();
        std::thread::scope(|s| {
            for m in &modules {
                let kernel = kernel.clone();
                let registry = registry.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        rerandomize_module(&kernel, &registry, m).unwrap();
                    }
                });
            }
        });
        // Every module still works and the final placements are
        // pairwise disjoint.
        let mut vm = kernel.vm();
        let mut ranges = Vec::new();
        for (i, m) in modules.iter().enumerate() {
            let calc = m.export(&format!("demo{i}_calc")).unwrap();
            assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
            assert_eq!(m.times_randomized(), 20);
            let base = m.movable_base.load(Ordering::Relaxed);
            ranges.push((base, base + (m.movable.total_pages * PAGE_SIZE) as u64));
        }
        for (i, &(ab, ae)) in ranges.iter().enumerate() {
            for &(bb, be) in ranges.iter().skip(i + 1) {
                assert!(ae <= bb || be <= ab, "module ranges overlap");
            }
        }
    }

    #[test]
    fn legacy_mode_rejects_pic_relocs() {
        // A PIC-transformed object cannot be loaded as legacy.
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let pic_obj = transform(&demo_spec(), &TransformOptions::pic(false)).unwrap();
        let err = registry
            .load(&pic_obj, &TransformOptions::vanilla(false))
            .unwrap_err();
        assert!(matches!(err, LoadError::UnexpectedReloc(_)), "{err:?}");
    }

    #[test]
    fn unresolved_import_fails_load() {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let mut spec = ModuleSpec::new("bad");
        spec.funcs.push(FuncSpec::exported(
            "bad_fn",
            vec![MOp::CallKernel("nonexistent_symbol".into()), MOp::Ret],
        ));
        let opts = TransformOptions::pic(false);
        let obj = transform(&spec, &opts).unwrap();
        match registry.load(&obj, &opts) {
            Err(LoadError::Unresolved(s)) => assert_eq!(s, "nonexistent_symbol"),
            other => panic!("expected unresolved, got {other:?}"),
        }
    }

    #[test]
    fn module_bases_differ_across_kernels_with_different_seeds() {
        let opts = TransformOptions::pic(false);
        let mut bases = Vec::new();
        for seed in [1u64, 2, 3] {
            let kernel = Kernel::new(KernelConfig {
                seed,
                ..KernelConfig::default()
            });
            let registry = ModuleRegistry::new(&kernel);
            let obj = transform(&demo_spec(), &opts).unwrap();
            let m = registry.load(&obj, &opts).unwrap();
            bases.push(m.movable_base.load(Ordering::Relaxed));
        }
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 3, "KASLR placement must vary with the seed");
    }

    #[test]
    fn model_mismatch_is_caught() {
        let _ = CodeModel::Pic; // silence unused import in some cfgs
    }
}
