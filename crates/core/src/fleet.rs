//! Fleet-level module management: placement across kernel shards and
//! live migration between them.
//!
//! [`ShardedKernel`] partitions the
//! machine into independent kernels over disjoint VA windows; this
//! module decides *which* shard a driver lives in and moves it when the
//! answer changes:
//!
//! * [`Fleet`] — one [`ModuleRegistry`] per shard plus the install
//!   catalog (object file + options per module) that makes migration a
//!   rebuild, not a guess;
//! * [`ShardPlacement`] — the pluggable placement policy:
//!   [`RoundRobin`] (uniform spread), [`LoadWeighted`] (lightest shard
//!   by mapped bytes), [`Pinned`] (explicit tenancy);
//! * [`Fleet::migrate`] — **live migration** as vmem batches: the
//!   module is rebuilt in the destination shard (both parts installed
//!   as one map-only batch, GOTs resolved against the destination
//!   kernel's symbol table), its writable data state is copied frame-
//!   to-frame, movable-pointer slots are re-adjusted for the new base,
//!   the `update_pointers` callback runs in the destination, and only
//!   then is the source copy retired — both parts in one batched
//!   shootdown. Make-before-break: traffic entering the destination
//!   shard is servable before the source layout disappears.
//!
//! Like [`ModuleRegistry::unload`], migration requires that no
//! scheduler is actively cycling the module (stop its group, migrate,
//! restart — the rolling-upgrade shape).

use crate::{LoadError, LoadedModule, ModuleRegistry};
use adelie_kernel::{Kernel, ShardedKernel};
use adelie_obj::ObjectFile;
use adelie_plugin::TransformOptions;
use adelie_vmem::{PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// Loading into the target shard failed.
    Load(LoadError),
    /// No module of that name is installed anywhere in the fleet.
    UnknownModule(String),
    /// A module of that name is already installed — install it once,
    /// or unload/migrate the existing copy first (silently replacing
    /// the catalog record would orphan the old copy in its shard).
    DuplicateModule(String),
    /// Shard index out of range — from a caller, or from a placement
    /// policy returning an index the fleet does not have.
    UnknownShard(usize),
    /// Unloading the source copy failed (the destination copy is live;
    /// the module is *not* lost, but the source shard still holds it).
    Unload(String),
    /// The destination module's `update_pointers` callback failed after
    /// state copy (the migration is committed; pointer refresh is in
    /// doubt, mirroring `RerandError::UpdatePointers`).
    UpdatePointers(String),
    /// [`Fleet::retarget`] refused: the module is resident, and a
    /// catalog-only move would strand its live mappings in the old
    /// shard — use [`Fleet::migrate`] for resident modules.
    ResidentModule(String),
    /// Admission control refused the target shard: it is at its module
    /// cap. Pick another shard or unload something first.
    Overloaded {
        /// The refused shard.
        shard: usize,
        /// Modules it currently holds.
        modules: usize,
        /// The configured cap ([`AdmissionConfig::max_modules_per_shard`]).
        limit: usize,
    },
    /// Backpressure: the fleet's repair queue is saturated (it is busy
    /// re-converging after faults). Retry after draining — `after_ns`
    /// is the suggested wait on the caller's clock.
    RetryAfter {
        /// Suggested wait before retrying, in nanoseconds.
        after_ns: u64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Load(e) => write!(f, "fleet load failed: {e}"),
            FleetError::UnknownModule(m) => write!(f, "no module `{m}` in the fleet"),
            FleetError::DuplicateModule(m) => {
                write!(f, "module `{m}` is already installed in the fleet")
            }
            FleetError::UnknownShard(s) => write!(f, "no shard {s}"),
            FleetError::Unload(e) => write!(f, "source unload failed: {e}"),
            FleetError::UpdatePointers(e) => {
                write!(f, "destination update_pointers failed: {e}")
            }
            FleetError::ResidentModule(m) => {
                write!(f, "module `{m}` is resident; live-migrate it instead")
            }
            FleetError::Overloaded {
                shard,
                modules,
                limit,
            } => write!(
                f,
                "shard {shard} overloaded: {modules} modules at cap {limit}"
            ),
            FleetError::RetryAfter { after_ns } => {
                write!(f, "fleet busy repairing; retry after {after_ns} ns")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<LoadError> for FleetError {
    fn from(e: LoadError) -> FleetError {
        FleetError::Load(e)
    }
}

/// One shard's placement-relevant load, as seen by a policy.
#[derive(Copy, Clone, Debug)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Modules currently resident.
    pub modules: usize,
    /// Total bytes mapped by those modules (both parts).
    pub mapped_bytes: usize,
}

/// A pluggable shard-placement policy. Policies must be deterministic
/// for a given call sequence — fleet runs replay from a seed, and a
/// placement that consulted wall time or an unseeded RNG would break
/// the soak suite's byte-identical-replay gate.
pub trait ShardPlacement: Send + Sync {
    /// Choose the shard for `module` given the current per-shard loads
    /// (always non-empty, indexed by shard).
    fn place(&self, module: &str, loads: &[ShardLoad]) -> usize;

    /// Policy label (stats, bench output).
    fn name(&self) -> &'static str;
}

/// Uniform spread: shard `k`, `k+1`, … regardless of load.
#[derive(Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// A round-robin policy starting at shard 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl ShardPlacement for RoundRobin {
    fn place(&self, _module: &str, loads: &[ShardLoad]) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % loads.len()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Lightest-shard placement: fewest mapped bytes, ties to the lowest
/// index (deterministic).
#[derive(Default)]
pub struct LoadWeighted;

impl LoadWeighted {
    /// A load-weighted policy.
    pub fn new() -> LoadWeighted {
        LoadWeighted
    }
}

impl ShardPlacement for LoadWeighted {
    fn place(&self, _module: &str, loads: &[ShardLoad]) -> usize {
        loads
            .iter()
            .min_by_key(|l| (l.mapped_bytes, l.modules, l.shard))
            .map(|l| l.shard)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "load-weighted"
    }
}

/// Explicit tenancy: named modules go to their pinned shard, everything
/// else to `fallback`.
pub struct Pinned {
    assignments: HashMap<String, usize>,
    fallback: usize,
}

impl Pinned {
    /// Pin each `(module, shard)` pair; unknown modules land on
    /// `fallback`.
    pub fn new(assignments: HashMap<String, usize>, fallback: usize) -> Pinned {
        Pinned {
            assignments,
            fallback,
        }
    }
}

impl ShardPlacement for Pinned {
    fn place(&self, module: &str, _loads: &[ShardLoad]) -> usize {
        // No clamping: a pin outside the fleet is a misconfiguration,
        // and install() surfaces it as `FleetError::UnknownShard`
        // instead of silently relocating the tenant.
        self.assignments
            .get(module)
            .copied()
            .unwrap_or(self.fallback)
    }

    fn name(&self) -> &'static str {
        "pinned"
    }
}

/// What the catalog remembers about an installed module — enough to
/// rebuild it in any shard.
struct InstallRecord {
    shard: usize,
    obj: ObjectFile,
    opts: TransformOptions,
}

/// Admission-control limits on fleet mutations (ROADMAP item 4's
/// "admission control + backpressure on the install catalog").
#[derive(Copy, Clone, Debug)]
pub struct AdmissionConfig {
    /// Most modules one shard may hold; installs and migrations into a
    /// fuller shard fail with [`FleetError::Overloaded`].
    pub max_modules_per_shard: usize,
    /// Most half-repaired modules the repair queue may hold before
    /// install/migrate push back with [`FleetError::RetryAfter`] — a
    /// fleet drowning in fault recovery stops admitting new work.
    pub max_pending_repairs: usize,
    /// Base repair-retry delay, in ns (doubles per attempt), and the
    /// wait suggested by [`FleetError::RetryAfter`].
    pub retry_after_ns: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_modules_per_shard: 4096,
            max_pending_repairs: 64,
            retry_after_ns: 1_000_000,
        }
    }
}

/// Ceiling on the repair queue's exponential backoff (and on
/// [`FleetError::RetryAfter`] hints). Unclamped, sixteen doublings of
/// the default base stretch a retry to ~65536 s — far past any watchdog
/// scan horizon, parking the orphan effectively forever. One second
/// keeps the slowest repair inside every supervision loop's sight.
pub const MAX_REPAIR_BACKOFF_NS: u64 = 1_000_000_000;

/// The repair queue's backoff schedule: `base · 2^attempts`, clamped to
/// [`MAX_REPAIR_BACKOFF_NS`]. Returns `(backoff_ns, clamped)`.
fn repair_backoff(base_ns: u64, attempts: u32) -> (u64, bool) {
    let raw = base_ns.saturating_mul(1u64 << attempts.min(16));
    if raw > MAX_REPAIR_BACKOFF_NS {
        (MAX_REPAIR_BACKOFF_NS, true)
    } else {
        (raw, false)
    }
}

/// Repair-queue health, for supervisors and dashboards.
#[derive(Copy, Clone, Debug, Default)]
pub struct RepairStats {
    /// Half-migrated orphans still queued.
    pub pending: usize,
    /// Times the exponential backoff hit [`MAX_REPAIR_BACKOFF_NS`] —
    /// a non-zero count means some orphan is pinned at the ceiling.
    pub backoff_clamps: u64,
}

/// Cold-module tier limits (ROADMAP item 4's "10^5–10^6 registered
/// modules with only a hot working set resident").
#[derive(Copy, Clone, Debug)]
pub struct ColdTierConfig {
    /// A resident module with no outermost call for this long is
    /// eligible for eviction at the next [`Fleet::cold_tick`].
    pub idle_ns: u64,
    /// Most modules the whole fleet keeps resident; `cold_tick` evicts
    /// least-recently-called modules beyond it even if not yet idle.
    pub max_resident: usize,
}

impl Default for ColdTierConfig {
    fn default() -> Self {
        ColdTierConfig {
            idle_ns: 10_000_000,
            max_resident: 1024,
        }
    }
}

/// Cold-tier counters (monotonic over the fleet's lifetime, except the
/// occupancy snapshots).
#[derive(Copy, Clone, Debug, Default)]
pub struct ColdTierStats {
    /// Modules evicted to the cold tier.
    pub evictions: u64,
    /// Modules faulted back in (demand or explicit `ensure_resident`).
    pub fault_ins: u64,
    /// Fault-ins that came through the VA demand path (a caller held a
    /// stale entry address into an evicted module).
    pub demand_redirects: u64,
    /// Modules currently resident, fleet-wide.
    pub resident: usize,
    /// Catalog records currently without a resident copy, fleet-wide.
    pub cold: usize,
}

/// Where an evicted module's parts used to be mapped — the demand
/// loader resolves stale entry VAs against these spans, and the layout
/// oracle probes them to prove the eviction really unmapped.
#[derive(Copy, Clone, Debug)]
struct EvictedModule {
    shard: usize,
    imm_base: u64,
    imm_span: u64,
    mov_base: u64,
    mov_span: u64,
}

/// One shard's occupancy, maintained incrementally so admission checks
/// are O(1) at 10^5+ catalog records (the old accounting walked the
/// whole catalog per install). `resident` counts registry residents —
/// including half-migrated orphans, whose catalog record points at the
/// migration destination — and `cold` counts catalog records without a
/// resident copy, so `resident + cold` is exactly the union of catalog
/// records and registry residents that `recover_shard` tears down.
#[derive(Copy, Clone, Debug, Default)]
struct ShardCounter {
    resident: usize,
    cold: usize,
    mapped_bytes: usize,
}

/// One shard's sorted span index: `(start, end, module)` for both
/// parts of every resident module, resolved by `partition_point`.
type SpanIndex = Vec<(u64, u64, Arc<str>)>;

/// The cold tier's bookkeeping: per-shard resident span indexes (for
/// resolving call VAs to module names), last-call stamps, per-module
/// call counts (autoscaler telemetry), and the evicted-span map the
/// demand loader consults. All its locks are leaves — never hold one
/// while taking the catalog.
struct ColdTier {
    cfg: ColdTierConfig,
    /// The fleet clock as of the last `cold_tick` — what the call
    /// observer stamps last-call times with.
    now_ns: AtomicU64,
    /// Per shard: resident spans sorted by start (entry VAs resolve to
    /// names by `partition_point`, the scheduler's idiom).
    ranges: Mutex<Vec<SpanIndex>>,
    last_call: Mutex<HashMap<Arc<str>, u64>>,
    module_calls: Mutex<HashMap<Arc<str>, u64>>,
    shard_calls: Vec<AtomicU64>,
    evicted: Mutex<HashMap<Arc<str>, EvictedModule>>,
    evictions: AtomicU64,
    fault_ins: AtomicU64,
    demand_redirects: AtomicU64,
}

impl ColdTier {
    fn new(cfg: ColdTierConfig, shards: usize) -> ColdTier {
        ColdTier {
            cfg,
            now_ns: AtomicU64::new(0),
            ranges: Mutex::new(vec![Vec::new(); shards]),
            last_call: Mutex::new(HashMap::new()),
            module_calls: Mutex::new(HashMap::new()),
            shard_calls: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            evicted: Mutex::new(HashMap::new()),
            evictions: AtomicU64::new(0),
            fault_ins: AtomicU64::new(0),
            demand_redirects: AtomicU64::new(0),
        }
    }

    /// Index both parts of a freshly resident module and stamp its
    /// last-call time (so it is not instantly idle-evicted).
    fn insert_module(&self, shard: usize, m: &LoadedModule) {
        let mut ranges = self.ranges.lock();
        let mov_base = m.movable_base.load(Ordering::Acquire);
        let mut add = |base: u64, span: u64| {
            let v = &mut ranges[shard];
            let at = v.partition_point(|&(s, _, _)| s < base);
            v.insert(at, (base, base + span, m.name.clone()));
        };
        add(mov_base, (m.movable.total_pages * PAGE_SIZE) as u64);
        if let Some(imm) = &m.immovable {
            add(imm.base, (imm.total_pages * PAGE_SIZE) as u64);
        }
        drop(ranges);
        self.last_call
            .lock()
            .insert(m.name.clone(), self.now_ns.load(Ordering::Relaxed));
    }

    /// Drop a module's span index entries for one shard (the other
    /// shard's copy, if any, keeps its own entries).
    fn remove_module(&self, shard: usize, name: &str) {
        self.ranges.lock()[shard].retain(|(_, _, n)| n.as_ref() != name);
    }

    /// Which resident module (in `shard`) covers `va`, if any.
    fn resolve(&self, shard: usize, va: u64) -> Option<Arc<str>> {
        let ranges = self.ranges.lock();
        let v = &ranges[shard];
        let at = v.partition_point(|&(s, _, _)| s <= va);
        at.checked_sub(1).and_then(|i| {
            let (start, end, ref name) = v[i];
            (va >= start && va < end).then(|| name.clone())
        })
    }
}

/// One half-migrated module awaiting background repair: `migrate`'s
/// make-before-break committed the destination copy, but retiring the
/// source copy failed, leaving an orphan in the source shard.
struct RepairTask {
    module: String,
    /// The shard holding the orphaned copy.
    shard: usize,
    /// Unload attempts so far (drives backoff and the force threshold).
    attempts: u32,
    /// Not retried before this clock time (caller-supplied ns).
    next_ns: u64,
}

/// Graceful repair attempts before [`ModuleRegistry::force_unload`]
/// (skipping the module's exit) becomes the last resort.
const REPAIR_FORCE_AFTER: u32 = 3;

/// What [`Fleet::recover_shard`] did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The recovered shard.
    pub shard: usize,
    /// Modules torn down and rebuilt from the install catalog, sorted.
    pub rebuilt: Vec<String>,
    /// Modules that could not be rebuilt, with the error — their
    /// catalog records are dropped (the fleet no longer serves them).
    pub failed: Vec<(String, String)>,
    /// Every `(base, span_bytes)` the rebuild unmapped — the oracle
    /// probes these to prove no stale mapping survived.
    pub vacated: Vec<(u64, u64)>,
}

/// The fleet: per-shard registries + placement + the install catalog.
pub struct Fleet {
    sharded: Arc<ShardedKernel>,
    registries: Vec<Arc<ModuleRegistry>>,
    placement: Box<dyn ShardPlacement>,
    /// Serializes fleet-level mutations (install / migrate / unload) so
    /// placement decisions see a consistent view. Traffic and
    /// re-randomization never take it. `Arc` so the demand loader (which
    /// runs inside `Vm::call`) can consult the recipe without a
    /// back-reference to the fleet.
    catalog: Arc<Mutex<HashMap<Arc<str>, InstallRecord>>>,
    /// Half-migrated orphans awaiting background unload retries. Lock
    /// order: `catalog` before `repairs` before any [`ColdTier`] lock,
    /// never the reverse.
    repairs: Mutex<Vec<RepairTask>>,
    /// Per-shard occupancy, maintained incrementally (see
    /// [`ShardCounter`]).
    counters: Arc<Mutex<Vec<ShardCounter>>>,
    /// The cold-module tier, once [`Fleet::enable_cold_tier`] ran.
    cold: Mutex<Option<Arc<ColdTier>>>,
    backoff_clamps: AtomicU64,
    admission: AdmissionConfig,
}

impl Fleet {
    /// A fleet over `sharded` placing modules with `placement`, under
    /// default admission limits.
    pub fn new(sharded: Arc<ShardedKernel>, placement: Box<dyn ShardPlacement>) -> Fleet {
        Fleet::with_admission(sharded, placement, AdmissionConfig::default())
    }

    /// [`Fleet::new`] with explicit admission-control limits.
    pub fn with_admission(
        sharded: Arc<ShardedKernel>,
        placement: Box<dyn ShardPlacement>,
        admission: AdmissionConfig,
    ) -> Fleet {
        let registries: Vec<Arc<ModuleRegistry>> =
            sharded.shards().iter().map(ModuleRegistry::new).collect();
        let shards = registries.len();
        Fleet {
            sharded,
            registries,
            placement,
            catalog: Arc::new(Mutex::new(HashMap::new())),
            repairs: Mutex::new(Vec::new()),
            counters: Arc::new(Mutex::new(vec![ShardCounter::default(); shards])),
            cold: Mutex::new(None),
            backoff_clamps: AtomicU64::new(0),
            admission,
        }
    }

    /// The underlying shard set.
    pub fn sharded(&self) -> &Arc<ShardedKernel> {
        &self.sharded
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.registries.len()
    }

    /// Never true (a fleet has ≥ 1 shard).
    pub fn is_empty(&self) -> bool {
        self.registries.is_empty()
    }

    /// Shard `i`'s kernel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn kernel(&self, i: usize) -> &Arc<Kernel> {
        self.sharded.shard(i)
    }

    /// Shard `i`'s module registry.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn registry(&self, i: usize) -> &Arc<ModuleRegistry> {
        &self.registries[i]
    }

    /// Which shard currently owns `name`.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.catalog.lock().get(name).map(|r| r.shard)
    }

    /// `(module, shard)` for everything installed, sorted by name
    /// (deterministic iteration for tests and dumps).
    pub fn modules(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .catalog
            .lock()
            .iter()
            .map(|(n, r)| (n.to_string(), r.shard))
            .collect();
        v.sort();
        v
    }

    /// Current per-shard loads (what placement policies consult).
    /// `modules` is the *union* occupancy — registry residents
    /// (including half-migrated orphans whose catalog record points at
    /// their migration destination) plus cold catalog records — so a
    /// shard draining orphans cannot be over-admitted past its cap.
    /// Read from incrementally maintained counters: O(shards), not
    /// O(catalog), which is what keeps admission cheap at 10^5+
    /// registered modules.
    pub fn loads(&self) -> Vec<ShardLoad> {
        self.counters
            .lock()
            .iter()
            .enumerate()
            .map(|(shard, c)| ShardLoad {
                shard,
                modules: c.resident + c.cold,
                mapped_bytes: c.mapped_bytes,
            })
            .collect()
    }

    /// Admission check against the union occupancy of `shard`.
    fn check_occupancy(&self, shard: usize) -> Result<(), FleetError> {
        let c = self.counters.lock()[shard];
        let modules = c.resident + c.cold;
        if modules >= self.admission.max_modules_per_shard {
            return Err(FleetError::Overloaded {
                shard,
                modules,
                limit: self.admission.max_modules_per_shard,
            });
        }
        Ok(())
    }

    /// The installed cold tier, if enabled.
    fn cold_tier(&self) -> Option<Arc<ColdTier>> {
        self.cold.lock().clone()
    }

    /// Every live VA span in the fleet:
    /// `(shard, module, base, span_bytes)` for both parts of every
    /// installed module — the ground truth the cross-shard overlap and
    /// window-confinement invariants are checked against.
    pub fn live_spans(&self) -> Vec<(usize, String, u64, u64)> {
        let catalog = self.catalog.lock();
        let mut spans = Vec::new();
        for (name, rec) in catalog.iter() {
            let Some(m) = self.registries[rec.shard].get(name) else {
                continue;
            };
            let base = m.movable_base.load(Ordering::Acquire);
            spans.push((
                rec.shard,
                name.to_string(),
                base,
                (m.movable.total_pages * PAGE_SIZE) as u64,
            ));
            if let Some(imm) = &m.immovable {
                spans.push((
                    rec.shard,
                    name.to_string(),
                    imm.base,
                    (imm.total_pages * PAGE_SIZE) as u64,
                ));
            }
        }
        spans.sort();
        spans
    }

    /// Audit the fleet's live layout: every span must sit wholly inside
    /// its owning shard's window, and all spans must be pairwise
    /// disjoint (within a shard *and* across shards — windows tile, so
    /// a cross-shard overlap is also a window escape, but both are
    /// reported by name). The single checker behind `FleetSim::verify`,
    /// the fleet bench, and the placement proptests, so the invariant
    /// cannot drift between its enforcers. Returns human-readable
    /// violations; empty = clean.
    pub fn verify_layout(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let spans = self.live_spans();
        for (i, &(shard_a, ref a, base_a, span_a)) in spans.iter().enumerate() {
            let (lo, hi) = self.sharded.window(shard_a);
            if base_a < lo || base_a + span_a > hi {
                violations.push(format!(
                    "window escape: {a} (shard {shard_a}) spans \
                     {base_a:#x}+{span_a:#x} outside [{lo:#x}, {hi:#x})"
                ));
            }
            for &(shard_b, ref b, base_b, span_b) in spans.iter().skip(i + 1) {
                if base_a < base_b + span_b && base_b < base_a + span_a {
                    violations.push(format!(
                        "VA overlap: {a} (shard {shard_a}) {base_a:#x}+{span_a:#x} \
                         vs {b} (shard {shard_b}) {base_b:#x}+{span_b:#x}"
                    ));
                }
            }
        }
        violations
    }

    /// Install a module: placement picks the shard, the shard's
    /// registry loads it (init runs in that shard), the catalog records
    /// the recipe for future migration. Returns `(shard, module)`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Load`] when the shard's loader rejects the object;
    /// [`FleetError::DuplicateModule`] when the name is already
    /// installed (replacing the record would orphan the old copy);
    /// [`FleetError::UnknownShard`] when the placement policy names a
    /// shard the fleet does not have;
    /// [`FleetError::Overloaded`] when the chosen shard is at its
    /// module cap; [`FleetError::RetryAfter`] when the repair queue is
    /// saturated (admission control — see [`AdmissionConfig`]).
    pub fn install(
        &self,
        obj: &ObjectFile,
        opts: &TransformOptions,
    ) -> Result<(usize, Arc<LoadedModule>), FleetError> {
        let mut catalog = self.catalog.lock();
        if catalog.contains_key(obj.name.as_str()) {
            return Err(FleetError::DuplicateModule(obj.name.clone()));
        }
        self.admit()?;
        let loads = self.loads();
        let shard = self.placement.place(&obj.name, &loads);
        if shard >= loads.len() {
            return Err(FleetError::UnknownShard(shard));
        }
        self.check_occupancy(shard)?;
        let module = self.registries[shard].load(obj, opts)?;
        catalog.insert(
            module.name.clone(),
            InstallRecord {
                shard,
                obj: obj.clone(),
                opts: *opts,
            },
        );
        {
            let mut counters = self.counters.lock();
            counters[shard].resident += 1;
            counters[shard].mapped_bytes += module.mapped_bytes();
        }
        if let Some(tier) = self.cold_tier() {
            tier.insert_module(shard, &module);
        }
        self.sharded.shard(shard).printk.log(format!(
            "fleet: {} placed on shard {shard} ({})",
            module.name,
            self.placement.name()
        ));
        Ok((shard, module))
    }

    /// Register a module in the catalog *cold*: placement picks the
    /// shard and the recipe is recorded, but nothing is loaded — the
    /// module materializes on first call (demand fault) or via
    /// [`Fleet::ensure_resident`]. This is how a 10^5–10^6-module
    /// catalog stays cheap: a registration is one hash insert, no
    /// mapping, no init. Counts toward the shard's union occupancy.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`Fleet::install`], minus `Load` (no
    /// load happens).
    pub fn register(&self, obj: &ObjectFile, opts: &TransformOptions) -> Result<usize, FleetError> {
        let mut catalog = self.catalog.lock();
        if catalog.contains_key(obj.name.as_str()) {
            return Err(FleetError::DuplicateModule(obj.name.clone()));
        }
        self.admit()?;
        let loads = self.loads();
        let shard = self.placement.place(&obj.name, &loads);
        if shard >= loads.len() {
            return Err(FleetError::UnknownShard(shard));
        }
        self.check_occupancy(shard)?;
        catalog.insert(
            Arc::from(obj.name.as_str()),
            InstallRecord {
                shard,
                obj: obj.clone(),
                opts: *opts,
            },
        );
        self.counters.lock()[shard].cold += 1;
        self.sharded.shard(shard).printk.log_limited(
            "fleet-register",
            format!(
                "fleet: {} registered cold on shard {shard} ({})",
                obj.name,
                self.placement.name()
            ),
        );
        Ok(shard)
    }

    /// Live-migrate `name` to shard `dst` (see module docs for the
    /// batch protocol). No-op if the module already lives there.
    /// Returns the destination-resident module.
    ///
    /// # Errors
    ///
    /// [`FleetError`] — on a load failure the source copy is untouched
    /// and still serving; on an unload failure the destination copy is
    /// live, the catalog points at it, and the orphaned source copy is
    /// queued for background repair (see [`Fleet::run_repairs`]).
    pub fn migrate(&self, name: &str, dst: usize) -> Result<Arc<LoadedModule>, FleetError> {
        if dst >= self.registries.len() {
            return Err(FleetError::UnknownShard(dst));
        }
        let mut catalog = self.catalog.lock();
        let rec = catalog
            .get(name)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        let src = rec.shard;
        let src_module = self.registries[src]
            .get(name)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        if src == dst {
            return Ok(src_module);
        }
        self.admit()?;
        self.check_occupancy(dst)?;
        let (obj, opts) = (rec.obj.clone(), rec.opts);

        // (1) Make: rebuild in the destination. Both parts install as
        // one map-only vmem batch inside the loader; GOTs resolve
        // against the destination kernel; init runs there (device
        // attach). The source copy keeps serving throughout.
        let dst_module = self.registries[dst].load(&obj, &opts)?;

        // (2) Copy live state: every writable data page travels frame-
        // to-frame, so counters, rings, and tables survive the move.
        let src_kernel = self.sharded.shard(src);
        let dst_kernel = self.sharded.shard(dst);
        copy_writable_state(src_kernel, &src_module, dst_kernel, &dst_module);

        // (3) Re-adjust movable pointers for the destination base (the
        // raw copy imported source-shard addresses) and let the module
        // refresh its own run-time pointers.
        let dst_base = dst_module.movable_base.load(Ordering::Acquire);
        for slot in &dst_module.adjust_slots {
            let frames = match slot.part {
                crate::Part::Movable => &dst_module.movable.frames,
                crate::Part::Immovable => &dst_module.immovable.as_ref().unwrap().frames,
            };
            let page = (slot.slot_off / PAGE_SIZE as u64) as usize;
            let off = (slot.slot_off % PAGE_SIZE as u64) as usize;
            dst_kernel
                .phys
                .write_u64(frames[page], off, dst_base + slot.target_off);
        }
        let update_result = match dst_module.update_pointers_va {
            Some(up) => {
                let mut vm = dst_kernel.vm();
                vm.call(up, &[dst_base]).map(|_| ()).map_err(|e| {
                    dst_module
                        .pointer_refresh_failures
                        .fetch_add(1, Ordering::Relaxed);
                    FleetError::UpdatePointers(e.to_string())
                })
            }
            None => Ok(()),
        };

        // (4) Break: retire the source copy — exit runs there (device
        // detach) and both parts unmap as one batched shootdown.
        catalog.insert(
            dst_module.name.clone(),
            InstallRecord {
                shard: dst,
                obj,
                opts,
            },
        );
        {
            // The destination copy is live from here; the source copy
            // stays charged to its shard until the unload below (or the
            // repair queue) actually retires it — that residual charge
            // is what keeps a shard draining orphans from being
            // over-admitted.
            let mut counters = self.counters.lock();
            counters[dst].resident += 1;
            counters[dst].mapped_bytes += dst_module.mapped_bytes();
        }
        let src_bytes = src_module.mapped_bytes();
        if let Some(tier) = self.cold_tier() {
            tier.insert_module(dst, &dst_module);
        }
        drop(src_module);
        if let Err(e) = self.registries[src].unload(name) {
            // Half-migrated: the destination copy serves and the
            // catalog points at it, but the source shard still holds an
            // orphaned copy. Queue it for background repair (retried
            // with backoff by `run_repairs`) instead of stranding it.
            self.repairs.lock().push(RepairTask {
                module: name.to_string(),
                shard: src,
                attempts: 0,
                next_ns: 0,
            });
            self.sharded.shard(src).printk.log(format!(
                "fleet: {name} orphaned on shard {src} after migrate \
                 (unload failed: {e}); queued for repair"
            ));
            return Err(FleetError::Unload(e));
        }
        {
            let mut counters = self.counters.lock();
            counters[src].resident -= 1;
            counters[src].mapped_bytes -= src_bytes;
        }
        if let Some(tier) = self.cold_tier() {
            tier.remove_module(src, name);
        }
        dst_kernel
            .printk
            .log(format!("fleet: {name} migrated shard {src} -> shard {dst}"));
        update_result.map(|()| dst_module)
    }

    /// Move a *cold* module's tenancy to shard `dst` — a catalog-only
    /// edit (no mapping exists to migrate). The autoscaler uses this to
    /// drain a shard it is deactivating: residents live-migrate, cold
    /// records retarget. The module's next fault-in lands in `dst`.
    ///
    /// # Errors
    ///
    /// [`FleetError::ResidentModule`] when the module is resident (use
    /// [`Fleet::migrate`]); the usual admission errors for `dst`.
    pub fn retarget(&self, name: &str, dst: usize) -> Result<(), FleetError> {
        if dst >= self.registries.len() {
            return Err(FleetError::UnknownShard(dst));
        }
        let mut catalog = self.catalog.lock();
        let rec = catalog
            .get(name)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        let src = rec.shard;
        if src == dst {
            return Ok(());
        }
        if self.registries[src].get(name).is_some() {
            return Err(FleetError::ResidentModule(name.to_string()));
        }
        self.admit()?;
        self.check_occupancy(dst)?;
        catalog.get_mut(name).expect("record checked above").shard = dst;
        let mut counters = self.counters.lock();
        counters[src].cold = counters[src].cold.saturating_sub(1);
        counters[dst].cold += 1;
        Ok(())
    }

    /// Admission gate shared by install and migrate: a repair queue at
    /// capacity means the fleet is drowning in fault recovery — push
    /// back instead of admitting more work. The `RetryAfter` hint
    /// scales with the current queue depth (depth × base, clamped to
    /// [`MAX_REPAIR_BACKOFF_NS`]): the deeper the backlog, the longer
    /// a caller should stay away, so a storm of refused installs does
    /// not hammer the fleet at a fixed cadence.
    fn admit(&self) -> Result<(), FleetError> {
        let depth = self.repairs.lock().len();
        if depth >= self.admission.max_pending_repairs {
            let after_ns = self
                .admission
                .retry_after_ns
                .saturating_mul(depth as u64)
                .min(MAX_REPAIR_BACKOFF_NS);
            return Err(FleetError::RetryAfter { after_ns });
        }
        Ok(())
    }

    /// Half-migrated orphans still awaiting background repair.
    pub fn pending_repairs(&self) -> usize {
        self.repairs.lock().len()
    }

    /// Repair-queue health (pending depth + backoff-clamp count).
    pub fn repair_stats(&self) -> RepairStats {
        RepairStats {
            pending: self.repairs.lock().len(),
            backoff_clamps: self.backoff_clamps.load(Ordering::Relaxed),
        }
    }

    /// Run the background repair queue at time `now_ns` (on whatever
    /// clock the caller drives — wall in production, virtual under the
    /// testkit): every due task retries its orphan unload, gracefully
    /// at first and via [`ModuleRegistry::force_unload`] once
    /// `REPAIR_FORCE_AFTER` graceful attempts failed; failures re-queue
    /// with exponential backoff. Returns the number of orphans
    /// repaired.
    pub fn run_repairs(&self, now_ns: u64) -> usize {
        // Lock order: catalog before repairs.
        let _catalog = self.catalog.lock();
        let mut repairs = self.repairs.lock();
        let mut repaired = 0;
        let mut keep = Vec::new();
        for mut task in repairs.drain(..) {
            if task.next_ns > now_ns {
                keep.push(task);
                continue;
            }
            let registry = &self.registries[task.shard];
            let Some(orphan) = registry.get(&task.module) else {
                // Already gone (a shard rebuild swept it); done.
                repaired += 1;
                continue;
            };
            let orphan_bytes = orphan.mapped_bytes();
            drop(orphan);
            let force = task.attempts >= REPAIR_FORCE_AFTER;
            let result = if force {
                registry.force_unload(&task.module)
            } else {
                registry.unload(&task.module)
            };
            match result {
                Ok(()) => {
                    {
                        let mut counters = self.counters.lock();
                        counters[task.shard].resident -= 1;
                        counters[task.shard].mapped_bytes -= orphan_bytes;
                    }
                    if let Some(tier) = self.cold_tier() {
                        tier.remove_module(task.shard, &task.module);
                    }
                    self.sharded.shard(task.shard).printk.log(format!(
                        "fleet: repaired orphan {} on shard {} (attempt {}{})",
                        task.module,
                        task.shard,
                        task.attempts + 1,
                        if force { ", forced" } else { "" }
                    ));
                    repaired += 1;
                }
                Err(e) => {
                    task.attempts = task.attempts.saturating_add(1);
                    let (backoff, clamped) =
                        repair_backoff(self.admission.retry_after_ns, task.attempts);
                    if clamped {
                        self.backoff_clamps.fetch_add(1, Ordering::Relaxed);
                    }
                    task.next_ns = now_ns.saturating_add(backoff);
                    self.sharded.shard(task.shard).printk.log_limited(
                        &format!("fleet-repair:{}", task.module),
                        format!(
                            "fleet: repair of {} on shard {} failed ({e}); \
                             retrying at +{backoff} ns",
                            task.module, task.shard
                        ),
                    );
                    keep.push(task);
                }
            }
        }
        *repairs = keep;
        repaired
    }

    /// Crash-recover shard `shard`: tear down every module it holds
    /// (forced — a crashed shard's exits don't get a vote) and rebuild
    /// each from the install catalog's stored object + options, in
    /// name order (deterministic). Teardown covers what the shard's
    /// registry *actually* holds, not just the catalog's records for
    /// it — a half-migrated orphan's record points at the migration
    /// destination, but its stale copy lives here and vanishes with
    /// the rebuild. A pending repair task is dropped only once its
    /// orphan is confirmed gone from the registry. Callers drive this
    /// from a [`ShardWatchdog`](crate::ShardWatchdog) verdict, then
    /// rebuild the shard's scheduler group.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownShard`]. Per-module rebuild failures are
    /// reported in the [`RecoveryReport`], not as an error — recovery
    /// salvages what it can.
    pub fn recover_shard(&self, shard: usize) -> Result<RecoveryReport, FleetError> {
        if shard >= self.registries.len() {
            return Err(FleetError::UnknownShard(shard));
        }
        let mut catalog = self.catalog.lock();
        let registry = &self.registries[shard];
        // Tear down the union of the catalog's records for this shard
        // and the registry's resident modules: a half-migrated orphan
        // is resident here while its catalog record points at the
        // migration destination, and a record whose module the
        // registry lost still deserves a rebuild.
        let mut names: Vec<Arc<str>> = catalog
            .iter()
            .filter(|(_, rec)| rec.shard == shard)
            .map(|(n, _)| n.clone())
            .collect();
        names.extend(registry.list().into_iter().map(Arc::<str>::from));
        names.sort();
        names.dedup();
        let kernel = self.sharded.shard(shard);
        let mut report = RecoveryReport {
            shard,
            ..RecoveryReport::default()
        };
        let cold_tier = self.cold_tier();
        for name in names {
            let owned_here = catalog.get(&name).is_some_and(|rec| rec.shard == shard);
            if cold_tier.is_some() && registry.get(&name).is_none() {
                // Cold tier enabled: a catalog record without a
                // resident copy is cold *by design* — its spans are
                // already unmapped and its recipe intact, so recovery
                // leaves it to fault back in on first call instead of
                // materializing the whole catalog.
                continue;
            }
            if let Some(m) = registry.get(&name) {
                let base = m.movable_base.load(Ordering::Acquire);
                let mut spans = vec![(base, (m.movable.total_pages * PAGE_SIZE) as u64)];
                if let Some(imm) = &m.immovable {
                    spans.push((imm.base, (imm.total_pages * PAGE_SIZE) as u64));
                }
                if let Err(e) = registry.force_unload(&name) {
                    // Retire batch failed: the old mappings survive and
                    // their frames are withheld, so the spans are NOT
                    // vacated — the oracle must not probe them as
                    // reclaimed. Reloading on top would double-serve
                    // the name, so drop the module from the fleet
                    // entirely.
                    report.failed.push((name.to_string(), e));
                    if owned_here {
                        catalog.remove(&name);
                    }
                    continue;
                }
                // Vacated only after the teardown actually unmapped the
                // spans: the layout oracle probes them to prove no
                // stale mapping survives rebuild.
                report.vacated.extend(spans);
            }
            if !owned_here {
                // Half-migrated orphan: the live copy serves from its
                // destination shard, so sweeping the stale copy *is*
                // the repair — nothing to rebuild here.
                kernel.printk.log(format!(
                    "fleet: swept orphan {name} during shard {shard} recovery"
                ));
                continue;
            }
            let rec = catalog
                .get(&name)
                .expect("catalog record exists for its own shard listing");
            match registry.load(&rec.obj, &rec.opts) {
                Ok(_) => report.rebuilt.push(name.to_string()),
                Err(e) => {
                    report.failed.push((name.to_string(), e.to_string()));
                    catalog.remove(&name);
                }
            }
        }
        // Drop a repair task only once its orphan is confirmed gone
        // from the registry. (A retire-batch failure also removes the
        // registry record — the frames are deliberately withheld and no
        // retry can reclaim them, so dropping the task is right there
        // too.)
        self.repairs
            .lock()
            .retain(|t| t.shard != shard || registry.get(&t.module).is_some());
        // Recompute this shard's occupancy counters from the rebuilt
        // ground truth (teardown/rebuild interleavings are easier to
        // recount than to track), and re-index the cold tier's resident
        // spans for the shard.
        {
            let mut c = ShardCounter::default();
            for name in registry.list() {
                if let Some(m) = registry.get(&name) {
                    c.resident += 1;
                    c.mapped_bytes += m.mapped_bytes();
                }
            }
            c.cold = catalog
                .iter()
                .filter(|(n, rec)| rec.shard == shard && registry.get(n).is_none())
                .count();
            self.counters.lock()[shard] = c;
        }
        if let Some(tier) = cold_tier {
            tier.ranges.lock()[shard].clear();
            for name in registry.list() {
                if let Some(m) = registry.get(&name) {
                    tier.insert_module(shard, &m);
                }
            }
        }
        kernel.printk.log(format!(
            "fleet: shard {shard} recovered ({} rebuilt, {} failed)",
            report.rebuilt.len(),
            report.failed.len()
        ));
        Ok(report)
    }

    /// Unload `name` from whichever shard owns it.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownModule`] / [`FleetError::Unload`].
    pub fn unload(&self, name: &str) -> Result<(), FleetError> {
        let mut catalog = self.catalog.lock();
        let shard = catalog
            .get(name)
            .map(|rec| rec.shard)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        let resident = self.registries[shard].get(name);
        let Some(module) = resident else {
            // Cold: nothing is mapped — deregistering is a catalog edit.
            catalog.remove(name);
            let mut counters = self.counters.lock();
            counters[shard].cold = counters[shard].cold.saturating_sub(1);
            drop(counters);
            if let Some(tier) = self.cold_tier() {
                tier.evicted.lock().remove(name);
                tier.last_call.lock().remove(name);
                tier.module_calls.lock().remove(name);
            }
            return Ok(());
        };
        let bytes = module.mapped_bytes();
        drop(module);
        // Registry unload first: if it fails (exit fault, withheld
        // retire), the catalog record survives, so the module stays
        // visible to every fleet audit and the unload is retryable.
        self.registries[shard]
            .unload(name)
            .map_err(FleetError::Unload)?;
        catalog.remove(name);
        {
            let mut counters = self.counters.lock();
            counters[shard].resident -= 1;
            counters[shard].mapped_bytes -= bytes;
        }
        if let Some(tier) = self.cold_tier() {
            tier.remove_module(shard, name);
            tier.last_call.lock().remove(name);
            tier.module_calls.lock().remove(name);
        }
        Ok(())
    }

    /// Audit every installed module's fixed GOTs against its owning
    /// shard's symbol table (and verify each module's exports resolve
    /// there). Returns human-readable violations; empty = clean.
    pub fn verify_symbol_integrity(&self) -> Vec<String> {
        let catalog = self.catalog.lock();
        let cold_enabled = self.cold_tier().is_some();
        let mut violations = Vec::new();
        for (name, rec) in catalog.iter() {
            let kernel = self.sharded.shard(rec.shard);
            let Some(m) = self.registries[rec.shard].get(name) else {
                if cold_enabled {
                    // Cold by design: a record without a resident copy
                    // is the tier working, not a lost module.
                    continue;
                }
                violations.push(format!(
                    "{name}: catalog says shard {} but the registry lost it",
                    rec.shard
                ));
                continue;
            };
            violations.extend(crate::verify_fixed_gots(kernel, &m));
            violations.extend(crate::verify_plt_bindings(kernel, &m));
            for (export, va) in &m.exports {
                match kernel.symbols.lookup(export) {
                    Some(published) if published == *va => {}
                    Some(published) => violations.push(format!(
                        "{name}: export {export} published at {published:#x} \
                         but the module says {va:#x}"
                    )),
                    None => violations.push(format!(
                        "{name}: export {export} unreachable from shard {}'s \
                         symbol table",
                        rec.shard
                    )),
                }
            }
        }
        violations
    }

    /// Enable the cold-module tier: installs a per-shard call observer
    /// (last-call stamps + call-rate telemetry, alongside the
    /// scheduler's primary slot) and a per-shard demand loader (stale
    /// entry VAs into evicted modules fault the module back in from its
    /// catalog record). After this, [`Fleet::cold_tick`] evicts idle
    /// and over-cap residents, and [`Fleet::register`] +
    /// [`Fleet::ensure_resident`] give a 10^5–10^6-module catalog a
    /// bounded resident working set.
    pub fn enable_cold_tier(&self, cfg: ColdTierConfig) {
        let tier = Arc::new(ColdTier::new(cfg, self.registries.len()));
        // Seed the span index with what is already resident.
        for (shard, registry) in self.registries.iter().enumerate() {
            for name in registry.list() {
                if let Some(m) = registry.get(&name) {
                    tier.insert_module(shard, &m);
                }
            }
        }
        for (shard, kernel) in self.sharded.shards().iter().enumerate() {
            // Call observer: stamp last-call time and bump telemetry.
            // Leaf locks only — safe from inside any Vm::call.
            let t = tier.clone();
            kernel.add_call_observer(Arc::new(move |entry| {
                t.shard_calls[shard].fetch_add(1, Ordering::Relaxed);
                if let Some(name) = t.resolve(shard, entry) {
                    let now = t.now_ns.load(Ordering::Relaxed);
                    t.last_call.lock().insert(name.clone(), now);
                    *t.module_calls.lock().entry(name).or_insert(0) += 1;
                }
            }));
            // Demand loader: resolve the faulting VA against the
            // evicted-span map, rebuild the module from its catalog
            // record, and forward the VA to the rebuilt copy (part
            // images keep their internal layout, so the entry's offset
            // from its part base is invariant across the reload).
            let t = tier.clone();
            let catalog = Arc::clone(&self.catalog);
            let counters = Arc::clone(&self.counters);
            let registries = self.registries.clone();
            let sharded = Arc::clone(&self.sharded);
            kernel.set_demand_loader(Arc::new(move |va| {
                let (name, old) = {
                    let evicted = t.evicted.lock();
                    evicted.iter().find_map(|(n, r)| {
                        let hit = r.shard == shard
                            && ((va >= r.imm_base && va < r.imm_base + r.imm_span)
                                || (va >= r.mov_base && va < r.mov_base + r.mov_span));
                        hit.then(|| (n.clone(), *r))
                    })?
                };
                // try_lock: a migrate in flight holds the catalog
                // across an interpreted call; blocking here would
                // deadlock, so the fault stands and the caller retries.
                let (obj, opts) = {
                    let catalog = catalog.try_lock()?;
                    let rec = catalog.get(&name)?;
                    if rec.shard != shard {
                        // Retargeted while cold: its next home is
                        // another shard, whose window this VA is not in.
                        return None;
                    }
                    (rec.obj.clone(), rec.opts)
                };
                let module = materialize(
                    &sharded,
                    &registries,
                    &counters,
                    Some(&t),
                    shard,
                    &obj,
                    &opts,
                )
                .ok()?;
                let new_va = if va >= old.imm_base && va < old.imm_base + old.imm_span {
                    module.immovable.as_ref()?.base + (va - old.imm_base)
                } else {
                    module.movable_base.load(Ordering::Acquire) + (va - old.mov_base)
                };
                t.demand_redirects.fetch_add(1, Ordering::Relaxed);
                Some(new_va)
            }));
        }
        *self.cold.lock() = Some(tier);
    }

    /// Whether [`Fleet::enable_cold_tier`] has run.
    pub fn cold_tier_enabled(&self) -> bool {
        self.cold.lock().is_some()
    }

    /// Make `name` resident (fault it in from its catalog record if it
    /// is cold). Returns `(shard, module)`. Cheap when already
    /// resident. Works with or without the cold tier enabled — this is
    /// also how a "lost" module (catalog record without a resident
    /// copy) self-heals.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownModule`] / [`FleetError::Load`].
    pub fn ensure_resident(&self, name: &str) -> Result<(usize, Arc<LoadedModule>), FleetError> {
        let (shard, obj, opts) = {
            let catalog = self.catalog.lock();
            let rec = catalog
                .get(name)
                .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
            if let Some(m) = self.registries[rec.shard].get(name) {
                return Ok((rec.shard, m));
            }
            (rec.shard, rec.obj.clone(), rec.opts)
        };
        // The catalog lock is dropped before loading: init runs
        // interpreted code, which must be able to demand-fault.
        let tier = self.cold_tier();
        let module = materialize(
            &self.sharded,
            &self.registries,
            &self.counters,
            tier.as_deref(),
            shard,
            &obj,
            &opts,
        )?;
        Ok((shard, module))
    }

    /// Evict `name` to the cold tier: graceful unload (exit runs, both
    /// parts retire as one batched shootdown) with the catalog record
    /// kept as the fault-in recipe. Idempotent for already-cold
    /// modules. On an unload failure (trapping exit) the module stays
    /// resident and serving.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownModule`] / [`FleetError::Unload`].
    pub fn evict(&self, name: &str) -> Result<(), FleetError> {
        let catalog = self.catalog.lock();
        let rec = catalog
            .get(name)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        let shard = rec.shard;
        let Some(m) = self.registries[shard].get(name) else {
            return Ok(());
        };
        let (imm_base, imm_span) = m
            .immovable
            .as_ref()
            .map(|i| (i.base, (i.total_pages * PAGE_SIZE) as u64))
            .unwrap_or((0, 0));
        let mov_base = m.movable_base.load(Ordering::Acquire);
        let mov_span = (m.movable.total_pages * PAGE_SIZE) as u64;
        let bytes = m.mapped_bytes();
        let key = m.name.clone();
        drop(m);
        self.registries[shard]
            .unload(name)
            .map_err(FleetError::Unload)?;
        {
            let mut counters = self.counters.lock();
            counters[shard].resident -= 1;
            counters[shard].cold += 1;
            counters[shard].mapped_bytes -= bytes;
        }
        if let Some(tier) = self.cold_tier() {
            tier.remove_module(shard, name);
            tier.evicted.lock().insert(
                key,
                EvictedModule {
                    shard,
                    imm_base,
                    imm_span,
                    mov_base,
                    mov_span,
                },
            );
            tier.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.sharded.shard(shard).printk.log_limited(
            "fleet-evict",
            format!("fleet: {name} evicted cold from shard {shard}"),
        );
        Ok(())
    }

    /// Advance the cold tier's clock to `now_ns` (whatever clock the
    /// caller drives — the stepped testkit clock in tests) and evict
    /// idle residents plus least-recently-called residents beyond
    /// `max_resident`. Eviction order is `(last_call, name)` —
    /// deterministic for a deterministic call history. Half-migrated
    /// orphans are skipped (the repair queue owns them); a module whose
    /// exit traps stays resident. Returns the evicted names. No-op
    /// until [`Fleet::enable_cold_tier`].
    pub fn cold_tick(&self, now_ns: u64) -> Vec<String> {
        let Some(tier) = self.cold_tier() else {
            return Vec::new();
        };
        tier.now_ns.store(now_ns, Ordering::Relaxed);
        let mut candidates: Vec<(u64, String)> = Vec::new();
        {
            let catalog = self.catalog.lock();
            let last = tier.last_call.lock();
            for (shard, registry) in self.registries.iter().enumerate() {
                for name in registry.list() {
                    if catalog.get(name.as_str()).is_none_or(|r| r.shard != shard) {
                        continue;
                    }
                    candidates.push((last.get(name.as_str()).copied().unwrap_or(0), name));
                }
            }
        }
        candidates.sort();
        let mut remaining = candidates.len();
        let mut evicted = Vec::new();
        for (stamp, name) in candidates {
            let idle = stamp.saturating_add(tier.cfg.idle_ns) <= now_ns;
            let over_cap = remaining > tier.cfg.max_resident;
            if !idle && !over_cap {
                break;
            }
            if self.evict(&name).is_ok() {
                remaining -= 1;
                evicted.push(name);
            }
        }
        evicted
    }

    /// Cold-tier counters plus a current fleet-wide occupancy snapshot
    /// (`resident` / `cold` are live whether or not the tier is on).
    pub fn cold_stats(&self) -> ColdTierStats {
        let (resident, cold) = {
            let counters = self.counters.lock();
            counters
                .iter()
                .fold((0, 0), |(r, k), c| (r + c.resident, k + c.cold))
        };
        match self.cold_tier() {
            Some(t) => ColdTierStats {
                evictions: t.evictions.load(Ordering::Relaxed),
                fault_ins: t.fault_ins.load(Ordering::Relaxed),
                demand_redirects: t.demand_redirects.load(Ordering::Relaxed),
                resident,
                cold,
            },
            None => ColdTierStats {
                resident,
                cold,
                ..ColdTierStats::default()
            },
        }
    }

    /// Per-shard outermost-call counts since the last take — the
    /// autoscaler's busy signal. Zeros when the cold tier is off.
    pub fn take_shard_calls(&self) -> Vec<u64> {
        match self.cold_tier() {
            Some(t) => t
                .shard_calls
                .iter()
                .map(|c| c.swap(0, Ordering::Relaxed))
                .collect(),
            None => vec![0; self.registries.len()],
        }
    }

    /// Per-module call counts since the last take, sorted by name — how
    /// the autoscaler picks which residents to move off a hot shard.
    pub fn take_module_calls(&self) -> Vec<(String, u64)> {
        let Some(t) = self.cold_tier() else {
            return Vec::new();
        };
        let mut counts: Vec<(String, u64)> = t
            .module_calls
            .lock()
            .drain()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        counts.sort();
        counts
    }

    /// An evicted module's former `(base, span_bytes)` spans — what the
    /// layout oracle probes to prove the eviction really unmapped, and
    /// `None` once the module is resident (or never evicted).
    pub fn evicted_spans(&self, name: &str) -> Option<Vec<(u64, u64)>> {
        let t = self.cold_tier()?;
        let evicted = t.evicted.lock();
        evicted.get(name).map(|r| {
            let mut v = vec![(r.mov_base, r.mov_span)];
            if r.imm_span > 0 {
                v.push((r.imm_base, r.imm_span));
            }
            v
        })
    }
}

/// Load `obj` into `shard` and do the fault-in bookkeeping (counters,
/// span index, evicted-map cleanup). Shared by
/// [`Fleet::ensure_resident`] and the per-shard demand loaders — the
/// latter run inside `Vm::call` with no `&Fleet` in reach, hence the
/// exploded borrows.
fn materialize(
    sharded: &ShardedKernel,
    registries: &[Arc<ModuleRegistry>],
    counters: &Mutex<Vec<ShardCounter>>,
    tier: Option<&ColdTier>,
    shard: usize,
    obj: &ObjectFile,
    opts: &TransformOptions,
) -> Result<Arc<LoadedModule>, FleetError> {
    let module = match registries[shard].load(obj, opts) {
        Ok(m) => m,
        Err(e) => {
            // Lost a fault-in race: another caller materialized it
            // between our catalog read and the load.
            if let Some(m) = registries[shard].get(&obj.name) {
                return Ok(m);
            }
            return Err(FleetError::Load(e));
        }
    };
    {
        let mut c = counters.lock();
        c[shard].cold = c[shard].cold.saturating_sub(1);
        c[shard].resident += 1;
        c[shard].mapped_bytes += module.mapped_bytes();
    }
    if let Some(tier) = tier {
        tier.evicted.lock().remove(obj.name.as_str());
        tier.insert_module(shard, &module);
        tier.fault_ins.fetch_add(1, Ordering::Relaxed);
    }
    sharded.shard(shard).printk.log_limited(
        "fleet-faultin",
        format!("fleet: {} faulted in on shard {shard}", obj.name),
    );
    Ok(module)
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.registries.len())
            .field("placement", &self.placement.name())
            .field("modules", &self.modules())
            .finish()
    }
}

/// Copy every writable (`PteFlags::DATA`) page of both parts from the
/// source module's frames to the destination's — the state-transfer
/// half of migration.
fn copy_writable_state(
    src_kernel: &Arc<Kernel>,
    src: &LoadedModule,
    dst_kernel: &Arc<Kernel>,
    dst: &LoadedModule,
) {
    let copy_part = |src_img: &crate::PartImage, dst_img: &crate::PartImage| {
        let mut buf = [0u8; PAGE_SIZE];
        for g in &src_img.groups {
            if g.flags != PteFlags::DATA {
                continue;
            }
            for p in g.page_start..g.page_start + g.pages {
                src_kernel.phys.read(src_img.frames[p], 0, &mut buf);
                dst_kernel.phys.write(dst_img.frames[p], 0, &buf);
            }
        }
    };
    copy_part(&src.movable, &dst.movable);
    if let (Some(s), Some(d)) = (&src.immovable, &dst.immovable) {
        copy_part(s, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::{AluOp, Insn, Mem, Reg};
    use adelie_kernel::{layout, FleetConfig};
    use adelie_plugin::{transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec};
    use adelie_vmem::Access;

    /// A stateful driver: `N_bump()` increments a `.bss` counter and
    /// returns it; `N_ops` is a pointer table (adjust slots).
    fn stateful_spec(name: &str) -> ModuleSpec {
        let mut spec = ModuleSpec::new(name);
        spec.funcs.push(FuncSpec::exported(
            &format!("{name}_bump"),
            vec![
                MOp::LoadLocalSym(Reg::Rcx, format!("{name}_counter")),
                MOp::Insn(Insn::MovLoad {
                    dst: Reg::Rax,
                    src: Mem::base(Reg::Rcx),
                }),
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    imm: 1,
                }),
                MOp::Insn(Insn::MovStore {
                    dst: Mem::base(Reg::Rcx),
                    src: Reg::Rax,
                }),
                MOp::Ret,
            ],
        ));
        spec.data.push(DataSpec {
            name: format!("{name}_counter"),
            readonly: false,
            init: DataInit::Zero(8),
        });
        spec.data.push(DataSpec {
            name: format!("{name}_ops"),
            readonly: false,
            init: DataInit::PtrTable(vec![format!("{name}_bump")]),
        });
        spec
    }

    fn fleet(shards: usize, placement: Box<dyn ShardPlacement>) -> Fleet {
        Fleet::new(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(shards, 11)),
            placement,
        )
    }

    #[test]
    fn round_robin_spreads_and_windows_confine() {
        let fleet = fleet(3, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..6 {
            let obj = transform(&stateful_spec(&format!("m{i}")), &opts).unwrap();
            let (shard, module) = fleet.install(&obj, &opts).unwrap();
            assert_eq!(shard, i % 3, "round-robin placement");
            let (lo, hi) = fleet.sharded().window(shard);
            let base = module.movable_base.load(Ordering::Acquire);
            assert!(base >= lo && base < hi, "movable base outside window");
            if let Some(imm) = &module.immovable {
                assert!(imm.base >= lo && imm.base < hi, "immovable outside window");
            }
        }
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    #[test]
    fn load_weighted_prefers_the_lightest_shard() {
        let fleet = fleet(3, Box::new(LoadWeighted::new()));
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..6 {
            let obj = transform(&stateful_spec(&format!("w{i}")), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let loads = fleet.loads();
        let max = loads.iter().map(|l| l.modules).max().unwrap();
        let min = loads.iter().map(|l| l.modules).min().unwrap();
        assert!(max - min <= 1, "identical modules must balance: {loads:?}");
    }

    #[test]
    fn pinned_placement_honors_assignments() {
        let mut pins = HashMap::new();
        pins.insert("p0".to_string(), 2);
        let fleet = fleet(3, Box::new(Pinned::new(pins, 1)));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("p0"), &opts).unwrap();
        assert_eq!(fleet.install(&obj, &opts).unwrap().0, 2);
        let obj = transform(&stateful_spec("p1"), &opts).unwrap();
        assert_eq!(fleet.install(&obj, &opts).unwrap().0, 1, "fallback shard");
    }

    /// Regression: a duplicate install used to silently replace the
    /// catalog record, orphaning the old copy in its shard; and an
    /// out-of-range pin used to be silently clamped onto the last
    /// shard. Both are now hard errors, leaving the fleet untouched.
    #[test]
    fn install_rejects_duplicates_and_out_of_range_pins() {
        let mut pins = HashMap::new();
        pins.insert("lost".to_string(), 7);
        let fleet = fleet(3, Box::new(Pinned::new(pins, 0)));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("dup"), &opts).unwrap();
        let (shard, _) = fleet.install(&obj, &opts).unwrap();
        match fleet.install(&obj, &opts) {
            Err(FleetError::DuplicateModule(name)) => assert_eq!(name, "dup"),
            other => panic!("duplicate install must be rejected, got {other:?}"),
        }
        // Exactly one copy exists, where it was first placed.
        assert_eq!(fleet.shard_of("dup"), Some(shard));
        assert_eq!(fleet.live_spans().len(), 2, "one movable + one immovable");
        let obj = transform(&stateful_spec("lost"), &opts).unwrap();
        match fleet.install(&obj, &opts) {
            Err(FleetError::UnknownShard(7)) => {}
            other => panic!("out-of-range pin must be rejected, got {other:?}"),
        }
        assert_eq!(fleet.shard_of("lost"), None);
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    #[test]
    fn migration_carries_state_and_retires_the_source() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("mig"), &opts).unwrap();
        let (src, module) = fleet.install(&obj, &opts).unwrap();
        let entry = module.export("mig_bump").unwrap();
        let src_kernel = fleet.kernel(src).clone();
        let mut vm = src_kernel.vm();
        for expect in 1..=5u64 {
            assert_eq!(vm.call(entry, &[]).unwrap(), expect);
        }
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(vm);
        drop(module);

        let dst = 1 - src;
        let moved = fleet.migrate("mig", dst).unwrap();
        assert_eq!(fleet.shard_of("mig"), Some(dst));
        // The counter survived the move: the next bump continues at 6.
        let dst_kernel = fleet.kernel(dst).clone();
        let mut vm = dst_kernel.vm();
        let entry = moved.export("mig_bump").unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 6, "state must travel");
        // Destination layout sits inside the destination window; the
        // source copy is gone (both parts) and its exports unpublished.
        let (lo, hi) = fleet.sharded().window(dst);
        let new_base = moved.movable_base.load(Ordering::Acquire);
        assert!(new_base >= lo && new_base < hi);
        assert!(src_kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(src_kernel.space.translate(old_imm, Access::Read).is_err());
        assert!(src_kernel.symbols.lookup("mig_bump").is_none());
        assert!(dst_kernel.symbols.lookup("mig_bump").is_some());
        // No dangling GOT entries anywhere.
        assert_eq!(fleet.verify_symbol_integrity(), Vec::<String>::new());
        // Migrating to the same shard is a no-op.
        let again = fleet.migrate("mig", dst).unwrap();
        assert_eq!(
            again.movable_base.load(Ordering::Acquire),
            moved.movable_base.load(Ordering::Acquire)
        );
        // And the module can still be re-randomized in its new home.
        crate::rerandomize_module(&dst_kernel, fleet.registry(dst), &moved).unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 7);
    }

    /// Regression: a failed registry unload used to be preceded by the
    /// catalog removal (and the registry removal by the exit call), so
    /// the still-mapped module vanished from every fleet audit and the
    /// unload could never be retried.
    #[test]
    fn failed_unload_keeps_the_module_visible_and_retryable() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("stuck");
        // An exit entry that traps: unload must fail closed.
        spec.funcs
            .push(FuncSpec::exported("stuck_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("stuck_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (shard, _) = fleet.install(&obj, &opts).unwrap();
        match fleet.unload("stuck") {
            Err(FleetError::Unload(e)) => assert!(e.contains("exit failed"), "{e}"),
            other => panic!("trapping exit must fail the unload, got {other:?}"),
        }
        // Still cataloged, still in the registry, still audited, still
        // serving — and the unload is retryable (same failure again).
        assert_eq!(fleet.shard_of("stuck"), Some(shard));
        assert!(fleet.registry(shard).get("stuck").is_some());
        assert_eq!(fleet.live_spans().len(), 2);
        assert!(fleet.verify_symbol_integrity().is_empty());
        let kernel = fleet.kernel(shard).clone();
        let mut vm = kernel.vm();
        let entry = fleet
            .registry(shard)
            .get("stuck")
            .unwrap()
            .export("stuck_bump")
            .unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 1);
        assert!(matches!(fleet.unload("stuck"), Err(FleetError::Unload(_))));
    }

    /// The half-migrated orphan (migrate committed the destination,
    /// source unload failed) lands on the repair queue, backpressures
    /// admission while queued, survives graceful retries against a
    /// trapping exit, and is finally force-unloaded — source spans
    /// vacated, queue drained.
    #[test]
    fn migrate_orphan_is_repaired_with_backoff_and_force() {
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(RoundRobin::new()),
            AdmissionConfig {
                max_pending_repairs: 1,
                retry_after_ns: 1_000,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("orph");
        spec.funcs
            .push(FuncSpec::exported("orph_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("orph_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (src, module) = fleet.install(&obj, &opts).unwrap();
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(module);
        let dst = 1 - src;
        match fleet.migrate("orph", dst) {
            Err(FleetError::Unload(e)) => assert!(e.contains("exit failed"), "{e}"),
            other => panic!("trapping source exit must orphan, got {other:?}"),
        }
        // Catalog points at the live destination copy; the orphan is
        // queued and the queue (at its cap of 1) pushes back on new
        // installs with RetryAfter.
        assert_eq!(fleet.shard_of("orph"), Some(dst));
        assert_eq!(fleet.pending_repairs(), 1);
        let other_obj = transform(&stateful_spec("late"), &opts).unwrap();
        match fleet.install(&other_obj, &opts) {
            Err(FleetError::RetryAfter { after_ns }) => assert_eq!(after_ns, 1_000),
            other => panic!("saturated repair queue must backpressure, got {other:?}"),
        }
        // Graceful repair attempts keep hitting the trapping exit; each
        // failure re-queues with a bigger backoff, and a not-yet-due
        // task is left alone.
        let mut now = 0u64;
        for _ in 0..REPAIR_FORCE_AFTER {
            assert_eq!(fleet.run_repairs(now), 0);
            assert_eq!(fleet.pending_repairs(), 1);
            assert_eq!(fleet.run_repairs(now), 0, "backed off, not due yet");
            now += 1_000 * (1 << 17); // beyond any backoff in this test
        }
        // The next due attempt is forced (exit skipped): the orphan's
        // mappings vanish and the queue drains.
        assert_eq!(fleet.run_repairs(now), 1);
        assert_eq!(fleet.pending_repairs(), 0);
        let src_kernel = fleet.kernel(src);
        assert!(src_kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(src_kernel.space.translate(old_imm, Access::Read).is_err());
        assert!(fleet.registry(src).get("orph").is_none());
        // Admission reopens once the queue drains.
        fleet.install(&other_obj, &opts).unwrap();
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// Regression: crash-recovering the shard that holds a
    /// half-migrated orphan used to tear down only the modules the
    /// catalog listed for that shard — the orphan's record points at
    /// the migration destination, so its stale copy (and executable
    /// mappings) survived the rebuild while its repair task was
    /// dropped, leaking it permanently. Recovery must sweep what the
    /// registry actually holds and drop the task only once the orphan
    /// is confirmed gone.
    #[test]
    fn recover_shard_sweeps_migrate_orphans() {
        let mut pins = HashMap::new();
        pins.insert("orph".to_string(), 0);
        pins.insert("mate".to_string(), 0);
        let fleet = fleet(2, Box::new(Pinned::new(pins, 0)));
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("orph");
        spec.funcs
            .push(FuncSpec::exported("orph_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("orph_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (src, module) = fleet.install(&obj, &opts).unwrap();
        assert_eq!(src, 0);
        let mate = transform(&stateful_spec("mate"), &opts).unwrap();
        fleet.install(&mate, &opts).unwrap();
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(module);
        assert!(matches!(
            fleet.migrate("orph", 1),
            Err(FleetError::Unload(_))
        ));
        assert_eq!(fleet.pending_repairs(), 1);

        let report = fleet.recover_shard(0).unwrap();
        // Only the shard's own tenant is rebuilt; the orphan is swept,
        // not reloaded (its live copy serves from shard 1).
        assert_eq!(report.rebuilt, vec!["mate".to_string()]);
        assert!(report.failed.is_empty());
        assert!(
            report.vacated.iter().any(|&(b, _)| b == old_mov)
                && report.vacated.iter().any(|&(b, _)| b == old_imm),
            "the orphan's spans must be vacated: {:?}",
            report.vacated
        );
        assert_eq!(report.vacated.len(), 4, "orphan + mate, both parts");
        let src_kernel = fleet.kernel(0);
        assert!(src_kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(src_kernel.space.translate(old_imm, Access::Read).is_err());
        assert!(fleet.registry(0).get("orph").is_none());
        assert_eq!(
            fleet.pending_repairs(),
            0,
            "the swept orphan's repair task must be dropped"
        );
        // The destination copy is untouched and still serving.
        assert_eq!(fleet.shard_of("orph"), Some(1));
        let dst_kernel = fleet.kernel(1).clone();
        let mut vm = dst_kernel.vm();
        let entry = fleet
            .registry(1)
            .get("orph")
            .unwrap()
            .export("orph_bump")
            .unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 1);
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// Crash recovery rebuilds a shard's modules from the install
    /// catalog: old spans are vacated, fresh copies serve, and the
    /// catalog keeps its tenancy.
    #[test]
    fn recover_shard_rebuilds_from_the_catalog() {
        let mut pins = HashMap::new();
        pins.insert("ra".to_string(), 0);
        pins.insert("rb".to_string(), 0);
        pins.insert("rc".to_string(), 1);
        let fleet = fleet(2, Box::new(Pinned::new(pins, 0)));
        let opts = TransformOptions::rerandomizable(true);
        for name in ["ra", "rb", "rc"] {
            let obj = transform(&stateful_spec(name), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let kernel = fleet.kernel(0).clone();
        let bump = fleet
            .registry(0)
            .get("ra")
            .unwrap()
            .export("ra_bump")
            .unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(bump, &[]).unwrap(), 1);
        drop(vm);
        let spans_before = fleet.live_spans();

        let report = fleet.recover_shard(0).unwrap();
        assert_eq!(report.rebuilt, vec!["ra".to_string(), "rb".to_string()]);
        assert!(report.failed.is_empty());
        // One movable + one immovable span per rebuilt module vacated,
        // and none of them still translate.
        assert_eq!(report.vacated.len(), 4);
        for &(base, _) in &report.vacated {
            assert!(
                kernel.space.translate(base, Access::Read).is_err(),
                "stale mapping survived rebuild at {base:#x}"
            );
        }
        // Tenancy unchanged; shard 1 untouched; fresh copies serve
        // (crash recovery rebuilds from the recipe — state restarts).
        assert_eq!(fleet.shard_of("ra"), Some(0));
        assert_eq!(fleet.shard_of("rc"), Some(1));
        let spans_after = fleet.live_spans();
        assert_eq!(spans_after.len(), spans_before.len());
        let bump = fleet
            .registry(0)
            .get("ra")
            .unwrap()
            .export("ra_bump")
            .unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(bump, &[]).unwrap(), 1, "rebuilt state restarts");
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
        // Recovering an unknown shard is a typed error.
        assert!(matches!(
            fleet.recover_shard(9),
            Err(FleetError::UnknownShard(9))
        ));
    }

    /// Admission control: a shard at its module cap refuses installs
    /// and inbound migrations with a typed `Overloaded`.
    #[test]
    fn admission_caps_shard_occupancy() {
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(RoundRobin::new()),
            AdmissionConfig {
                max_modules_per_shard: 1,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        for name in ["a0", "a1"] {
            let obj = transform(&stateful_spec(name), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let obj = transform(&stateful_spec("a2"), &opts).unwrap();
        match fleet.install(&obj, &opts) {
            Err(FleetError::Overloaded {
                shard,
                modules: 1,
                limit: 1,
            }) => assert_eq!(shard, 0, "round-robin wraps to the full shard"),
            other => panic!("cap must refuse the install, got {other:?}"),
        }
        let dst = fleet.shard_of("a1").map(|s| 1 - s).unwrap();
        match fleet.migrate("a1", dst) {
            Err(FleetError::Overloaded { shard, .. }) => assert_eq!(shard, dst),
            other => panic!("cap must refuse the migration, got {other:?}"),
        }
        assert!(fleet.verify_layout().is_empty());
    }

    /// Regression (bug): admission used to charge occupancy from
    /// catalog records only, so a half-migrated orphan — resident in
    /// its source shard while its record points at the destination —
    /// was invisible to the cap, and a shard draining orphans could be
    /// over-admitted past `max_modules_per_shard`. Occupancy must be
    /// the union of catalog records and registry residents (the same
    /// union `recover_shard` tears down).
    #[test]
    fn occupancy_counts_migrate_orphans_against_the_source_shard() {
        let mut pins = HashMap::new();
        pins.insert("orph".to_string(), 0);
        pins.insert("late".to_string(), 0);
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(Pinned::new(pins, 1)),
            AdmissionConfig {
                max_modules_per_shard: 1,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("orph");
        spec.funcs
            .push(FuncSpec::exported("orph_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("orph_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (src, _) = fleet.install(&obj, &opts).unwrap();
        assert_eq!(src, 0);
        assert!(matches!(
            fleet.migrate("orph", 1),
            Err(FleetError::Unload(_))
        ));
        // The orphan's record points at shard 1, but its stale copy
        // still occupies shard 0's registry slot.
        assert_eq!(fleet.shard_of("orph"), Some(1));
        assert!(fleet.registry(0).get("orph").is_some());
        let late = transform(&stateful_spec("late"), &opts).unwrap();
        match fleet.install(&late, &opts) {
            Err(FleetError::Overloaded {
                shard: 0,
                modules: 1,
                limit: 1,
            }) => {}
            other => panic!("orphan must count against shard 0's cap, got {other:?}"),
        }
        // Once the repair queue retires the orphan, the slot reopens.
        let mut now = 0u64;
        while fleet.pending_repairs() > 0 {
            fleet.run_repairs(now);
            now += MAX_REPAIR_BACKOFF_NS;
        }
        assert_eq!(fleet.install(&late, &opts).unwrap().0, 0);
        assert!(fleet.verify_layout().is_empty());
    }

    /// Regression (bug): unclamped, the repair backoff stretched to
    /// `base << 16` (~65536 s at the default base), parking an orphan
    /// past every watchdog horizon. Mirrors
    /// `degradation_stretch_is_bounded`: the schedule must be monotone,
    /// bounded by `MAX_REPAIR_BACKOFF_NS`, and flag exactly the
    /// clamped attempts.
    #[test]
    fn repair_backoff_is_bounded() {
        let base = AdmissionConfig::default().retry_after_ns;
        let mut prev = 0u64;
        for attempts in 0..48u32 {
            let (backoff, clamped) = repair_backoff(base, attempts);
            assert!(backoff <= MAX_REPAIR_BACKOFF_NS, "attempt {attempts}");
            assert!(backoff >= prev, "monotone schedule");
            let raw = base.saturating_mul(1u64 << attempts.min(16));
            assert_eq!(clamped, raw > MAX_REPAIR_BACKOFF_NS);
            prev = backoff;
        }
        assert_eq!(repair_backoff(base, 9), (base << 9, false));
        assert_eq!(repair_backoff(base, 10), (MAX_REPAIR_BACKOFF_NS, true));
        assert_eq!(repair_backoff(base, 40), (MAX_REPAIR_BACKOFF_NS, true));
    }

    /// The clamp is observable: an orphan whose retries back off at the
    /// ceiling shows up in `repair_stats().backoff_clamps`.
    #[test]
    fn backoff_clamp_surfaces_in_repair_stats() {
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(RoundRobin::new()),
            AdmissionConfig {
                retry_after_ns: MAX_REPAIR_BACKOFF_NS,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("orph");
        spec.funcs
            .push(FuncSpec::exported("orph_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("orph_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (src, _) = fleet.install(&obj, &opts).unwrap();
        assert!(matches!(
            fleet.migrate("orph", 1 - src),
            Err(FleetError::Unload(_))
        ));
        assert_eq!(fleet.repair_stats().backoff_clamps, 0);
        // Graceful attempt against the trapping exit fails; with the
        // base already at the ceiling, the doubled backoff clamps.
        assert_eq!(fleet.run_repairs(0), 0);
        let stats = fleet.repair_stats();
        assert_eq!(stats.pending, 1);
        assert_eq!(stats.backoff_clamps, 1);
    }

    /// Regression (bug): `RetryAfter` hints were static — a storm of
    /// refused callers all retried at the same fixed cadence no matter
    /// how deep the backlog. The hint must grow with the repair-queue
    /// depth.
    #[test]
    fn retry_after_hint_grows_with_queue_depth() {
        let mut pins = HashMap::new();
        pins.insert("o1".to_string(), 0);
        pins.insert("o2".to_string(), 0);
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(Pinned::new(pins, 0)),
            AdmissionConfig {
                max_pending_repairs: 1,
                retry_after_ns: 1_000,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        let orphan = |name: &str| {
            let mut spec = stateful_spec(name);
            spec.funcs.push(FuncSpec::exported(
                &format!("{name}_exit"),
                vec![MOp::Insn(Insn::Ud2)],
            ));
            spec.exit = Some(format!("{name}_exit"));
            transform(&spec, &opts).unwrap()
        };
        fleet.install(&orphan("o1"), &opts).unwrap();
        fleet.install(&orphan("o2"), &opts).unwrap();
        assert!(matches!(fleet.migrate("o1", 1), Err(FleetError::Unload(_))));
        let late = transform(&stateful_spec("late"), &opts).unwrap();
        let depth1 = match fleet.install(&late, &opts) {
            Err(FleetError::RetryAfter { after_ns }) => after_ns,
            other => panic!("saturated queue must push back, got {other:?}"),
        };
        assert_eq!(depth1, 1_000, "depth 1 × base");
        // Deepen the backlog: the second orphan bypasses admit only
        // because migrate is refused — force the queue deeper by
        // repairing nothing and re-checking after a second orphan.
        // (migrate's own admit() is the gate, so drain capacity first.)
        let report_depth = fleet.pending_repairs();
        assert_eq!(report_depth, 1);
        // Raise the cap so a second orphan can form, then re-check.
        let fleet2 = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(Pinned::new(
                HashMap::from([("o1".to_string(), 0), ("o2".to_string(), 0)]),
                0,
            )),
            AdmissionConfig {
                max_pending_repairs: 2,
                retry_after_ns: 1_000,
                ..AdmissionConfig::default()
            },
        );
        fleet2.install(&orphan("o1"), &opts).unwrap();
        fleet2.install(&orphan("o2"), &opts).unwrap();
        assert!(matches!(
            fleet2.migrate("o1", 1),
            Err(FleetError::Unload(_))
        ));
        assert!(matches!(
            fleet2.migrate("o2", 1),
            Err(FleetError::Unload(_))
        ));
        assert_eq!(fleet2.pending_repairs(), 2);
        match fleet2.install(&late, &opts) {
            Err(FleetError::RetryAfter { after_ns }) => {
                assert_eq!(after_ns, 2_000, "depth 2 × base: hint must grow")
            }
            other => panic!("saturated queue must push back, got {other:?}"),
        }
        // And the hint never exceeds the backoff ceiling.
        let fleet3 = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(Pinned::new(HashMap::from([("o1".to_string(), 0)]), 0)),
            AdmissionConfig {
                max_pending_repairs: 1,
                retry_after_ns: MAX_REPAIR_BACKOFF_NS,
                ..AdmissionConfig::default()
            },
        );
        fleet3.install(&orphan("o1"), &opts).unwrap();
        assert!(matches!(
            fleet3.migrate("o1", 1),
            Err(FleetError::Unload(_))
        ));
        match fleet3.install(&late, &opts) {
            Err(FleetError::RetryAfter { after_ns }) => {
                assert_eq!(after_ns, MAX_REPAIR_BACKOFF_NS)
            }
            other => panic!("got {other:?}"),
        }
    }

    /// The cold tier end to end: an idle module is evicted (spans
    /// unmapped, catalog record kept), a stale entry VA demand-faults
    /// it back in through the kernel's demand loader, and the redirect
    /// lands on the rebuilt copy.
    #[test]
    fn cold_tier_evicts_idle_and_demand_faults_back_in() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        fleet.enable_cold_tier(ColdTierConfig {
            idle_ns: 1_000,
            max_resident: 64,
        });
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("cz"), &opts).unwrap();
        let (shard, module) = fleet.install(&obj, &opts).unwrap();
        let entry = module.export("cz_bump").unwrap();
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(module);
        let kernel = fleet.kernel(shard).clone();
        {
            let mut vm = kernel.vm();
            assert_eq!(vm.call(entry, &[]).unwrap(), 1);
        }
        // Not yet idle: nothing to evict.
        assert!(fleet.cold_tick(500).is_empty());
        assert_eq!(fleet.cold_stats().resident, 1);
        // Idle past the window: evicted, spans unmapped, record kept.
        assert_eq!(fleet.cold_tick(2_000), vec!["cz".to_string()]);
        let stats = fleet.cold_stats();
        assert_eq!((stats.resident, stats.cold, stats.evictions), (0, 1, 1));
        assert!(kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(kernel.space.translate(old_imm, Access::Read).is_err());
        assert_eq!(fleet.shard_of("cz"), Some(shard), "recipe survives");
        let spans = fleet.evicted_spans("cz").unwrap();
        assert!(spans.iter().any(|&(b, _)| b == old_mov));
        assert!(spans.iter().any(|&(b, _)| b == old_imm));
        assert!(fleet.verify_symbol_integrity().is_empty());
        // First call against the stale entry VA demand-faults the
        // module back in; state restarts (rebuild from the recipe).
        {
            let mut vm = kernel.vm();
            assert_eq!(vm.call(entry, &[]).unwrap(), 1, "faulted-in restart");
        }
        let stats = fleet.cold_stats();
        assert_eq!((stats.resident, stats.cold), (1, 0));
        assert_eq!(stats.fault_ins, 1);
        assert_eq!(stats.demand_redirects, 1);
        assert!(fleet.evicted_spans("cz").is_none());
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// `register` keeps a module cold (catalog-only) until first use;
    /// `ensure_resident` materializes it; unloading a cold module is a
    /// catalog edit.
    #[test]
    fn register_keeps_modules_cold_until_first_use() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        fleet.enable_cold_tier(ColdTierConfig::default());
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..10 {
            let obj = transform(&stateful_spec(&format!("r{i}")), &opts).unwrap();
            fleet.register(&obj, &opts).unwrap();
        }
        let stats = fleet.cold_stats();
        assert_eq!((stats.resident, stats.cold), (0, 10));
        assert!(fleet.live_spans().is_empty(), "nothing mapped yet");
        // Duplicate registration is refused like a duplicate install.
        let dup = transform(&stateful_spec("r3"), &opts).unwrap();
        assert!(matches!(
            fleet.register(&dup, &opts),
            Err(FleetError::DuplicateModule(_))
        ));
        let (shard, module) = fleet.ensure_resident("r3").unwrap();
        let entry = module.export("r3_bump").unwrap();
        let mut vm = fleet.kernel(shard).vm();
        assert_eq!(vm.call(entry, &[]).unwrap(), 1);
        drop(vm);
        let stats = fleet.cold_stats();
        assert_eq!((stats.resident, stats.cold), (1, 9));
        // Repeated ensure_resident is cheap and idempotent.
        assert_eq!(fleet.ensure_resident("r3").unwrap().0, shard);
        assert_eq!(fleet.cold_stats().fault_ins, 1);
        // Cold unload: catalog-only.
        fleet.unload("r5").unwrap();
        let stats = fleet.cold_stats();
        assert_eq!((stats.resident, stats.cold), (1, 8));
        assert_eq!(fleet.shard_of("r5"), None);
        assert!(matches!(
            fleet.ensure_resident("r5"),
            Err(FleetError::UnknownModule(_))
        ));
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// The resident cap: `cold_tick` evicts least-recently-called
    /// residents beyond `max_resident`, deterministically.
    #[test]
    fn cold_tick_enforces_the_resident_cap() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        fleet.enable_cold_tier(ColdTierConfig {
            idle_ns: u64::MAX,
            max_resident: 2,
        });
        let opts = TransformOptions::rerandomizable(true);
        for name in ["ca", "cb", "cc", "cd"] {
            let obj = transform(&stateful_spec(name), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        // All four share last_call = 0, so LRU order falls back to
        // names: the two lexicographically smallest are evicted.
        let evicted = fleet.cold_tick(1);
        assert_eq!(evicted, vec!["ca".to_string(), "cb".to_string()]);
        let stats = fleet.cold_stats();
        assert_eq!((stats.resident, stats.cold), (2, 2));
        // Fault one back in: over cap again, next tick trims again.
        fleet.ensure_resident("ca").unwrap();
        assert_eq!(fleet.cold_stats().resident, 3);
        assert_eq!(fleet.cold_tick(2).len(), 1);
        assert_eq!(fleet.cold_stats().resident, 2);
        assert!(fleet.verify_layout().is_empty());
    }

    /// `retarget` moves a cold module's tenancy (catalog-only) and
    /// refuses resident modules; the next fault-in lands in the new
    /// shard's window.
    #[test]
    fn retarget_moves_cold_tenancy_and_refuses_residents() {
        let fleet = fleet(2, Box::new(Pinned::new(HashMap::new(), 0)));
        fleet.enable_cold_tier(ColdTierConfig::default());
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("rt"), &opts).unwrap();
        assert_eq!(fleet.register(&obj, &opts).unwrap(), 0);
        fleet.retarget("rt", 1).unwrap();
        assert_eq!(fleet.shard_of("rt"), Some(1));
        let (shard, module) = fleet.ensure_resident("rt").unwrap();
        assert_eq!(shard, 1);
        let (lo, hi) = fleet.sharded().window(1);
        let base = module.movable_base.load(Ordering::Acquire);
        assert!(base >= lo && base < hi, "fault-in honors the retarget");
        drop(module);
        assert!(matches!(
            fleet.retarget("rt", 0),
            Err(FleetError::ResidentModule(_))
        ));
        assert!(matches!(
            fleet.retarget("rt", 9),
            Err(FleetError::UnknownShard(9))
        ));
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    #[test]
    fn live_spans_cover_every_part_and_stay_disjoint() {
        let fleet = fleet(4, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..4 {
            let obj = transform(&stateful_spec(&format!("s{i}")), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let spans = fleet.live_spans();
        assert_eq!(spans.len(), 8, "movable + immovable per module");
        for (i, &(shard_a, _, base_a, span_a)) in spans.iter().enumerate() {
            assert_eq!(
                fleet.sharded().shard_of_va(base_a),
                Some(shard_a),
                "span owner must match its window"
            );
            assert!(base_a + span_a <= layout::MODULE_CEILING);
            for &(_, _, base_b, span_b) in spans.iter().skip(i + 1) {
                assert!(
                    base_a + span_a <= base_b || base_b + span_b <= base_a,
                    "cross-shard VA overlap: {base_a:#x}+{span_a:#x} vs {base_b:#x}"
                );
            }
        }
    }
}
