//! Fleet-level module management: placement across kernel shards and
//! live migration between them.
//!
//! [`ShardedKernel`] partitions the
//! machine into independent kernels over disjoint VA windows; this
//! module decides *which* shard a driver lives in and moves it when the
//! answer changes:
//!
//! * [`Fleet`] — one [`ModuleRegistry`] per shard plus the install
//!   catalog (object file + options per module) that makes migration a
//!   rebuild, not a guess;
//! * [`ShardPlacement`] — the pluggable placement policy:
//!   [`RoundRobin`] (uniform spread), [`LoadWeighted`] (lightest shard
//!   by mapped bytes), [`Pinned`] (explicit tenancy);
//! * [`Fleet::migrate`] — **live migration** as vmem batches: the
//!   module is rebuilt in the destination shard (both parts installed
//!   as one map-only batch, GOTs resolved against the destination
//!   kernel's symbol table), its writable data state is copied frame-
//!   to-frame, movable-pointer slots are re-adjusted for the new base,
//!   the `update_pointers` callback runs in the destination, and only
//!   then is the source copy retired — both parts in one batched
//!   shootdown. Make-before-break: traffic entering the destination
//!   shard is servable before the source layout disappears.
//!
//! Like [`ModuleRegistry::unload`], migration requires that no
//! scheduler is actively cycling the module (stop its group, migrate,
//! restart — the rolling-upgrade shape).

use crate::{LoadError, LoadedModule, ModuleRegistry};
use adelie_kernel::{Kernel, ShardedKernel};
use adelie_obj::ObjectFile;
use adelie_plugin::TransformOptions;
use adelie_vmem::{PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// Loading into the target shard failed.
    Load(LoadError),
    /// No module of that name is installed anywhere in the fleet.
    UnknownModule(String),
    /// A module of that name is already installed — install it once,
    /// or unload/migrate the existing copy first (silently replacing
    /// the catalog record would orphan the old copy in its shard).
    DuplicateModule(String),
    /// Shard index out of range — from a caller, or from a placement
    /// policy returning an index the fleet does not have.
    UnknownShard(usize),
    /// Unloading the source copy failed (the destination copy is live;
    /// the module is *not* lost, but the source shard still holds it).
    Unload(String),
    /// The destination module's `update_pointers` callback failed after
    /// state copy (the migration is committed; pointer refresh is in
    /// doubt, mirroring `RerandError::UpdatePointers`).
    UpdatePointers(String),
    /// Admission control refused the target shard: it is at its module
    /// cap. Pick another shard or unload something first.
    Overloaded {
        /// The refused shard.
        shard: usize,
        /// Modules it currently holds.
        modules: usize,
        /// The configured cap ([`AdmissionConfig::max_modules_per_shard`]).
        limit: usize,
    },
    /// Backpressure: the fleet's repair queue is saturated (it is busy
    /// re-converging after faults). Retry after draining — `after_ns`
    /// is the suggested wait on the caller's clock.
    RetryAfter {
        /// Suggested wait before retrying, in nanoseconds.
        after_ns: u64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Load(e) => write!(f, "fleet load failed: {e}"),
            FleetError::UnknownModule(m) => write!(f, "no module `{m}` in the fleet"),
            FleetError::DuplicateModule(m) => {
                write!(f, "module `{m}` is already installed in the fleet")
            }
            FleetError::UnknownShard(s) => write!(f, "no shard {s}"),
            FleetError::Unload(e) => write!(f, "source unload failed: {e}"),
            FleetError::UpdatePointers(e) => {
                write!(f, "destination update_pointers failed: {e}")
            }
            FleetError::Overloaded {
                shard,
                modules,
                limit,
            } => write!(
                f,
                "shard {shard} overloaded: {modules} modules at cap {limit}"
            ),
            FleetError::RetryAfter { after_ns } => {
                write!(f, "fleet busy repairing; retry after {after_ns} ns")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<LoadError> for FleetError {
    fn from(e: LoadError) -> FleetError {
        FleetError::Load(e)
    }
}

/// One shard's placement-relevant load, as seen by a policy.
#[derive(Copy, Clone, Debug)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Modules currently resident.
    pub modules: usize,
    /// Total bytes mapped by those modules (both parts).
    pub mapped_bytes: usize,
}

/// A pluggable shard-placement policy. Policies must be deterministic
/// for a given call sequence — fleet runs replay from a seed, and a
/// placement that consulted wall time or an unseeded RNG would break
/// the soak suite's byte-identical-replay gate.
pub trait ShardPlacement: Send + Sync {
    /// Choose the shard for `module` given the current per-shard loads
    /// (always non-empty, indexed by shard).
    fn place(&self, module: &str, loads: &[ShardLoad]) -> usize;

    /// Policy label (stats, bench output).
    fn name(&self) -> &'static str;
}

/// Uniform spread: shard `k`, `k+1`, … regardless of load.
#[derive(Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// A round-robin policy starting at shard 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl ShardPlacement for RoundRobin {
    fn place(&self, _module: &str, loads: &[ShardLoad]) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % loads.len()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Lightest-shard placement: fewest mapped bytes, ties to the lowest
/// index (deterministic).
#[derive(Default)]
pub struct LoadWeighted;

impl LoadWeighted {
    /// A load-weighted policy.
    pub fn new() -> LoadWeighted {
        LoadWeighted
    }
}

impl ShardPlacement for LoadWeighted {
    fn place(&self, _module: &str, loads: &[ShardLoad]) -> usize {
        loads
            .iter()
            .min_by_key(|l| (l.mapped_bytes, l.modules, l.shard))
            .map(|l| l.shard)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "load-weighted"
    }
}

/// Explicit tenancy: named modules go to their pinned shard, everything
/// else to `fallback`.
pub struct Pinned {
    assignments: HashMap<String, usize>,
    fallback: usize,
}

impl Pinned {
    /// Pin each `(module, shard)` pair; unknown modules land on
    /// `fallback`.
    pub fn new(assignments: HashMap<String, usize>, fallback: usize) -> Pinned {
        Pinned {
            assignments,
            fallback,
        }
    }
}

impl ShardPlacement for Pinned {
    fn place(&self, module: &str, _loads: &[ShardLoad]) -> usize {
        // No clamping: a pin outside the fleet is a misconfiguration,
        // and install() surfaces it as `FleetError::UnknownShard`
        // instead of silently relocating the tenant.
        self.assignments
            .get(module)
            .copied()
            .unwrap_or(self.fallback)
    }

    fn name(&self) -> &'static str {
        "pinned"
    }
}

/// What the catalog remembers about an installed module — enough to
/// rebuild it in any shard.
struct InstallRecord {
    shard: usize,
    obj: ObjectFile,
    opts: TransformOptions,
}

/// Admission-control limits on fleet mutations (ROADMAP item 4's
/// "admission control + backpressure on the install catalog").
#[derive(Copy, Clone, Debug)]
pub struct AdmissionConfig {
    /// Most modules one shard may hold; installs and migrations into a
    /// fuller shard fail with [`FleetError::Overloaded`].
    pub max_modules_per_shard: usize,
    /// Most half-repaired modules the repair queue may hold before
    /// install/migrate push back with [`FleetError::RetryAfter`] — a
    /// fleet drowning in fault recovery stops admitting new work.
    pub max_pending_repairs: usize,
    /// Base repair-retry delay, in ns (doubles per attempt), and the
    /// wait suggested by [`FleetError::RetryAfter`].
    pub retry_after_ns: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_modules_per_shard: 4096,
            max_pending_repairs: 64,
            retry_after_ns: 1_000_000,
        }
    }
}

/// One half-migrated module awaiting background repair: `migrate`'s
/// make-before-break committed the destination copy, but retiring the
/// source copy failed, leaving an orphan in the source shard.
struct RepairTask {
    module: String,
    /// The shard holding the orphaned copy.
    shard: usize,
    /// Unload attempts so far (drives backoff and the force threshold).
    attempts: u32,
    /// Not retried before this clock time (caller-supplied ns).
    next_ns: u64,
}

/// Graceful repair attempts before [`ModuleRegistry::force_unload`]
/// (skipping the module's exit) becomes the last resort.
const REPAIR_FORCE_AFTER: u32 = 3;

/// What [`Fleet::recover_shard`] did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The recovered shard.
    pub shard: usize,
    /// Modules torn down and rebuilt from the install catalog, sorted.
    pub rebuilt: Vec<String>,
    /// Modules that could not be rebuilt, with the error — their
    /// catalog records are dropped (the fleet no longer serves them).
    pub failed: Vec<(String, String)>,
    /// Every `(base, span_bytes)` the rebuild unmapped — the oracle
    /// probes these to prove no stale mapping survived.
    pub vacated: Vec<(u64, u64)>,
}

/// The fleet: per-shard registries + placement + the install catalog.
pub struct Fleet {
    sharded: Arc<ShardedKernel>,
    registries: Vec<Arc<ModuleRegistry>>,
    placement: Box<dyn ShardPlacement>,
    /// Serializes fleet-level mutations (install / migrate / unload) so
    /// placement decisions see a consistent view. Traffic and
    /// re-randomization never take it.
    catalog: Mutex<HashMap<Arc<str>, InstallRecord>>,
    /// Half-migrated orphans awaiting background unload retries. Lock
    /// order: `catalog` before `repairs`, never the reverse.
    repairs: Mutex<Vec<RepairTask>>,
    admission: AdmissionConfig,
}

impl Fleet {
    /// A fleet over `sharded` placing modules with `placement`, under
    /// default admission limits.
    pub fn new(sharded: Arc<ShardedKernel>, placement: Box<dyn ShardPlacement>) -> Fleet {
        Fleet::with_admission(sharded, placement, AdmissionConfig::default())
    }

    /// [`Fleet::new`] with explicit admission-control limits.
    pub fn with_admission(
        sharded: Arc<ShardedKernel>,
        placement: Box<dyn ShardPlacement>,
        admission: AdmissionConfig,
    ) -> Fleet {
        let registries = sharded.shards().iter().map(ModuleRegistry::new).collect();
        Fleet {
            sharded,
            registries,
            placement,
            catalog: Mutex::new(HashMap::new()),
            repairs: Mutex::new(Vec::new()),
            admission,
        }
    }

    /// The underlying shard set.
    pub fn sharded(&self) -> &Arc<ShardedKernel> {
        &self.sharded
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.registries.len()
    }

    /// Never true (a fleet has ≥ 1 shard).
    pub fn is_empty(&self) -> bool {
        self.registries.is_empty()
    }

    /// Shard `i`'s kernel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn kernel(&self, i: usize) -> &Arc<Kernel> {
        self.sharded.shard(i)
    }

    /// Shard `i`'s module registry.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn registry(&self, i: usize) -> &Arc<ModuleRegistry> {
        &self.registries[i]
    }

    /// Which shard currently owns `name`.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.catalog.lock().get(name).map(|r| r.shard)
    }

    /// `(module, shard)` for everything installed, sorted by name
    /// (deterministic iteration for tests and dumps).
    pub fn modules(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .catalog
            .lock()
            .iter()
            .map(|(n, r)| (n.to_string(), r.shard))
            .collect();
        v.sort();
        v
    }

    /// Current per-shard loads (what placement policies consult).
    pub fn loads(&self) -> Vec<ShardLoad> {
        let catalog = self.catalog.lock();
        self.loads_locked(&catalog)
    }

    fn loads_locked(&self, catalog: &HashMap<Arc<str>, InstallRecord>) -> Vec<ShardLoad> {
        let mut loads: Vec<ShardLoad> = (0..self.registries.len())
            .map(|shard| ShardLoad {
                shard,
                modules: 0,
                mapped_bytes: 0,
            })
            .collect();
        for (name, rec) in catalog.iter() {
            loads[rec.shard].modules += 1;
            if let Some(m) = self.registries[rec.shard].get(name) {
                loads[rec.shard].mapped_bytes += m.mapped_bytes();
            }
        }
        loads
    }

    /// Every live VA span in the fleet:
    /// `(shard, module, base, span_bytes)` for both parts of every
    /// installed module — the ground truth the cross-shard overlap and
    /// window-confinement invariants are checked against.
    pub fn live_spans(&self) -> Vec<(usize, String, u64, u64)> {
        let catalog = self.catalog.lock();
        let mut spans = Vec::new();
        for (name, rec) in catalog.iter() {
            let Some(m) = self.registries[rec.shard].get(name) else {
                continue;
            };
            let base = m.movable_base.load(Ordering::Acquire);
            spans.push((
                rec.shard,
                name.to_string(),
                base,
                (m.movable.total_pages * PAGE_SIZE) as u64,
            ));
            if let Some(imm) = &m.immovable {
                spans.push((
                    rec.shard,
                    name.to_string(),
                    imm.base,
                    (imm.total_pages * PAGE_SIZE) as u64,
                ));
            }
        }
        spans.sort();
        spans
    }

    /// Audit the fleet's live layout: every span must sit wholly inside
    /// its owning shard's window, and all spans must be pairwise
    /// disjoint (within a shard *and* across shards — windows tile, so
    /// a cross-shard overlap is also a window escape, but both are
    /// reported by name). The single checker behind `FleetSim::verify`,
    /// the fleet bench, and the placement proptests, so the invariant
    /// cannot drift between its enforcers. Returns human-readable
    /// violations; empty = clean.
    pub fn verify_layout(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let spans = self.live_spans();
        for (i, &(shard_a, ref a, base_a, span_a)) in spans.iter().enumerate() {
            let (lo, hi) = self.sharded.window(shard_a);
            if base_a < lo || base_a + span_a > hi {
                violations.push(format!(
                    "window escape: {a} (shard {shard_a}) spans \
                     {base_a:#x}+{span_a:#x} outside [{lo:#x}, {hi:#x})"
                ));
            }
            for &(shard_b, ref b, base_b, span_b) in spans.iter().skip(i + 1) {
                if base_a < base_b + span_b && base_b < base_a + span_a {
                    violations.push(format!(
                        "VA overlap: {a} (shard {shard_a}) {base_a:#x}+{span_a:#x} \
                         vs {b} (shard {shard_b}) {base_b:#x}+{span_b:#x}"
                    ));
                }
            }
        }
        violations
    }

    /// Install a module: placement picks the shard, the shard's
    /// registry loads it (init runs in that shard), the catalog records
    /// the recipe for future migration. Returns `(shard, module)`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Load`] when the shard's loader rejects the object;
    /// [`FleetError::DuplicateModule`] when the name is already
    /// installed (replacing the record would orphan the old copy);
    /// [`FleetError::UnknownShard`] when the placement policy names a
    /// shard the fleet does not have;
    /// [`FleetError::Overloaded`] when the chosen shard is at its
    /// module cap; [`FleetError::RetryAfter`] when the repair queue is
    /// saturated (admission control — see [`AdmissionConfig`]).
    pub fn install(
        &self,
        obj: &ObjectFile,
        opts: &TransformOptions,
    ) -> Result<(usize, Arc<LoadedModule>), FleetError> {
        let mut catalog = self.catalog.lock();
        if catalog.contains_key(obj.name.as_str()) {
            return Err(FleetError::DuplicateModule(obj.name.clone()));
        }
        self.admit()?;
        let loads = self.loads_locked(&catalog);
        let shard = self.placement.place(&obj.name, &loads);
        if shard >= loads.len() {
            return Err(FleetError::UnknownShard(shard));
        }
        if loads[shard].modules >= self.admission.max_modules_per_shard {
            return Err(FleetError::Overloaded {
                shard,
                modules: loads[shard].modules,
                limit: self.admission.max_modules_per_shard,
            });
        }
        let module = self.registries[shard].load(obj, opts)?;
        catalog.insert(
            module.name.clone(),
            InstallRecord {
                shard,
                obj: obj.clone(),
                opts: *opts,
            },
        );
        self.sharded.shard(shard).printk.log(format!(
            "fleet: {} placed on shard {shard} ({})",
            module.name,
            self.placement.name()
        ));
        Ok((shard, module))
    }

    /// Live-migrate `name` to shard `dst` (see module docs for the
    /// batch protocol). No-op if the module already lives there.
    /// Returns the destination-resident module.
    ///
    /// # Errors
    ///
    /// [`FleetError`] — on a load failure the source copy is untouched
    /// and still serving; on an unload failure the destination copy is
    /// live, the catalog points at it, and the orphaned source copy is
    /// queued for background repair (see [`Fleet::run_repairs`]).
    pub fn migrate(&self, name: &str, dst: usize) -> Result<Arc<LoadedModule>, FleetError> {
        if dst >= self.registries.len() {
            return Err(FleetError::UnknownShard(dst));
        }
        let mut catalog = self.catalog.lock();
        let rec = catalog
            .get(name)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        let src = rec.shard;
        let src_module = self.registries[src]
            .get(name)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        if src == dst {
            return Ok(src_module);
        }
        self.admit()?;
        let dst_load = self.loads_locked(&catalog)[dst].modules;
        if dst_load >= self.admission.max_modules_per_shard {
            return Err(FleetError::Overloaded {
                shard: dst,
                modules: dst_load,
                limit: self.admission.max_modules_per_shard,
            });
        }
        let (obj, opts) = (rec.obj.clone(), rec.opts);

        // (1) Make: rebuild in the destination. Both parts install as
        // one map-only vmem batch inside the loader; GOTs resolve
        // against the destination kernel; init runs there (device
        // attach). The source copy keeps serving throughout.
        let dst_module = self.registries[dst].load(&obj, &opts)?;

        // (2) Copy live state: every writable data page travels frame-
        // to-frame, so counters, rings, and tables survive the move.
        let src_kernel = self.sharded.shard(src);
        let dst_kernel = self.sharded.shard(dst);
        copy_writable_state(src_kernel, &src_module, dst_kernel, &dst_module);

        // (3) Re-adjust movable pointers for the destination base (the
        // raw copy imported source-shard addresses) and let the module
        // refresh its own run-time pointers.
        let dst_base = dst_module.movable_base.load(Ordering::Acquire);
        for slot in &dst_module.adjust_slots {
            let frames = match slot.part {
                crate::Part::Movable => &dst_module.movable.frames,
                crate::Part::Immovable => &dst_module.immovable.as_ref().unwrap().frames,
            };
            let page = (slot.slot_off / PAGE_SIZE as u64) as usize;
            let off = (slot.slot_off % PAGE_SIZE as u64) as usize;
            dst_kernel
                .phys
                .write_u64(frames[page], off, dst_base + slot.target_off);
        }
        let update_result = match dst_module.update_pointers_va {
            Some(up) => {
                let mut vm = dst_kernel.vm();
                vm.call(up, &[dst_base]).map(|_| ()).map_err(|e| {
                    dst_module
                        .pointer_refresh_failures
                        .fetch_add(1, Ordering::Relaxed);
                    FleetError::UpdatePointers(e.to_string())
                })
            }
            None => Ok(()),
        };

        // (4) Break: retire the source copy — exit runs there (device
        // detach) and both parts unmap as one batched shootdown.
        catalog.insert(
            dst_module.name.clone(),
            InstallRecord {
                shard: dst,
                obj,
                opts,
            },
        );
        drop(src_module);
        if let Err(e) = self.registries[src].unload(name) {
            // Half-migrated: the destination copy serves and the
            // catalog points at it, but the source shard still holds an
            // orphaned copy. Queue it for background repair (retried
            // with backoff by `run_repairs`) instead of stranding it.
            self.repairs.lock().push(RepairTask {
                module: name.to_string(),
                shard: src,
                attempts: 0,
                next_ns: 0,
            });
            self.sharded.shard(src).printk.log(format!(
                "fleet: {name} orphaned on shard {src} after migrate \
                 (unload failed: {e}); queued for repair"
            ));
            return Err(FleetError::Unload(e));
        }
        dst_kernel
            .printk
            .log(format!("fleet: {name} migrated shard {src} -> shard {dst}"));
        update_result.map(|()| dst_module)
    }

    /// Admission gate shared by install and migrate: a repair queue at
    /// capacity means the fleet is drowning in fault recovery — push
    /// back instead of admitting more work.
    fn admit(&self) -> Result<(), FleetError> {
        if self.repairs.lock().len() >= self.admission.max_pending_repairs {
            return Err(FleetError::RetryAfter {
                after_ns: self.admission.retry_after_ns,
            });
        }
        Ok(())
    }

    /// Half-migrated orphans still awaiting background repair.
    pub fn pending_repairs(&self) -> usize {
        self.repairs.lock().len()
    }

    /// Run the background repair queue at time `now_ns` (on whatever
    /// clock the caller drives — wall in production, virtual under the
    /// testkit): every due task retries its orphan unload, gracefully
    /// at first and via [`ModuleRegistry::force_unload`] once
    /// `REPAIR_FORCE_AFTER` graceful attempts failed; failures re-queue
    /// with exponential backoff. Returns the number of orphans
    /// repaired.
    pub fn run_repairs(&self, now_ns: u64) -> usize {
        // Lock order: catalog before repairs.
        let _catalog = self.catalog.lock();
        let mut repairs = self.repairs.lock();
        let mut repaired = 0;
        let mut keep = Vec::new();
        for mut task in repairs.drain(..) {
            if task.next_ns > now_ns {
                keep.push(task);
                continue;
            }
            let registry = &self.registries[task.shard];
            if registry.get(&task.module).is_none() {
                // Already gone (a shard rebuild swept it); done.
                repaired += 1;
                continue;
            }
            let force = task.attempts >= REPAIR_FORCE_AFTER;
            let result = if force {
                registry.force_unload(&task.module)
            } else {
                registry.unload(&task.module)
            };
            match result {
                Ok(()) => {
                    self.sharded.shard(task.shard).printk.log(format!(
                        "fleet: repaired orphan {} on shard {} (attempt {}{})",
                        task.module,
                        task.shard,
                        task.attempts + 1,
                        if force { ", forced" } else { "" }
                    ));
                    repaired += 1;
                }
                Err(e) => {
                    task.attempts = task.attempts.saturating_add(1);
                    let backoff = self
                        .admission
                        .retry_after_ns
                        .saturating_mul(1u64 << task.attempts.min(16));
                    task.next_ns = now_ns.saturating_add(backoff);
                    self.sharded.shard(task.shard).printk.log_limited(
                        &format!("fleet-repair:{}", task.module),
                        format!(
                            "fleet: repair of {} on shard {} failed ({e}); \
                             retrying at +{backoff} ns",
                            task.module, task.shard
                        ),
                    );
                    keep.push(task);
                }
            }
        }
        *repairs = keep;
        repaired
    }

    /// Crash-recover shard `shard`: tear down every module it holds
    /// (forced — a crashed shard's exits don't get a vote) and rebuild
    /// each from the install catalog's stored object + options, in
    /// name order (deterministic). Teardown covers what the shard's
    /// registry *actually* holds, not just the catalog's records for
    /// it — a half-migrated orphan's record points at the migration
    /// destination, but its stale copy lives here and vanishes with
    /// the rebuild. A pending repair task is dropped only once its
    /// orphan is confirmed gone from the registry. Callers drive this
    /// from a [`ShardWatchdog`](crate::ShardWatchdog) verdict, then
    /// rebuild the shard's scheduler group.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownShard`]. Per-module rebuild failures are
    /// reported in the [`RecoveryReport`], not as an error — recovery
    /// salvages what it can.
    pub fn recover_shard(&self, shard: usize) -> Result<RecoveryReport, FleetError> {
        if shard >= self.registries.len() {
            return Err(FleetError::UnknownShard(shard));
        }
        let mut catalog = self.catalog.lock();
        let registry = &self.registries[shard];
        // Tear down the union of the catalog's records for this shard
        // and the registry's resident modules: a half-migrated orphan
        // is resident here while its catalog record points at the
        // migration destination, and a record whose module the
        // registry lost still deserves a rebuild.
        let mut names: Vec<Arc<str>> = catalog
            .iter()
            .filter(|(_, rec)| rec.shard == shard)
            .map(|(n, _)| n.clone())
            .collect();
        names.extend(registry.list().into_iter().map(Arc::<str>::from));
        names.sort();
        names.dedup();
        let kernel = self.sharded.shard(shard);
        let mut report = RecoveryReport {
            shard,
            ..RecoveryReport::default()
        };
        for name in names {
            let owned_here = catalog.get(&name).is_some_and(|rec| rec.shard == shard);
            if let Some(m) = registry.get(&name) {
                let base = m.movable_base.load(Ordering::Acquire);
                let mut spans = vec![(base, (m.movable.total_pages * PAGE_SIZE) as u64)];
                if let Some(imm) = &m.immovable {
                    spans.push((imm.base, (imm.total_pages * PAGE_SIZE) as u64));
                }
                if let Err(e) = registry.force_unload(&name) {
                    // Retire batch failed: the old mappings survive and
                    // their frames are withheld, so the spans are NOT
                    // vacated — the oracle must not probe them as
                    // reclaimed. Reloading on top would double-serve
                    // the name, so drop the module from the fleet
                    // entirely.
                    report.failed.push((name.to_string(), e));
                    if owned_here {
                        catalog.remove(&name);
                    }
                    continue;
                }
                // Vacated only after the teardown actually unmapped the
                // spans: the layout oracle probes them to prove no
                // stale mapping survives rebuild.
                report.vacated.extend(spans);
            }
            if !owned_here {
                // Half-migrated orphan: the live copy serves from its
                // destination shard, so sweeping the stale copy *is*
                // the repair — nothing to rebuild here.
                kernel.printk.log(format!(
                    "fleet: swept orphan {name} during shard {shard} recovery"
                ));
                continue;
            }
            let rec = catalog
                .get(&name)
                .expect("catalog record exists for its own shard listing");
            match registry.load(&rec.obj, &rec.opts) {
                Ok(_) => report.rebuilt.push(name.to_string()),
                Err(e) => {
                    report.failed.push((name.to_string(), e.to_string()));
                    catalog.remove(&name);
                }
            }
        }
        // Drop a repair task only once its orphan is confirmed gone
        // from the registry. (A retire-batch failure also removes the
        // registry record — the frames are deliberately withheld and no
        // retry can reclaim them, so dropping the task is right there
        // too.)
        self.repairs
            .lock()
            .retain(|t| t.shard != shard || registry.get(&t.module).is_some());
        kernel.printk.log(format!(
            "fleet: shard {shard} recovered ({} rebuilt, {} failed)",
            report.rebuilt.len(),
            report.failed.len()
        ));
        Ok(report)
    }

    /// Unload `name` from whichever shard owns it.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownModule`] / [`FleetError::Unload`].
    pub fn unload(&self, name: &str) -> Result<(), FleetError> {
        let mut catalog = self.catalog.lock();
        let shard = catalog
            .get(name)
            .map(|rec| rec.shard)
            .ok_or_else(|| FleetError::UnknownModule(name.to_string()))?;
        // Registry unload first: if it fails (exit fault, withheld
        // retire), the catalog record survives, so the module stays
        // visible to every fleet audit and the unload is retryable.
        self.registries[shard]
            .unload(name)
            .map_err(FleetError::Unload)?;
        catalog.remove(name);
        Ok(())
    }

    /// Audit every installed module's fixed GOTs against its owning
    /// shard's symbol table (and verify each module's exports resolve
    /// there). Returns human-readable violations; empty = clean.
    pub fn verify_symbol_integrity(&self) -> Vec<String> {
        let catalog = self.catalog.lock();
        let mut violations = Vec::new();
        for (name, rec) in catalog.iter() {
            let kernel = self.sharded.shard(rec.shard);
            let Some(m) = self.registries[rec.shard].get(name) else {
                violations.push(format!(
                    "{name}: catalog says shard {} but the registry lost it",
                    rec.shard
                ));
                continue;
            };
            violations.extend(crate::verify_fixed_gots(kernel, &m));
            violations.extend(crate::verify_plt_bindings(kernel, &m));
            for (export, va) in &m.exports {
                match kernel.symbols.lookup(export) {
                    Some(published) if published == *va => {}
                    Some(published) => violations.push(format!(
                        "{name}: export {export} published at {published:#x} \
                         but the module says {va:#x}"
                    )),
                    None => violations.push(format!(
                        "{name}: export {export} unreachable from shard {}'s \
                         symbol table",
                        rec.shard
                    )),
                }
            }
        }
        violations
    }
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.registries.len())
            .field("placement", &self.placement.name())
            .field("modules", &self.modules())
            .finish()
    }
}

/// Copy every writable (`PteFlags::DATA`) page of both parts from the
/// source module's frames to the destination's — the state-transfer
/// half of migration.
fn copy_writable_state(
    src_kernel: &Arc<Kernel>,
    src: &LoadedModule,
    dst_kernel: &Arc<Kernel>,
    dst: &LoadedModule,
) {
    let copy_part = |src_img: &crate::PartImage, dst_img: &crate::PartImage| {
        let mut buf = [0u8; PAGE_SIZE];
        for g in &src_img.groups {
            if g.flags != PteFlags::DATA {
                continue;
            }
            for p in g.page_start..g.page_start + g.pages {
                src_kernel.phys.read(src_img.frames[p], 0, &mut buf);
                dst_kernel.phys.write(dst_img.frames[p], 0, &buf);
            }
        }
    };
    copy_part(&src.movable, &dst.movable);
    if let (Some(s), Some(d)) = (&src.immovable, &dst.immovable) {
        copy_part(s, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::{AluOp, Insn, Mem, Reg};
    use adelie_kernel::{layout, FleetConfig};
    use adelie_plugin::{transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec};
    use adelie_vmem::Access;

    /// A stateful driver: `N_bump()` increments a `.bss` counter and
    /// returns it; `N_ops` is a pointer table (adjust slots).
    fn stateful_spec(name: &str) -> ModuleSpec {
        let mut spec = ModuleSpec::new(name);
        spec.funcs.push(FuncSpec::exported(
            &format!("{name}_bump"),
            vec![
                MOp::LoadLocalSym(Reg::Rcx, format!("{name}_counter")),
                MOp::Insn(Insn::MovLoad {
                    dst: Reg::Rax,
                    src: Mem::base(Reg::Rcx),
                }),
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    imm: 1,
                }),
                MOp::Insn(Insn::MovStore {
                    dst: Mem::base(Reg::Rcx),
                    src: Reg::Rax,
                }),
                MOp::Ret,
            ],
        ));
        spec.data.push(DataSpec {
            name: format!("{name}_counter"),
            readonly: false,
            init: DataInit::Zero(8),
        });
        spec.data.push(DataSpec {
            name: format!("{name}_ops"),
            readonly: false,
            init: DataInit::PtrTable(vec![format!("{name}_bump")]),
        });
        spec
    }

    fn fleet(shards: usize, placement: Box<dyn ShardPlacement>) -> Fleet {
        Fleet::new(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(shards, 11)),
            placement,
        )
    }

    #[test]
    fn round_robin_spreads_and_windows_confine() {
        let fleet = fleet(3, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..6 {
            let obj = transform(&stateful_spec(&format!("m{i}")), &opts).unwrap();
            let (shard, module) = fleet.install(&obj, &opts).unwrap();
            assert_eq!(shard, i % 3, "round-robin placement");
            let (lo, hi) = fleet.sharded().window(shard);
            let base = module.movable_base.load(Ordering::Acquire);
            assert!(base >= lo && base < hi, "movable base outside window");
            if let Some(imm) = &module.immovable {
                assert!(imm.base >= lo && imm.base < hi, "immovable outside window");
            }
        }
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    #[test]
    fn load_weighted_prefers_the_lightest_shard() {
        let fleet = fleet(3, Box::new(LoadWeighted::new()));
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..6 {
            let obj = transform(&stateful_spec(&format!("w{i}")), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let loads = fleet.loads();
        let max = loads.iter().map(|l| l.modules).max().unwrap();
        let min = loads.iter().map(|l| l.modules).min().unwrap();
        assert!(max - min <= 1, "identical modules must balance: {loads:?}");
    }

    #[test]
    fn pinned_placement_honors_assignments() {
        let mut pins = HashMap::new();
        pins.insert("p0".to_string(), 2);
        let fleet = fleet(3, Box::new(Pinned::new(pins, 1)));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("p0"), &opts).unwrap();
        assert_eq!(fleet.install(&obj, &opts).unwrap().0, 2);
        let obj = transform(&stateful_spec("p1"), &opts).unwrap();
        assert_eq!(fleet.install(&obj, &opts).unwrap().0, 1, "fallback shard");
    }

    /// Regression: a duplicate install used to silently replace the
    /// catalog record, orphaning the old copy in its shard; and an
    /// out-of-range pin used to be silently clamped onto the last
    /// shard. Both are now hard errors, leaving the fleet untouched.
    #[test]
    fn install_rejects_duplicates_and_out_of_range_pins() {
        let mut pins = HashMap::new();
        pins.insert("lost".to_string(), 7);
        let fleet = fleet(3, Box::new(Pinned::new(pins, 0)));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("dup"), &opts).unwrap();
        let (shard, _) = fleet.install(&obj, &opts).unwrap();
        match fleet.install(&obj, &opts) {
            Err(FleetError::DuplicateModule(name)) => assert_eq!(name, "dup"),
            other => panic!("duplicate install must be rejected, got {other:?}"),
        }
        // Exactly one copy exists, where it was first placed.
        assert_eq!(fleet.shard_of("dup"), Some(shard));
        assert_eq!(fleet.live_spans().len(), 2, "one movable + one immovable");
        let obj = transform(&stateful_spec("lost"), &opts).unwrap();
        match fleet.install(&obj, &opts) {
            Err(FleetError::UnknownShard(7)) => {}
            other => panic!("out-of-range pin must be rejected, got {other:?}"),
        }
        assert_eq!(fleet.shard_of("lost"), None);
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    #[test]
    fn migration_carries_state_and_retires_the_source() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        let obj = transform(&stateful_spec("mig"), &opts).unwrap();
        let (src, module) = fleet.install(&obj, &opts).unwrap();
        let entry = module.export("mig_bump").unwrap();
        let src_kernel = fleet.kernel(src).clone();
        let mut vm = src_kernel.vm();
        for expect in 1..=5u64 {
            assert_eq!(vm.call(entry, &[]).unwrap(), expect);
        }
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(vm);
        drop(module);

        let dst = 1 - src;
        let moved = fleet.migrate("mig", dst).unwrap();
        assert_eq!(fleet.shard_of("mig"), Some(dst));
        // The counter survived the move: the next bump continues at 6.
        let dst_kernel = fleet.kernel(dst).clone();
        let mut vm = dst_kernel.vm();
        let entry = moved.export("mig_bump").unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 6, "state must travel");
        // Destination layout sits inside the destination window; the
        // source copy is gone (both parts) and its exports unpublished.
        let (lo, hi) = fleet.sharded().window(dst);
        let new_base = moved.movable_base.load(Ordering::Acquire);
        assert!(new_base >= lo && new_base < hi);
        assert!(src_kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(src_kernel.space.translate(old_imm, Access::Read).is_err());
        assert!(src_kernel.symbols.lookup("mig_bump").is_none());
        assert!(dst_kernel.symbols.lookup("mig_bump").is_some());
        // No dangling GOT entries anywhere.
        assert_eq!(fleet.verify_symbol_integrity(), Vec::<String>::new());
        // Migrating to the same shard is a no-op.
        let again = fleet.migrate("mig", dst).unwrap();
        assert_eq!(
            again.movable_base.load(Ordering::Acquire),
            moved.movable_base.load(Ordering::Acquire)
        );
        // And the module can still be re-randomized in its new home.
        crate::rerandomize_module(&dst_kernel, fleet.registry(dst), &moved).unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 7);
    }

    /// Regression: a failed registry unload used to be preceded by the
    /// catalog removal (and the registry removal by the exit call), so
    /// the still-mapped module vanished from every fleet audit and the
    /// unload could never be retried.
    #[test]
    fn failed_unload_keeps_the_module_visible_and_retryable() {
        let fleet = fleet(2, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("stuck");
        // An exit entry that traps: unload must fail closed.
        spec.funcs
            .push(FuncSpec::exported("stuck_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("stuck_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (shard, _) = fleet.install(&obj, &opts).unwrap();
        match fleet.unload("stuck") {
            Err(FleetError::Unload(e)) => assert!(e.contains("exit failed"), "{e}"),
            other => panic!("trapping exit must fail the unload, got {other:?}"),
        }
        // Still cataloged, still in the registry, still audited, still
        // serving — and the unload is retryable (same failure again).
        assert_eq!(fleet.shard_of("stuck"), Some(shard));
        assert!(fleet.registry(shard).get("stuck").is_some());
        assert_eq!(fleet.live_spans().len(), 2);
        assert!(fleet.verify_symbol_integrity().is_empty());
        let kernel = fleet.kernel(shard).clone();
        let mut vm = kernel.vm();
        let entry = fleet
            .registry(shard)
            .get("stuck")
            .unwrap()
            .export("stuck_bump")
            .unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 1);
        assert!(matches!(fleet.unload("stuck"), Err(FleetError::Unload(_))));
    }

    /// The half-migrated orphan (migrate committed the destination,
    /// source unload failed) lands on the repair queue, backpressures
    /// admission while queued, survives graceful retries against a
    /// trapping exit, and is finally force-unloaded — source spans
    /// vacated, queue drained.
    #[test]
    fn migrate_orphan_is_repaired_with_backoff_and_force() {
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(RoundRobin::new()),
            AdmissionConfig {
                max_pending_repairs: 1,
                retry_after_ns: 1_000,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("orph");
        spec.funcs
            .push(FuncSpec::exported("orph_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("orph_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (src, module) = fleet.install(&obj, &opts).unwrap();
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(module);
        let dst = 1 - src;
        match fleet.migrate("orph", dst) {
            Err(FleetError::Unload(e)) => assert!(e.contains("exit failed"), "{e}"),
            other => panic!("trapping source exit must orphan, got {other:?}"),
        }
        // Catalog points at the live destination copy; the orphan is
        // queued and the queue (at its cap of 1) pushes back on new
        // installs with RetryAfter.
        assert_eq!(fleet.shard_of("orph"), Some(dst));
        assert_eq!(fleet.pending_repairs(), 1);
        let other_obj = transform(&stateful_spec("late"), &opts).unwrap();
        match fleet.install(&other_obj, &opts) {
            Err(FleetError::RetryAfter { after_ns }) => assert_eq!(after_ns, 1_000),
            other => panic!("saturated repair queue must backpressure, got {other:?}"),
        }
        // Graceful repair attempts keep hitting the trapping exit; each
        // failure re-queues with a bigger backoff, and a not-yet-due
        // task is left alone.
        let mut now = 0u64;
        for _ in 0..REPAIR_FORCE_AFTER {
            assert_eq!(fleet.run_repairs(now), 0);
            assert_eq!(fleet.pending_repairs(), 1);
            assert_eq!(fleet.run_repairs(now), 0, "backed off, not due yet");
            now += 1_000 * (1 << 17); // beyond any backoff in this test
        }
        // The next due attempt is forced (exit skipped): the orphan's
        // mappings vanish and the queue drains.
        assert_eq!(fleet.run_repairs(now), 1);
        assert_eq!(fleet.pending_repairs(), 0);
        let src_kernel = fleet.kernel(src);
        assert!(src_kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(src_kernel.space.translate(old_imm, Access::Read).is_err());
        assert!(fleet.registry(src).get("orph").is_none());
        // Admission reopens once the queue drains.
        fleet.install(&other_obj, &opts).unwrap();
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// Regression: crash-recovering the shard that holds a
    /// half-migrated orphan used to tear down only the modules the
    /// catalog listed for that shard — the orphan's record points at
    /// the migration destination, so its stale copy (and executable
    /// mappings) survived the rebuild while its repair task was
    /// dropped, leaking it permanently. Recovery must sweep what the
    /// registry actually holds and drop the task only once the orphan
    /// is confirmed gone.
    #[test]
    fn recover_shard_sweeps_migrate_orphans() {
        let mut pins = HashMap::new();
        pins.insert("orph".to_string(), 0);
        pins.insert("mate".to_string(), 0);
        let fleet = fleet(2, Box::new(Pinned::new(pins, 0)));
        let opts = TransformOptions::rerandomizable(true);
        let mut spec = stateful_spec("orph");
        spec.funcs
            .push(FuncSpec::exported("orph_exit", vec![MOp::Insn(Insn::Ud2)]));
        spec.exit = Some("orph_exit".into());
        let obj = transform(&spec, &opts).unwrap();
        let (src, module) = fleet.install(&obj, &opts).unwrap();
        assert_eq!(src, 0);
        let mate = transform(&stateful_spec("mate"), &opts).unwrap();
        fleet.install(&mate, &opts).unwrap();
        let old_mov = module.movable_base.load(Ordering::Acquire);
        let old_imm = module.immovable.as_ref().unwrap().base;
        drop(module);
        assert!(matches!(fleet.migrate("orph", 1), Err(FleetError::Unload(_))));
        assert_eq!(fleet.pending_repairs(), 1);

        let report = fleet.recover_shard(0).unwrap();
        // Only the shard's own tenant is rebuilt; the orphan is swept,
        // not reloaded (its live copy serves from shard 1).
        assert_eq!(report.rebuilt, vec!["mate".to_string()]);
        assert!(report.failed.is_empty());
        assert!(
            report.vacated.iter().any(|&(b, _)| b == old_mov)
                && report.vacated.iter().any(|&(b, _)| b == old_imm),
            "the orphan's spans must be vacated: {:?}",
            report.vacated
        );
        assert_eq!(report.vacated.len(), 4, "orphan + mate, both parts");
        let src_kernel = fleet.kernel(0);
        assert!(src_kernel.space.translate(old_mov, Access::Read).is_err());
        assert!(src_kernel.space.translate(old_imm, Access::Read).is_err());
        assert!(fleet.registry(0).get("orph").is_none());
        assert_eq!(
            fleet.pending_repairs(),
            0,
            "the swept orphan's repair task must be dropped"
        );
        // The destination copy is untouched and still serving.
        assert_eq!(fleet.shard_of("orph"), Some(1));
        let dst_kernel = fleet.kernel(1).clone();
        let mut vm = dst_kernel.vm();
        let entry = fleet
            .registry(1)
            .get("orph")
            .unwrap()
            .export("orph_bump")
            .unwrap();
        assert_eq!(vm.call(entry, &[]).unwrap(), 1);
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
    }

    /// Crash recovery rebuilds a shard's modules from the install
    /// catalog: old spans are vacated, fresh copies serve, and the
    /// catalog keeps its tenancy.
    #[test]
    fn recover_shard_rebuilds_from_the_catalog() {
        let mut pins = HashMap::new();
        pins.insert("ra".to_string(), 0);
        pins.insert("rb".to_string(), 0);
        pins.insert("rc".to_string(), 1);
        let fleet = fleet(2, Box::new(Pinned::new(pins, 0)));
        let opts = TransformOptions::rerandomizable(true);
        for name in ["ra", "rb", "rc"] {
            let obj = transform(&stateful_spec(name), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let kernel = fleet.kernel(0).clone();
        let bump = fleet
            .registry(0)
            .get("ra")
            .unwrap()
            .export("ra_bump")
            .unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(bump, &[]).unwrap(), 1);
        drop(vm);
        let spans_before = fleet.live_spans();

        let report = fleet.recover_shard(0).unwrap();
        assert_eq!(report.rebuilt, vec!["ra".to_string(), "rb".to_string()]);
        assert!(report.failed.is_empty());
        // One movable + one immovable span per rebuilt module vacated,
        // and none of them still translate.
        assert_eq!(report.vacated.len(), 4);
        for &(base, _) in &report.vacated {
            assert!(
                kernel.space.translate(base, Access::Read).is_err(),
                "stale mapping survived rebuild at {base:#x}"
            );
        }
        // Tenancy unchanged; shard 1 untouched; fresh copies serve
        // (crash recovery rebuilds from the recipe — state restarts).
        assert_eq!(fleet.shard_of("ra"), Some(0));
        assert_eq!(fleet.shard_of("rc"), Some(1));
        let spans_after = fleet.live_spans();
        assert_eq!(spans_after.len(), spans_before.len());
        let bump = fleet
            .registry(0)
            .get("ra")
            .unwrap()
            .export("ra_bump")
            .unwrap();
        let mut vm = kernel.vm();
        assert_eq!(vm.call(bump, &[]).unwrap(), 1, "rebuilt state restarts");
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
        // Recovering an unknown shard is a typed error.
        assert!(matches!(
            fleet.recover_shard(9),
            Err(FleetError::UnknownShard(9))
        ));
    }

    /// Admission control: a shard at its module cap refuses installs
    /// and inbound migrations with a typed `Overloaded`.
    #[test]
    fn admission_caps_shard_occupancy() {
        let fleet = Fleet::with_admission(
            adelie_kernel::ShardedKernel::new(FleetConfig::seeded(2, 11)),
            Box::new(RoundRobin::new()),
            AdmissionConfig {
                max_modules_per_shard: 1,
                ..AdmissionConfig::default()
            },
        );
        let opts = TransformOptions::rerandomizable(true);
        for name in ["a0", "a1"] {
            let obj = transform(&stateful_spec(name), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let obj = transform(&stateful_spec("a2"), &opts).unwrap();
        match fleet.install(&obj, &opts) {
            Err(FleetError::Overloaded {
                shard,
                modules: 1,
                limit: 1,
            }) => assert_eq!(shard, 0, "round-robin wraps to the full shard"),
            other => panic!("cap must refuse the install, got {other:?}"),
        }
        let dst = fleet.shard_of("a1").map(|s| 1 - s).unwrap();
        match fleet.migrate("a1", dst) {
            Err(FleetError::Overloaded { shard, .. }) => assert_eq!(shard, dst),
            other => panic!("cap must refuse the migration, got {other:?}"),
        }
        assert!(fleet.verify_layout().is_empty());
    }

    #[test]
    fn live_spans_cover_every_part_and_stay_disjoint() {
        let fleet = fleet(4, Box::new(RoundRobin::new()));
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..4 {
            let obj = transform(&stateful_spec(&format!("s{i}")), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        let spans = fleet.live_spans();
        assert_eq!(spans.len(), 8, "movable + immovable per module");
        for (i, &(shard_a, _, base_a, span_a)) in spans.iter().enumerate() {
            assert_eq!(
                fleet.sharded().shard_of_va(base_a),
                Some(shard_a),
                "span owner must match its window"
            );
            assert!(base_a + span_a <= layout::MODULE_CEILING);
            for &(_, _, base_b, span_b) in spans.iter().skip(i + 1) {
                assert!(
                    base_a + span_a <= base_b || base_b + span_b <= base_a,
                    "cross-shard VA overlap: {base_a:#x}+{span_a:#x} vs {base_b:#x}"
                );
            }
        }
    }
}
