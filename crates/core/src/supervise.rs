//! Shard watchdogs: clock-deadline detection of stuck or overrun
//! shards, feeding the fleet's crash-recovery path.
//!
//! Each shard's driver (a scheduler group, a workload loop, …) is
//! expected to [`beat`](ShardWatchdog::beat) its slot as it makes
//! progress. A supervisor periodically [`scan`](ShardWatchdog::scan)s:
//! any shard whose last beat is older than the timeout is declared
//! unhealthy and handed to `Fleet::recover_shard`, which rebuilds its
//! modules from the install catalog.
//!
//! The API is plain nanoseconds on an injected timeline — wall clock in
//! production, `SimClock` under the deterministic testkit — so the
//! watchdog itself never reads a clock and stays byte-reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard liveness deadlines.
#[derive(Debug)]
pub struct ShardWatchdog {
    timeout_ns: u64,
    last_beat: Vec<AtomicU64>,
}

impl ShardWatchdog {
    /// A watchdog over `shards` slots, all considered alive at time 0
    /// until `timeout_ns` elapses without a beat.
    pub fn new(shards: usize, timeout_ns: u64) -> ShardWatchdog {
        ShardWatchdog {
            timeout_ns,
            last_beat: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of supervised shards.
    pub fn len(&self) -> usize {
        self.last_beat.len()
    }

    /// Whether the watchdog supervises no shards.
    pub fn is_empty(&self) -> bool {
        self.last_beat.is_empty()
    }

    /// The liveness timeout in nanoseconds.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }

    /// Record progress on `shard` at `now_ns`. Beats never move the
    /// deadline backwards (a late-delivered beat can't resurrect a
    /// shard already older than a newer beat said).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn beat(&self, shard: usize, now_ns: u64) {
        self.last_beat[shard].fetch_max(now_ns, Ordering::Relaxed);
    }

    /// Last recorded beat for `shard` (clock ns).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn last_beat_ns(&self, shard: usize) -> u64 {
        self.last_beat[shard].load(Ordering::Relaxed)
    }

    /// Shards whose last beat is more than the timeout before `now_ns`
    /// — the unhealthy set, in shard order (deterministic).
    pub fn scan(&self, now_ns: u64) -> Vec<usize> {
        self.last_beat
            .iter()
            .enumerate()
            .filter(|(_, beat)| {
                now_ns.saturating_sub(beat.load(Ordering::Relaxed)) > self.timeout_ns
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_shards_trip_the_deadline() {
        let dog = ShardWatchdog::new(3, 1_000);
        dog.beat(0, 500);
        dog.beat(1, 2_000);
        // Shard 2 never beat: overdue. Shard 0's beat is 1 501 ns old.
        assert_eq!(dog.scan(2_001), vec![0, 2]);
        // Everyone within the window at t=1 000.
        assert_eq!(dog.scan(1_000), Vec::<usize>::new());
    }

    #[test]
    fn beats_never_rewind() {
        let dog = ShardWatchdog::new(1, 100);
        dog.beat(0, 900);
        dog.beat(0, 200); // stale delivery
        assert_eq!(dog.last_beat_ns(0), 900);
        assert!(dog.scan(950).is_empty());
        assert_eq!(dog.scan(1_001), vec![0]);
    }
}
