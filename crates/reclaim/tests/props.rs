//! Property test: neither reclaimer ever frees early, under arbitrary
//! enter/leave/retire schedules.

use adelie_reclaim::{Ebr, Hyaline, Reclaimer};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

#[derive(Clone, Debug)]
enum Op {
    Enter(usize),
    Leave(usize),
    Retire,
}

fn arb_schedule() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0usize..4, 0u8..3), 1..80).prop_map(|raw| {
        // Keep enter/leave balanced per slot (at most one op in flight
        // per slot so the schedule is valid for EBR too).
        let mut active = [false; 4];
        let mut out = Vec::new();
        for (slot, kind) in raw {
            match kind {
                0 if !active[slot] => {
                    active[slot] = true;
                    out.push(Op::Enter(slot));
                }
                1 if active[slot] => {
                    active[slot] = false;
                    out.push(Op::Leave(slot));
                }
                _ => out.push(Op::Retire),
            }
        }
        // Drain everything at the end.
        for (slot, is_active) in active.iter().enumerate() {
            if *is_active {
                out.push(Op::Leave(slot));
            }
        }
        out
    })
}

fn check(dom: &dyn Reclaimer, schedule: &[Op]) -> Result<(), TestCaseError> {
    // Ground truth: object i may be freed only after every op that was
    // active at its retire time has left.
    let freed: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let mut active: HashSet<(usize, usize)> = HashSet::new(); // (slot, op_id)
    let mut op_counter = 0usize;
    // For each retired object: the ops that were active at retire.
    let mut pinned_by: Vec<HashSet<(usize, usize)>> = Vec::new();
    let mut departed: HashSet<(usize, usize)> = HashSet::new();
    let flag = Arc::new(AtomicBool::new(false));
    let _ = flag;
    for op in schedule {
        match op {
            Op::Enter(s) => {
                op_counter += 1;
                active.insert((*s, op_counter));
                dom.enter(*s);
            }
            Op::Leave(s) => {
                let id = *active
                    .iter()
                    .find(|(slot, _)| slot == s)
                    .expect("balanced schedule");
                active.remove(&id);
                departed.insert(id);
                dom.leave(*s);
            }
            Op::Retire => {
                let idx = pinned_by.len();
                pinned_by.push(active.clone());
                let freed = freed.clone();
                dom.retire(Box::new(move || {
                    freed.lock().unwrap().push(idx);
                }));
            }
        }
        // Safety check after every step: anything freed so far must have
        // had all its pinning ops depart first.
        for &idx in freed.lock().unwrap().iter() {
            for pin in &pinned_by[idx] {
                prop_assert!(
                    departed.contains(pin) || !active.contains(pin),
                    "object {idx} freed while op {pin:?} still active"
                );
                prop_assert!(
                    !active.contains(pin),
                    "object {idx} freed while op {pin:?} still active"
                );
            }
        }
    }
    dom.flush();
    dom.flush();
    dom.flush();
    // Liveness: with no active ops, everything must eventually free.
    prop_assert_eq!(
        dom.stats().delta(),
        0,
        "all retired objects freed at quiescence"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hyaline_never_frees_early(schedule in arb_schedule()) {
        check(&Hyaline::new(4), &schedule)?;
    }

    #[test]
    fn ebr_never_frees_early(schedule in arb_schedule()) {
        check(&Ebr::new(4), &schedule)?;
    }
}
