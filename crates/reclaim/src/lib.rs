//! # adelie-reclaim — safe memory reclamation for delayed unmapping
//!
//! Adelie must not unmap a module's old address range while *pending
//! calls* still execute there (paper §3.4, "Controlling Address Space
//! Lifetime"). The paper uses the **Hyaline** reclamation scheme
//! (Nikolaev & Ravindran, PODC '19 / PLDI '21), chosen over epoch-based
//! reclamation because it is *context-agnostic*: it makes no assumption
//! about how threads are managed, which matters in a kernel where calls
//! arrive from arbitrary task, softirq, and interrupt contexts.
//!
//! This crate implements both schemes behind one trait:
//!
//! * [`Hyaline`] — a per-slot reference-counted batch hand-off scheme.
//!   Retired batches are pushed onto every *active* slot's lock-free
//!   list; the last operation to leave a slot detaches the list and drops
//!   its references; a batch is freed when all slots that were active at
//!   retire time have drained. This is a simplified ("last-leaver
//!   detaches") variant of Hyaline that preserves its interface, its
//!   snapshot-free operation, and its context-agnosticism (several
//!   concurrent operations may share one slot), documented in DESIGN.md.
//! * [`Ebr`] — classic three-epoch reclamation (Fraser), the baseline the
//!   paper compares Hyaline against.
//!
//! The kernel maps the paper's API onto this crate directly:
//! `mr_start` → [`Reclaimer::enter`], `mr_finish` → [`Reclaimer::leave`],
//! `mr_retire` → [`Reclaimer::retire`].
//!
//! # Example
//!
//! ```
//! use adelie_reclaim::{Hyaline, Reclaimer};
//! use std::sync::{Arc, atomic::{AtomicBool, Ordering}};
//!
//! let dom = Hyaline::new(4);
//! let freed = Arc::new(AtomicBool::new(false));
//!
//! dom.enter(0);                       // a pending call begins on CPU 0
//! let f = freed.clone();
//! dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
//! assert!(!freed.load(Ordering::SeqCst), "deferred while call pending");
//! dom.leave(0);                       // pending call completes
//! assert!(freed.load(Ordering::SeqCst), "freed as soon as calls drain");
//! ```

mod ebr;
mod hyaline;

pub use ebr::Ebr;
pub use hyaline::Hyaline;

/// A deferred reclamation action (an unmap, a free, …).
pub type Deferred = Box<dyn FnOnce() + Send>;

/// Retire/free counters — the numbers Adelie prints as
/// `SMR Retire` / `SMR Free` / `SMR Delta` in its dmesg output.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct SmrStats {
    /// Objects handed to [`Reclaimer::retire`].
    pub retired: u64,
    /// Deferred actions actually executed.
    pub freed: u64,
}

impl SmrStats {
    /// Outstanding (retired but not yet freed) objects.
    pub fn delta(&self) -> u64 {
        self.retired - self.freed
    }
}

/// The safe-memory-reclamation interface shared by [`Hyaline`] and
/// [`Ebr`].
///
/// A *slot* identifies an execution context — Adelie uses one slot per
/// simulated CPU. Operations bracket access to reclaimable memory with
/// [`enter`](Reclaimer::enter)/[`leave`](Reclaimer::leave) (the paper's
/// `mr_start`/`mr_finish`); [`retire`](Reclaimer::retire) defers an
/// action until every operation active at retire time has left.
pub trait Reclaimer: Send + Sync {
    /// Begin an operation on `slot` (`mr_start`).
    fn enter(&self, slot: usize);

    /// End an operation on `slot` (`mr_finish`). May run deferred
    /// actions synchronously.
    fn leave(&self, slot: usize);

    /// Defer `action` until all currently-active operations complete
    /// (`mr_retire`). If none are active, the action may run immediately
    /// on the calling thread.
    fn retire(&self, action: Deferred);

    /// Best-effort attempt to run ripe deferred actions (teardown aid;
    /// only meaningful for epoch-based schemes).
    fn flush(&self);

    /// Number of slots.
    fn slots(&self) -> usize;

    /// Counter snapshot.
    fn stats(&self) -> SmrStats;
}

/// RAII guard for [`Reclaimer::enter`]/[`Reclaimer::leave`].
pub struct Guard<'a> {
    dom: &'a dyn Reclaimer,
    slot: usize,
}

impl<'a> Guard<'a> {
    /// Enter `slot` on `dom`, leaving automatically on drop.
    pub fn new(dom: &'a dyn Reclaimer, slot: usize) -> Guard<'a> {
        dom.enter(slot);
        Guard { dom, slot }
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.dom.leave(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    fn each_reclaimer(f: impl Fn(&dyn Reclaimer)) {
        f(&Hyaline::new(4));
        f(&Ebr::new(4));
    }

    #[test]
    fn immediate_free_when_idle() {
        each_reclaimer(|dom| {
            let freed = Arc::new(AtomicBool::new(false));
            let f = freed.clone();
            dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
            dom.flush();
            assert!(freed.load(Ordering::SeqCst));
            assert_eq!(dom.stats().delta(), 0);
        });
    }

    #[test]
    fn deferred_until_leave() {
        each_reclaimer(|dom| {
            let freed = Arc::new(AtomicBool::new(false));
            dom.enter(1);
            let f = freed.clone();
            dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
            dom.flush();
            assert!(!freed.load(Ordering::SeqCst), "pending call blocks free");
            assert_eq!(dom.stats().delta(), 1);
            dom.leave(1);
            dom.flush();
            assert!(freed.load(Ordering::SeqCst));
            assert_eq!(dom.stats().delta(), 0);
        });
    }

    #[test]
    fn multiple_pending_slots_all_block() {
        each_reclaimer(|dom| {
            let count = Arc::new(AtomicU64::new(0));
            dom.enter(0);
            dom.enter(2);
            let c = count.clone();
            dom.retire(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
            dom.leave(0);
            dom.flush();
            assert_eq!(count.load(Ordering::SeqCst), 0, "slot 2 still pending");
            dom.leave(2);
            dom.flush();
            assert_eq!(count.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn guard_is_raii() {
        each_reclaimer(|dom| {
            let freed = Arc::new(AtomicBool::new(false));
            {
                let _g = Guard::new(dom, 3);
                let f = freed.clone();
                dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
                dom.flush();
                assert!(!freed.load(Ordering::SeqCst));
            }
            dom.flush();
            assert!(freed.load(Ordering::SeqCst));
        });
    }

    #[test]
    fn late_entrants_on_other_slots_do_not_block_hyaline() {
        // An operation that starts *after* retire on a previously idle
        // slot must not delay the action: it cannot hold references to an
        // object that was already unreachable when it began. Hyaline
        // guarantees this; EBR does not (the late entrant pins the epoch,
        // see `ebr::tests::straggler_pins_everything`) — one of the
        // reasons the paper picked Hyaline.
        let dom = Hyaline::new(4);
        let freed = Arc::new(AtomicBool::new(false));
        dom.enter(0);
        let f = freed.clone();
        dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
        dom.enter(1); // late entrant on an idle slot
        dom.leave(0);
        assert!(
            freed.load(Ordering::SeqCst),
            "late entrant on another slot must not pin the batch"
        );
        dom.leave(1);
    }
}
