//! The Hyaline-style reclamation scheme ("last-leaver detaches" variant).
//!
//! Faithful to the published Hyaline in interface and character:
//! *snapshot-free* (no epoch scanning), *context-agnostic* (any number of
//! concurrent operations may share a slot; no thread registration), with
//! per-slot lock-free lists and reference-counted batches. Simplified in
//! one respect, documented in DESIGN.md: each batch takes **one**
//! reference per active slot it is pushed to, and the *last* operation to
//! leave a slot detaches and drains that slot's list. The published
//! algorithm distributes decrements across all leavers; ours concentrates
//! them in the last leaver, which is correct (never frees early — see the
//! invariant notes on [`Hyaline::retire`]) and slightly more
//! conservative.

use crate::{Deferred, Reclaimer, SmrStats};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Sentinel initial value for a batch's reference counter while the
/// dispatch loop is still counting how many slots it reaches.
const REFS_INIT: i64 = 1 << 40;

struct Batch {
    refs: AtomicI64,
    actions: Vec<Deferred>,
}

struct Node {
    next: *mut Node,
    batch: *mut Batch,
}

/// One per-slot head: packed `(list-head pointer << 16) | active-op count`.
struct Slot {
    head: AtomicU64,
}

const REF_BITS: u32 = 16;
const REF_MASK: u64 = (1 << REF_BITS) - 1;

fn pack(ptr: *mut Node, refs: u64) -> u64 {
    let p = ptr as u64;
    debug_assert!(p < (1 << (64 - REF_BITS)), "node pointer exceeds 48 bits");
    debug_assert!(refs <= REF_MASK);
    (p << REF_BITS) | refs
}

fn unpack(v: u64) -> (*mut Node, u64) {
    ((v >> REF_BITS) as *mut Node, v & REF_MASK)
}

/// The Hyaline reclamation domain (see module docs).
pub struct Hyaline {
    slots: Box<[Slot]>,
    retired: AtomicU64,
    freed: AtomicU64,
}

// SAFETY: the raw Node/Batch pointers are only ever owned by exactly one
// party (the slot lists via CAS hand-off, or the batch refcount), and all
// payloads are `Send`.
unsafe impl Send for Hyaline {}
unsafe impl Sync for Hyaline {}

impl Hyaline {
    /// Create a domain with `nslots` slots (Adelie: one per CPU).
    ///
    /// # Panics
    ///
    /// Panics if `nslots` is zero.
    pub fn new(nslots: usize) -> Hyaline {
        assert!(nslots > 0, "need at least one slot");
        Hyaline {
            slots: (0..nslots)
                .map(|_| Slot {
                    head: AtomicU64::new(0),
                })
                .collect(),
            retired: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// Decrement a batch's reference count by `delta` (negative adds),
    /// freeing it when the count reaches zero.
    ///
    /// # Safety
    ///
    /// `batch` must point to a live batch whose count cannot go below 0.
    unsafe fn adjust_batch(&self, batch: *mut Batch, delta: i64) {
        let prev = (*batch).refs.fetch_add(delta, Ordering::AcqRel);
        if prev + delta == 0 {
            let owned = Box::from_raw(batch);
            let n = owned.actions.len() as u64;
            for action in owned.actions {
                action();
            }
            self.freed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Drain a detached list: one reference per node's batch.
    ///
    /// # Safety
    ///
    /// `head` must be a detached (exclusively owned) list.
    unsafe fn traverse(&self, mut head: *mut Node) {
        while !head.is_null() {
            let node = Box::from_raw(head);
            head = node.next;
            self.adjust_batch(node.batch, -1);
        }
    }
}

impl Reclaimer for Hyaline {
    fn enter(&self, slot: usize) {
        let s = &self.slots[slot];
        let mut cur = s.head.load(Ordering::Acquire);
        loop {
            let (ptr, refs) = unpack(cur);
            assert!(refs < REF_MASK, "slot {slot} operation count overflow");
            match s.head.compare_exchange_weak(
                cur,
                pack(ptr, refs + 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    fn leave(&self, slot: usize) {
        let s = &self.slots[slot];
        let mut cur = s.head.load(Ordering::Acquire);
        loop {
            let (ptr, refs) = unpack(cur);
            assert!(refs >= 1, "leave({slot}) without matching enter");
            let (new, detach) = if refs == 1 {
                (pack(std::ptr::null_mut(), 0), true)
            } else {
                (pack(ptr, refs - 1), false)
            };
            match s
                .head
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    if detach {
                        // SAFETY: the CAS detached the list; we own it.
                        unsafe { self.traverse(ptr) };
                    }
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Retire an action.
    ///
    /// Invariant (why this never frees early): a reference is taken on
    /// every slot whose active count is non-zero *at dispatch time*. The
    /// batch is freed only after each such slot's count has since reached
    /// zero — i.e. after every operation that was active at retire time
    /// has left. Operations that enter later cannot hold references to
    /// the retired object because the caller made it unreachable before
    /// retiring (the standard SMR contract).
    fn retire(&self, action: Deferred) {
        self.retired.fetch_add(1, Ordering::Relaxed);
        let batch = Box::into_raw(Box::new(Batch {
            refs: AtomicI64::new(REFS_INIT),
            actions: vec![action],
        }));
        let mut pushed: i64 = 0;
        for s in self.slots.iter() {
            let mut cur = s.head.load(Ordering::Acquire);
            loop {
                let (ptr, refs) = unpack(cur);
                if refs == 0 {
                    break; // no pending operations on this slot
                }
                let node = Box::into_raw(Box::new(Node { next: ptr, batch }));
                match s.head.compare_exchange_weak(
                    cur,
                    pack(node, refs),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        pushed += 1;
                        break;
                    }
                    Err(now) => {
                        // SAFETY: the node never became visible.
                        drop(unsafe { Box::from_raw(node) });
                        cur = now;
                    }
                }
            }
        }
        // Swap the sentinel for the real push count. If every pushed slot
        // already drained (or none was active), this frees immediately.
        // SAFETY: batch is live; the sentinel keeps the count positive
        // until this adjustment.
        unsafe { self.adjust_batch(batch, pushed - REFS_INIT) };
    }

    fn flush(&self) {
        // Hyaline frees eagerly on the last leave; nothing to do.
    }

    fn slots(&self) -> usize {
        self.slots.len()
    }

    fn stats(&self) -> SmrStats {
        SmrStats {
            retired: self.retired.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Hyaline {
    fn drop(&mut self) {
        // Detach every slot list and drop the references. Any operation
        // still "active" at domain teardown is a bug in the embedding
        // kernel; batches it pins would leak rather than free unsafely.
        for s in self.slots.iter() {
            let (ptr, _refs) = unpack(s.head.swap(0, Ordering::AcqRel));
            // SAFETY: exclusive access in Drop.
            unsafe { self.traverse(ptr) };
        }
    }
}

impl std::fmt::Debug for Hyaline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyaline")
            .field("slots", &self.slots.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn nested_ops_on_one_slot_context_agnostic() {
        // Two overlapping operations on the SAME slot — the situation
        // EBR's per-thread flag cannot express but Hyaline handles
        // (context-agnosticism is why the paper picked it).
        let dom = Hyaline::new(2);
        let freed = Arc::new(AtomicBool::new(false));
        dom.enter(0);
        dom.enter(0); // second op, same slot
        let f = freed.clone();
        dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
        dom.leave(0);
        assert!(!freed.load(Ordering::SeqCst), "one op still active");
        dom.leave(0);
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn many_batches_interleaved() {
        let dom = Hyaline::new(3);
        let count = Arc::new(AtomicU64::new(0));
        dom.enter(1);
        for _ in 0..100 {
            let c = count.clone();
            dom.retire(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert_eq!(dom.stats().delta(), 100);
        dom.leave(1);
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(dom.stats().delta(), 0);
    }

    #[test]
    fn drop_runs_pending_actions() {
        let count = Arc::new(AtomicU64::new(0));
        {
            let dom = Hyaline::new(2);
            dom.enter(0);
            let c = count.clone();
            dom.retire(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
            dom.leave(0);
            // freed on leave already
            assert_eq!(count.load(Ordering::SeqCst), 1);
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_stress_no_premature_free() {
        use std::sync::atomic::AtomicUsize;
        const THREADS: usize = 8;
        const OBJS: usize = 2000;
        let dom = Arc::new(Hyaline::new(THREADS));
        // A "version" cell readers dereference; retire invalidates it.
        let live = Arc::new((0..OBJS).map(|_| AtomicBool::new(true)).collect::<Vec<_>>());
        let current = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for t in 0..THREADS - 1 {
            let dom = dom.clone();
            let live = live.clone();
            let current = current.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    dom.enter(t);
                    let idx = current.load(Ordering::Acquire);
                    // While inside the critical section the object we
                    // observed must not have been freed.
                    std::hint::spin_loop();
                    assert!(
                        live[idx].load(Ordering::Acquire),
                        "object {idx} freed while reader inside critical section"
                    );
                    dom.leave(t);
                }
            }));
        }
        // Writer: publish next object, retire previous.
        for next in 1..OBJS {
            let prev = current.swap(next, Ordering::AcqRel);
            let live2 = live.clone();
            dom.retire(Box::new(move || {
                live2[prev].store(false, Ordering::Release);
            }));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(dom.stats().delta(), 0, "all retired objects freed");
    }
}
