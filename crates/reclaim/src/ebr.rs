//! Classic three-epoch reclamation (EBR) — the baseline scheme.
//!
//! The paper notes Hyaline's performance is "very similar to that of
//! EBR" but that Hyaline integrates more easily because it is
//! context-agnostic (§3.4). This implementation exists so the claim can
//! be measured (see `bench/benches/reclaim.rs`) and so the re-randomizer
//! can be instantiated with either scheme.
//!
//! Standard scheme: a global epoch, a per-slot `(active, local epoch)`
//! word, and three limbo buckets. Objects retired in epoch *e* are freed
//! once the global epoch has advanced twice past *e*, which requires all
//! active slots to have observed each intermediate epoch.

use crate::{Deferred, Reclaimer, SmrStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

const ACTIVE: u64 = 1 << 63;
const EPOCH_MASK: u64 = ACTIVE - 1;

/// How many `leave()`s a slot performs between epoch-advance attempts
/// while garbage is pending. `try_advance` scans *every* slot word with
/// SeqCst loads — letting each reader exit attempt it turns the hot
/// read path into an all-slots cacheline crawl. Amortizing over 32
/// exits bounds reclamation lag (a retire and a flush still advance
/// eagerly) while making the common exit a single store.
const ADVANCE_PERIOD: u64 = 32;

/// Cache-line-padded per-slot exit counter: each slot has exactly one
/// writer (the thread occupying it), so padding keeps two readers
/// leaving on adjacent slots from bouncing a shared line.
#[repr(align(64))]
struct PaddedTick(AtomicU64);

/// Epoch-based reclamation domain. See module docs.
pub struct Ebr {
    global: AtomicU64,
    /// Per-slot word: `ACTIVE | epoch` when inside an operation, 0 when idle.
    slot_words: Box<[AtomicU64]>,
    /// Per-slot `leave()` counters driving deferred epoch advancement.
    leave_ticks: Box<[PaddedTick]>,
    limbo: [Mutex<Vec<Deferred>>; 3],
    retired: AtomicU64,
    freed: AtomicU64,
}

impl Ebr {
    /// Create a domain with `nslots` slots.
    ///
    /// # Panics
    ///
    /// Panics if `nslots` is zero.
    pub fn new(nslots: usize) -> Ebr {
        assert!(nslots > 0, "need at least one slot");
        Ebr {
            global: AtomicU64::new(0),
            slot_words: (0..nslots).map(|_| AtomicU64::new(0)).collect(),
            leave_ticks: (0..nslots).map(|_| PaddedTick(AtomicU64::new(0))).collect(),
            limbo: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            retired: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// Try to advance the global epoch once; on success, drain the bucket
    /// that two-epochs-old garbage sits in.
    fn try_advance(&self) {
        let e = self.global.load(Ordering::SeqCst);
        for w in self.slot_words.iter() {
            let v = w.load(Ordering::SeqCst);
            if v & ACTIVE != 0 && v & EPOCH_MASK != e {
                return; // a straggler pins the epoch
            }
        }
        if self
            .global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // someone else advanced
        }
        // Bucket ((e+1) % 3) holds garbage retired in epoch e-2: every
        // operation from that epoch has since left. Drain it before epoch
        // e+1 retirees start landing in it.
        let drained: Vec<Deferred> = {
            let mut bucket = self.limbo[((e + 1) % 3) as usize].lock();
            std::mem::take(&mut *bucket)
        };
        let n = drained.len() as u64;
        for action in drained {
            action();
        }
        self.freed.fetch_add(n, Ordering::Relaxed);
    }
}

impl Reclaimer for Ebr {
    fn enter(&self, slot: usize) {
        let w = &self.slot_words[slot];
        debug_assert_eq!(
            w.load(Ordering::Relaxed) & ACTIVE,
            0,
            "EBR slots admit one operation at a time (not context-agnostic)"
        );
        // Announce, then re-check the epoch to close the store-load race.
        loop {
            let e = self.global.load(Ordering::SeqCst);
            w.store(ACTIVE | e, Ordering::SeqCst);
            if self.global.load(Ordering::SeqCst) == e {
                return;
            }
        }
    }

    fn leave(&self, slot: usize) {
        self.slot_words[slot].store(0, Ordering::SeqCst);
        // Fast path for read-mostly domains (the page-table snapshot
        // domain leaves once per TLB miss): with no outstanding
        // garbage, advancing the epoch buys nothing — skip the
        // all-slots scan. Counter skew at worst delays one advance;
        // the next retire/leave/flush picks it up.
        if self.retired.load(Ordering::Relaxed) == self.freed.load(Ordering::Relaxed) {
            return;
        }
        // Garbage pending: still don't advance on every exit — that
        // makes each reader scan all slot words and fight over the
        // global epoch's cacheline. Tick a slot-local counter (single
        // writer, Relaxed is enough) and only every ADVANCE_PERIOD-th
        // exit pays for the scan.
        let t = self.leave_ticks[slot].0.fetch_add(1, Ordering::Relaxed);
        if t.is_multiple_of(ADVANCE_PERIOD) {
            self.try_advance();
        }
    }

    fn retire(&self, action: Deferred) {
        self.retired.fetch_add(1, Ordering::Relaxed);
        let e = self.global.load(Ordering::SeqCst);
        self.limbo[(e % 3) as usize].lock().push(action);
        self.try_advance();
    }

    fn flush(&self) {
        for _ in 0..3 {
            self.try_advance();
        }
    }

    fn slots(&self) -> usize {
        self.slot_words.len()
    }

    fn stats(&self) -> SmrStats {
        SmrStats {
            retired: self.retired.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // Run everything left; nothing can be active at teardown.
        let mut n = 0u64;
        for bucket in &self.limbo {
            for action in std::mem::take(&mut *bucket.lock()) {
                action();
                n += 1;
            }
        }
        self.freed.fetch_add(n, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Ebr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ebr")
            .field("slots", &self.slot_words.len())
            .field("epoch", &self.global.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn straggler_pins_everything() {
        // EBR's weakness vs Hyaline: a long-running op on ANY slot pins
        // even garbage retired while it was idle-epoch-equal. Contrast
        // with Hyaline's per-slot lists.
        let dom = Ebr::new(2);
        dom.enter(0); // straggler at epoch 0
        let freed = Arc::new(AtomicBool::new(false));
        let f = freed.clone();
        dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
        // One advance is possible (straggler is at the current epoch)…
        dom.flush();
        // …but the second advance is pinned, so the object stays.
        assert!(!freed.load(Ordering::SeqCst));
        dom.leave(0);
        dom.flush();
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn leave_amortizes_epoch_advancement() {
        let dom = Ebr::new(2);
        dom.enter(0);
        let freed = Arc::new(AtomicBool::new(false));
        let f = freed.clone();
        dom.retire(Box::new(move || f.store(true, Ordering::SeqCst)));
        // retire advanced once (0→1); this exit is tick 0 and advances
        // again (1→2). The epoch-0 garbage sits one advance away.
        dom.leave(0);
        assert!(!freed.load(Ordering::SeqCst));
        // The next ADVANCE_PERIOD-1 exits are deferred: no slot scan,
        // no advance — the garbage stays put even though nothing pins
        // the epoch any more.
        for _ in 0..ADVANCE_PERIOD - 1 {
            dom.enter(0);
            dom.leave(0);
            assert!(!freed.load(Ordering::SeqCst));
        }
        // The ADVANCE_PERIOD-th exit pays for the scan and frees.
        dom.enter(0);
        dom.leave(0);
        assert!(freed.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_drains_limbo() {
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        {
            let dom = Ebr::new(2);
            for _ in 0..10 {
                let c = count.clone();
                dom.retire(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_stress_no_premature_free() {
        use std::sync::atomic::AtomicUsize;
        const THREADS: usize = 4;
        const OBJS: usize = 1000;
        let dom = Arc::new(Ebr::new(THREADS));
        let live = Arc::new((0..OBJS).map(|_| AtomicBool::new(true)).collect::<Vec<_>>());
        let current = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for t in 0..THREADS - 1 {
            let dom = dom.clone();
            let live = live.clone();
            let current = current.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    dom.enter(t);
                    let idx = current.load(Ordering::Acquire);
                    std::hint::spin_loop();
                    assert!(
                        live[idx].load(Ordering::Acquire),
                        "object {idx} freed while reader inside critical section"
                    );
                    dom.leave(t);
                }
            }));
        }
        for next in 1..OBJS {
            let prev = current.swap(next, Ordering::AcqRel);
            let live2 = live.clone();
            dom.retire(Box::new(move || {
                live2[prev].store(false, Ordering::Release);
            }));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        dom.flush();
        dom.flush();
        assert_eq!(dom.stats().delta(), 0);
    }
}
